//! Exploration conformance suite: every litmus *program* is explored
//! both exhaustively (plain depth-first search) and with dynamic
//! partial-order reduction, and the two must agree on the complete set
//! of observable outcomes. This is the executable soundness check for
//! the reduction: DPOR may skip schedules, but never outcomes.
//!
//! The store-buffer and causality-chain programs additionally pin the
//! reduction *factor*: DPOR must explore at least 5x fewer schedules
//! than the naive enumeration.

use std::collections::BTreeSet;
use std::sync::Mutex;

use mixed_consistency::explore::{explore_with, ExploreOptions, ExploreOutcome};
use mixed_consistency::{check, Mode, OpKind, ProgSpec, ReadLabel, SpecOp, Value};

fn w(loc: u32, value: i64) -> SpecOp {
    SpecOp::Write { loc: mixed_consistency::Loc(loc), value }
}

fn r(loc: u32, label: ReadLabel) -> SpecOp {
    SpecOp::Read { loc: mixed_consistency::Loc(loc), label }
}

/// Dekker's store buffer: both reads may see 0.
fn store_buffer() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1), r(1, ReadLabel::Causal)])
        .proc(vec![w(1, 1), r(0, ReadLabel::Causal)])
}

/// The causality chain of Section 2 with PRAM reads at the tail
/// process (stale reads allowed under Definition 3/4).
fn causality_chain() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1)])
        .proc(vec![r(0, ReadLabel::Causal), w(1, 2)])
        .proc(vec![r(1, ReadLabel::Pram), r(0, ReadLabel::Pram)])
}

/// Independent reads of independent writes.
fn iriw() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1)])
        .proc(vec![w(1, 1)])
        .proc(vec![r(0, ReadLabel::Causal), r(1, ReadLabel::Causal)])
        .proc(vec![r(1, ReadLabel::Causal), r(0, ReadLabel::Causal)])
}

/// Write-to-read causality with PRAM tail reads.
fn wrc() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1)])
        .proc(vec![r(0, ReadLabel::Causal), w(1, 1)])
        .proc(vec![r(1, ReadLabel::Pram), r(0, ReadLabel::Pram)])
}

/// Two writers with opposite program orders, two observers.
fn two_plus_two_w() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1), w(1, 2)])
        .proc(vec![w(1, 1), w(0, 2)])
        .proc(vec![r(0, ReadLabel::Causal), r(0, ReadLabel::Causal)])
}

/// Explores the program and returns the outcome plus the set of
/// distinct read-observation vectors, verifying mixed consistency
/// (Definition 4) on every execution.
///
/// Read vectors are collected in canonical per-process program order,
/// not execution order: the history records operations as they
/// interleave, and DPOR explores one representative interleaving per
/// equivalence class, so only an interleaving-insensitive projection
/// can be compared between naive and reduced exploration.
fn outcomes(spec: &ProgSpec, options: ExploreOptions) -> (ExploreOutcome, BTreeSet<Vec<i64>>) {
    outcomes_with(spec, options, || spec.build_system())
}

/// Like [`outcomes`], but with a custom system builder (e.g. the same
/// spec with batching enabled).
fn outcomes_with(
    spec: &ProgSpec,
    options: ExploreOptions,
    build: impl Fn() -> mixed_consistency::System + Send + Sync,
) -> (ExploreOutcome, BTreeSet<Vec<i64>>) {
    let seen = Mutex::new(BTreeSet::new());
    let out = explore_with(options, build, |o| {
        let h = o.history.as_ref().expect("recording enabled");
        check::check_mixed(h).map_err(|e| e.to_string())?;
        let mut reads: Vec<(u32, i64)> = h
            .iter()
            .filter_map(|(_, op)| match op.kind {
                OpKind::Read { value: Value::Int(v), .. } => Some((op.proc.0, v)),
                _ => None,
            })
            .collect();
        reads.sort_by_key(|&(p, _)| p);
        seen.lock().unwrap().insert(reads.into_iter().map(|(_, v)| v).collect::<Vec<i64>>());
        Ok(())
    })
    .unwrap_or_else(|e| panic!("{}: {e}", spec.to_text()));
    (out, seen.into_inner().unwrap())
}

fn conformance(name: &str, spec: &ProgSpec) -> (ExploreOutcome, ExploreOutcome) {
    let (naive, naive_set) = outcomes(spec, ExploreOptions::new().dpor(false).max_runs(3_000_000));
    let (dpor, dpor_set) = outcomes(spec, ExploreOptions::new().max_runs(3_000_000));
    assert!(naive.complete, "{name}: naive DFS must exhaust the tree ({} runs)", naive.runs);
    assert!(dpor.complete, "{name}: DPOR must exhaust the tree ({} runs)", dpor.runs);
    assert_eq!(naive_set, dpor_set, "{name}: DPOR lost or invented outcomes");
    assert!(!naive_set.is_empty(), "{name}: litmus program must produce reads");
    assert!(
        dpor.runs <= naive.runs,
        "{name}: DPOR ({}) explored more than naive DFS ({})",
        dpor.runs,
        naive.runs
    );
    println!(
        "{name}: naive {} runs, dpor {} runs ({} pruned, {} outcomes) — {:.1}x reduction",
        naive.runs,
        dpor.runs,
        dpor.pruned,
        dpor.unique_outcomes,
        naive.runs as f64 / dpor.runs as f64
    );
    (naive, dpor)
}

#[test]
fn store_buffer_conformance_and_reduction() {
    let (naive, dpor) = conformance("store_buffer", &store_buffer());
    assert!(
        naive.runs >= 5 * dpor.runs,
        "DPOR must explore at least 5x fewer schedules: naive {} vs dpor {}",
        naive.runs,
        dpor.runs
    );
}

#[test]
fn causality_chain_conformance_and_reduction() {
    let (naive, dpor) = conformance("causality_chain", &causality_chain());
    assert!(
        naive.runs >= 5 * dpor.runs,
        "DPOR must explore at least 5x fewer schedules: naive {} vs dpor {}",
        naive.runs,
        dpor.runs
    );
}

#[test]
fn wrc_conformance() {
    conformance("wrc", &wrc());
}

#[test]
fn two_plus_two_w_conformance() {
    conformance("two_plus_two_w", &two_plus_two_w());
}

#[test]
#[ignore = "large naive tree; run explicitly with --ignored"]
fn iriw_conformance() {
    conformance("iriw", &iriw());
}

#[test]
fn dpor_parallel_workers_agree_on_litmus_outcomes() {
    let spec = store_buffer();
    let (seq, seq_set) = outcomes(&spec, ExploreOptions::new());
    let (par, par_set) = outcomes(&spec, ExploreOptions::new().workers(4));
    assert!(seq.complete && par.complete);
    assert_eq!(seq_set, par_set, "worker split must not change the outcome set");
}

/// Batching conformance: explores `spec` with batching enabled and
/// compares against the unbatched DPOR outcome set.
///
/// Two regimes, two claims:
///
/// * [`BatchPolicy::immediate`] (zero-delay flush timer) — every flush
///   races the surrounding operations exactly like an unbatched send,
///   so the outcome set must be *identical*;
/// * [`BatchPolicy::default`] (delayed flush) — the delay narrows the
///   race window, so the batched set must be a non-empty *subset* of
///   the unbatched set (batching may remove interleavings, never invent
///   new observations), and every execution stays checker-green (the
///   `check_mixed` call inside [`outcomes_with`] enforces that).
fn batched_conformance(name: &str, spec: &ProgSpec) {
    let opts = || ExploreOptions::new().max_runs(3_000_000);
    let (base, base_set) = outcomes(spec, opts());
    assert!(base.complete, "{name}: unbatched DPOR must exhaust the tree");

    let immediate = mixed_consistency::BatchPolicy::immediate();
    let (imm, imm_set) =
        outcomes_with(spec, opts(), || spec.build_system().batching(Some(immediate)));
    assert!(imm.complete, "{name}: batched (immediate) DPOR must exhaust the tree");
    assert_eq!(imm_set, base_set, "{name}: zero-delay batching changed the observable outcome set");

    let default = mixed_consistency::BatchPolicy::default();
    let (def, def_set) =
        outcomes_with(spec, opts(), || spec.build_system().batching(Some(default)));
    assert!(def.complete, "{name}: batched (default) DPOR must exhaust the tree");
    assert!(!def_set.is_empty(), "{name}: batched litmus program must produce reads");
    assert!(
        def_set.is_subset(&base_set),
        "{name}: delayed batching invented outcomes: {:?} not in {:?}",
        def_set.difference(&base_set).collect::<Vec<_>>(),
        base_set
    );
    println!(
        "{name}: unbatched {} outcomes, batched immediate {} / default {}",
        base_set.len(),
        imm_set.len(),
        def_set.len()
    );
}

#[test]
fn batched_iriw_conformance() {
    batched_conformance("iriw", &iriw());
}

#[test]
fn batched_wrc_conformance() {
    batched_conformance("wrc", &wrc());
}

#[test]
fn batched_two_plus_two_w_conformance() {
    batched_conformance("two_plus_two_w", &two_plus_two_w());
}

#[test]
fn batched_store_buffer_conformance() {
    batched_conformance("store_buffer", &store_buffer());
}
