//! The litmus × lattice conformance matrix.
//!
//! Every litmus program is explored once (DPOR, exhaustive) on the
//! mixed-consistency protocol, the distinct explored histories are
//! collected, and each history set is judged against **every** point of
//! the consistency-model lattice through the declarative validator
//! ([`mc_model::spec::check_model`]). A cell is `true` when *all*
//! observable executions of the program satisfy that lattice point and
//! `false` when at least one execution exhibits the point's anomaly.
//!
//! The full matrix is pinned below. A flipped cell fails loudly with the
//! recomputed table, because a flip means either the protocol's
//! observable behavior changed or a lattice point's declarative meaning
//! drifted — both are semantic regressions, never noise.
//!
//! A second suite runs the protocol *under* each lattice point
//! (per-process model assignment threaded through the substrate) and
//! asserts every DPOR-explored execution verifies against the assigned
//! spec: the implementation-vs-specification agreement check for the
//! new points (slow, weak ordering, processor consistency) as well as
//! the four legacy ones.

use std::collections::BTreeMap;
use std::sync::Mutex;

use mc_model::{spec::check_model, History, ModelAssignment, ModelSpec, ProcModel};
use mixed_consistency::explore::{explore_with, ExploreOptions};
use mixed_consistency::{Mode, ProgSpec, ReadLabel, SpecOp};

fn w(loc: u32, value: i64) -> SpecOp {
    SpecOp::Write { loc: mixed_consistency::Loc(loc), value }
}

fn r(loc: u32, label: ReadLabel) -> SpecOp {
    SpecOp::Read { loc: mixed_consistency::Loc(loc), label }
}

fn rc(loc: u32) -> SpecOp {
    r(loc, ReadLabel::Causal)
}

fn rp(loc: u32) -> SpecOp {
    r(loc, ReadLabel::Pram)
}

/// The litmus corpus: the classic shapes with causal reads, plus PRAM
/// variants where the weaker label widens the observable set (which is
/// what separates the lower lattice points).
fn corpus() -> Vec<(&'static str, ProgSpec)> {
    vec![
        (
            "store_buffer",
            ProgSpec::new(Mode::Mixed).proc(vec![w(0, 1), rc(1)]).proc(vec![w(1, 1), rc(0)]),
        ),
        (
            "store_buffer_pram",
            ProgSpec::new(Mode::Mixed).proc(vec![w(0, 1), rp(1)]).proc(vec![w(1, 1), rp(0)]),
        ),
        (
            "causality_chain",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1)])
                .proc(vec![rc(0), w(1, 2)])
                .proc(vec![rp(1), rp(0)]),
        ),
        (
            "iriw",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1)])
                .proc(vec![w(1, 1)])
                .proc(vec![rc(0), rc(1)])
                .proc(vec![rc(1), rc(0)]),
        ),
        (
            "wrc",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1)])
                .proc(vec![rc(0), w(1, 1)])
                .proc(vec![rp(1), rp(0)]),
        ),
        (
            "two_plus_two_w",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1), w(1, 2)])
                .proc(vec![w(1, 1), w(0, 2)])
                .proc(vec![rc(0), rc(0)]),
        ),
    ]
}

/// The lattice points of the matrix columns, strongest first, plus the
/// per-read mixed assignment (Definition 4) as the final column.
fn points() -> Vec<(&'static str, ProcModel)> {
    let mut pts: Vec<(&'static str, ProcModel)> =
        ModelSpec::ALL.iter().map(|s| (s.name, ProcModel::Fixed(*s))).collect();
    pts.push(("mixed", ProcModel::ByLabel));
    pts
}

/// Explores `spec` exhaustively with DPOR and returns the distinct
/// observable histories (deduplicated by signature).
fn explored_histories(name: &str, spec: &ProgSpec) -> Vec<History> {
    let seen: Mutex<BTreeMap<u64, History>> = Mutex::new(BTreeMap::new());
    let out = explore_with(
        ExploreOptions::new().max_runs(3_000_000),
        || spec.build_system(),
        |o| {
            let h = o.history.as_ref().expect("recording enabled");
            seen.lock().unwrap().entry(h.signature()).or_insert_with(|| h.clone());
            Ok(())
        },
    )
    .unwrap_or_else(|e| panic!("{name}: exploration failed: {e}"));
    assert!(out.complete, "{name}: DPOR must exhaust the tree ({} runs)", out.runs);
    let histories: Vec<History> = seen.into_inner().unwrap().into_values().collect();
    assert!(!histories.is_empty(), "{name}: no executions explored");
    histories
}

/// `true` iff every history satisfies the lattice point when assigned
/// uniformly to all processes.
fn all_pass(histories: &[History], point: ProcModel) -> bool {
    histories.iter().all(|h| {
        let models = ModelAssignment::per_proc(vec![point; h.nprocs()]);
        check_model(h, &models).is_ok()
    })
}

/// The pinned conformance matrix: for each litmus program, the verdict
/// per lattice point in [`points`] order
/// (sc, causal, processor, pram, weak, slow, mixed).
///
/// `true` = every observable execution satisfies the point;
/// `false` = the point's anomaly is observable on the protocol.
/// Noteworthy pinned facts: the Dekker store buffer is the only corpus
/// program whose SC anomaly the protocol can actually exhibit. The IRIW
/// split and the stale causality-chain tail — both *legal* under causal
/// and mixed consistency — are never produced by this implementation
/// (verified against naive DFS, not just DPOR): the replicated protocol
/// is strictly stronger than the weak points it is judged against, so
/// those rows pass everywhere. The declarative validator's ability to
/// *reject* such anomalies is pinned separately in
/// [`anomaly_histories_by_lattice_matrix_matches_pinned_verdicts`],
/// which feeds it hand-built anomaly histories directly.
const PINNED: &[(&str, [bool; 7])] = &[
    //                    sc     causal processor pram  weak  slow  mixed
    ("store_buffer", [false, true, true, true, true, true, true]),
    ("store_buffer_pram", [false, true, true, true, true, true, true]),
    ("causality_chain", [true, true, true, true, true, true, true]),
    ("iriw", [true, true, true, true, true, true, true]),
    ("wrc", [true, true, true, true, true, true, true]),
    ("two_plus_two_w", [true, true, true, true, true, true, true]),
];

#[test]
fn litmus_by_lattice_matrix_matches_pinned_verdicts() {
    let pts = points();
    let mut actual: Vec<(String, Vec<bool>)> = Vec::new();
    for (name, spec) in corpus() {
        let histories = explored_histories(name, &spec);
        let row: Vec<bool> = pts.iter().map(|&(_, p)| all_pass(&histories, p)).collect();
        println!(
            "{name}: {} distinct histories — {}",
            histories.len(),
            pts.iter()
                .zip(&row)
                .map(|(&(n, _), &v)| format!("{n}={}", if v { "pass" } else { "FAIL" }))
                .collect::<Vec<_>>()
                .join(" ")
        );
        actual.push((name.to_string(), row));
    }

    // Render both tables on mismatch so a flipped cell is diagnosable
    // from the failure message alone.
    let render = |rows: &[(String, Vec<bool>)]| {
        rows.iter()
            .map(|(n, r)| {
                format!(
                    "{n:20} {}",
                    r.iter().map(|&v| if v { " pass" } else { " FAIL" }).collect::<String>()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let pinned: Vec<(String, Vec<bool>)> =
        PINNED.iter().map(|&(n, r)| (n.to_string(), r.to_vec())).collect();
    assert_eq!(
        actual,
        pinned,
        "conformance matrix flipped\n-- actual --\n{}\n-- pinned --\n{}",
        render(&actual),
        render(&pinned)
    );

    // Lattice monotonicity over the matrix: a history set satisfying a
    // stronger point must satisfy every weaker one. (stronger, weaker)
    // pairs follow the ordering-property lattice.
    let idx = |n: &str| pts.iter().position(|&(p, _)| p == n).unwrap();
    for (name, row) in &actual {
        for &(strong, weak) in &[
            ("sc", "causal"),
            ("sc", "processor"),
            ("causal", "pram"),
            ("causal", "weak"),
            ("processor", "pram"),
            ("pram", "slow"),
        ] {
            assert!(
                !row[idx(strong)] || row[idx(weak)],
                "{name}: satisfies {strong} but not {weak} — lattice order broken"
            );
        }
    }
}

/// Canonical anomaly histories, hand-built so every lattice point's
/// *rejection* behavior is pinned too (the protocol matrix above cannot
/// exercise anomalies the implementation never produces).
fn anomaly_histories() -> Vec<(&'static str, History)> {
    use mc_model::{HistoryBuilder, Loc, ProcId, Value};
    let p = ProcId;
    let int = Value::Int;

    // The causality chain with a stale tail: p2 sees y=2 (which causally
    // depends on x=1) and then reads x=0.
    let stale_chain = {
        let mut b = HistoryBuilder::new(3);
        b.push_write(p(0), Loc(0), int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, int(1));
        b.push_write(p(1), Loc(1), int(2));
        b.push_read(p(2), Loc(1), ReadLabel::Pram, int(2));
        b.push_read(p(2), Loc(0), ReadLabel::Pram, int(0));
        b.build().unwrap()
    };

    // One writer, two locations, observed out of program order: the
    // canonical PRAM (FIFO) violation. Different locations, so the slow
    // point (per-location FIFO only) accepts it.
    let fifo_violation = {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), int(1));
        b.push_write(p(0), Loc(1), int(1));
        b.push_read(p(1), Loc(1), ReadLabel::Pram, int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, int(0));
        b.build().unwrap()
    };

    // Independent reads of independent writes, split observation: the
    // classic SC violation that every weaker point tolerates.
    let iriw_split = {
        let mut b = HistoryBuilder::new(4);
        b.push_write(p(0), Loc(0), int(1));
        b.push_write(p(1), Loc(1), int(1));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, int(1));
        b.push_read(p(2), Loc(1), ReadLabel::Causal, int(0));
        b.push_read(p(3), Loc(1), ReadLabel::Causal, int(1));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, int(0));
        b.build().unwrap()
    };

    // Two concurrent writes to one location observed in opposite orders:
    // a cache-coherence violation, rejected exactly by the points that
    // demand a per-location write order (processor, sc).
    let write_order_disagreement = {
        let mut b = HistoryBuilder::new(4);
        b.push_write(p(0), Loc(0), int(1));
        b.push_write(p(1), Loc(0), int(2));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, int(1));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, int(1));
        b.build().unwrap()
    };

    vec![
        ("stale_chain", stale_chain),
        ("fifo_violation", fifo_violation),
        ("iriw_split", iriw_split),
        ("write_order_disagreement", write_order_disagreement),
    ]
}

/// The pinned anomaly-history matrix, columns in [`points`] order
/// (sc, causal, processor, pram, weak, slow, mixed).
const PINNED_ANOMALIES: &[(&str, [bool; 7])] = &[
    //                             sc     causal processor pram  weak  slow  mixed
    ("stale_chain", [false, false, true, true, true, true, true]),
    ("fifo_violation", [false, false, false, false, true, true, false]),
    ("iriw_split", [false, true, true, true, true, true, true]),
    ("write_order_disagreement", [false, true, false, true, true, true, true]),
];

#[test]
fn anomaly_histories_by_lattice_matrix_matches_pinned_verdicts() {
    let pts = points();
    let mut actual: Vec<(String, Vec<bool>)> = Vec::new();
    for (name, h) in anomaly_histories() {
        let row: Vec<bool> = pts
            .iter()
            .map(|&(_, point)| {
                let models = ModelAssignment::per_proc(vec![point; h.nprocs()]);
                check_model(&h, &models).is_ok()
            })
            .collect();
        println!(
            "{name}: {}",
            pts.iter()
                .zip(&row)
                .map(|(&(n, _), &v)| format!("{n}={}", if v { "pass" } else { "FAIL" }))
                .collect::<Vec<_>>()
                .join(" ")
        );
        actual.push((name.to_string(), row));
    }
    let pinned: Vec<(String, Vec<bool>)> =
        PINNED_ANOMALIES.iter().map(|&(n, r)| (n.to_string(), r.to_vec())).collect();
    assert_eq!(actual, pinned, "anomaly matrix flipped — see stdout for the recomputed table");
}

/// Runs the protocol *under* a uniform lattice-point assignment and
/// checks every DPOR-explored execution against that point's spec via
/// `Outcome::verify` (which routes through the declarative validator).
fn protocol_satisfies(name: &str, point: ProcModel, spec: ProgSpec) {
    let nprocs = spec.procs.len();
    let spec = spec.models(vec![point; nprocs]);
    let out = explore_with(
        ExploreOptions::new().max_runs(3_000_000),
        || spec.build_system(),
        |o| o.verify().map_err(|e| format!("{e}")),
    )
    .unwrap_or_else(|e| panic!("{name} under {}: {e}", point.name()));
    assert!(out.complete, "{name} under {}: DPOR must exhaust the tree", point.name());
}

#[test]
fn protocol_conforms_to_slow_spec() {
    for (name, spec) in corpus() {
        protocol_satisfies(name, ProcModel::Fixed(ModelSpec::SLOW), spec);
    }
}

#[test]
fn protocol_conforms_to_weak_ordering_spec() {
    for (name, spec) in corpus() {
        protocol_satisfies(name, ProcModel::Fixed(ModelSpec::WEAK_ORDERING), spec);
    }
}

#[test]
fn protocol_conforms_to_processor_spec() {
    for (name, spec) in corpus() {
        protocol_satisfies(name, ProcModel::Fixed(ModelSpec::PROCESSOR), spec);
    }
}

#[test]
fn protocol_conforms_to_legacy_points() {
    for point in [
        ProcModel::Fixed(ModelSpec::PRAM),
        ProcModel::Fixed(ModelSpec::CAUSAL),
        ProcModel::Fixed(ModelSpec::SC),
        ProcModel::ByLabel,
    ] {
        for (name, spec) in corpus() {
            protocol_satisfies(name, point, spec);
        }
    }
}

/// One run may mix lattice points: the observer processes run (and are
/// judged) under different points than the writers, subsuming the
/// paper's mixed mode as just another assignment.
#[test]
fn heterogeneous_assignment_explores_and_verifies() {
    let spec = ProgSpec::new(Mode::Mixed)
        .models(vec![
            ProcModel::Fixed(ModelSpec::CAUSAL),
            ProcModel::Fixed(ModelSpec::CAUSAL),
            ProcModel::Fixed(ModelSpec::SLOW),
        ])
        .proc(vec![w(0, 1)])
        .proc(vec![rc(0), w(1, 1)])
        .proc(vec![rc(1), rc(0)]);
    let out = explore_with(
        ExploreOptions::new().max_runs(3_000_000),
        || spec.build_system(),
        |o| o.verify().map_err(|e| format!("{e}")),
    )
    .unwrap_or_else(|e| panic!("heterogeneous assignment: {e}"));
    assert!(out.complete, "heterogeneous assignment must exhaust the tree");
}
