//! Sharded-vs-full litmus conformance: interest-based partial
//! replication is a *routing* optimization, so the observable outcome
//! set of every litmus program must be exactly the outcome set of full
//! replication — under DPOR exploration, under heterogeneous lattice
//! assignments, under seeded network faults, and under explored
//! crash-recovery of a durable writer.
//!
//! The programs place their four locations on four *different* shards
//! (`loc % 4`), so every causal edge that matters crosses a shard
//! boundary and rides the sparse `(shard, proc, seq)` dependency
//! triples rather than a single whole-cluster vector clock.

use std::collections::BTreeSet;
use std::sync::Mutex;

use mc_model::{ModelSpec, ProcModel};
use mixed_consistency::explore::{explore_with, ExploreOptions, ExploreOutcome};
use mixed_consistency::{
    FaultPlan, Mode, NodeId, OpKind, ProgSpec, ReadLabel, ShardConfig, SimConfig, SimTime, SpecOp,
    System, Value,
};

const NSHARDS: usize = 4;

fn w(loc: u32, value: i64) -> SpecOp {
    SpecOp::Write { loc: mixed_consistency::Loc(loc), value }
}

fn rc(loc: u32) -> SpecOp {
    SpecOp::Read { loc: mixed_consistency::Loc(loc), label: ReadLabel::Causal }
}

fn rp(loc: u32) -> SpecOp {
    SpecOp::Read { loc: mixed_consistency::Loc(loc), label: ReadLabel::Pram }
}

/// Dekker's store buffer on shards 2 and 3.
fn store_buffer() -> ProgSpec {
    ProgSpec::new(Mode::Mixed).proc(vec![w(2, 1), rc(3)]).proc(vec![w(3, 1), rc(2)])
}

/// Independent reads of independent writes, the writes on shards 0
/// and 2.
fn iriw() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1)])
        .proc(vec![w(2, 1)])
        .proc(vec![rc(0), rc(2)])
        .proc(vec![rc(2), rc(0)])
}

/// Write-to-read causality across shards 1 and 3, PRAM tail reads.
fn wrc() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(1, 1)])
        .proc(vec![rc(1), w(3, 1)])
        .proc(vec![rp(3), rp(1)])
}

/// Two writers with opposite program orders on shards 0 and 1.
fn two_plus_two_w() -> ProgSpec {
    ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 1), w(1, 2)])
        .proc(vec![w(1, 1), w(0, 2)])
        .proc(vec![rc(0), rc(0)])
}

fn corpus() -> Vec<(&'static str, ProgSpec)> {
    vec![
        ("store_buffer", store_buffer()),
        ("iriw", iriw()),
        ("wrc", wrc()),
        ("two_plus_two_w", two_plus_two_w()),
    ]
}

/// Explores `build` and returns the outcome plus the set of distinct
/// read-observation vectors in canonical per-process program order
/// (interleaving-insensitive, so naive/DPOR/sharded trees can be
/// compared). Every execution must pass [`mixed_consistency::Outcome::verify`],
/// which judges each shard's history projection independently when
/// sharding is on.
fn outcomes(
    options: ExploreOptions,
    build: impl Fn() -> System + Send + Sync,
) -> (ExploreOutcome, BTreeSet<Vec<i64>>) {
    let seen = Mutex::new(BTreeSet::new());
    let out = explore_with(options, build, |o| {
        o.verify().map_err(|e| e.to_string())?;
        let h = o.history.as_ref().expect("recording enabled");
        let mut reads: Vec<(u32, i64)> = h
            .iter()
            .filter_map(|(_, op)| match op.kind {
                OpKind::Read { value: Value::Int(v), .. } => Some((op.proc.0, v)),
                _ => None,
            })
            .collect();
        reads.sort_by_key(|&(p, _)| p);
        seen.lock().unwrap().insert(reads.into_iter().map(|(_, v)| v).collect::<Vec<i64>>());
        Ok(())
    })
    .unwrap_or_else(|e| panic!("{e}"));
    (out, seen.into_inner().unwrap())
}

fn opts() -> ExploreOptions {
    ExploreOptions::new().max_runs(3_000_000)
}

/// The tentpole equivalence: for every litmus program, DPOR outcome
/// sets agree between unsharded, footprint-interest sharded, and
/// full-interest sharded systems.
#[test]
fn litmus_outcome_sets_identical_sharded_vs_full() {
    for (name, spec) in corpus() {
        let (base, base_set) = outcomes(opts(), || spec.build_system());
        assert!(base.complete, "{name}: unsharded DPOR must exhaust the tree");
        assert!(!base_set.is_empty(), "{name}: litmus program must produce reads");

        let footprint = spec.clone().sharded(NSHARDS);
        let (fp, fp_set) = outcomes(opts(), || footprint.build_system());
        assert!(fp.complete, "{name}: footprint-sharded DPOR must exhaust the tree");
        assert_eq!(fp_set, base_set, "{name}: footprint interest changed the outcome set");

        let nprocs = spec.procs.len();
        let (full, full_set) = outcomes(opts(), || {
            spec.build_system().sharding(Some(ShardConfig::full(NSHARDS, nprocs)))
        });
        assert!(full.complete, "{name}: full-interest sharded DPOR must exhaust the tree");
        assert_eq!(full_set, base_set, "{name}: full-interest sharding changed the outcome set");

        println!(
            "{name}: {} outcomes (unsharded {} runs, footprint {} runs, full {} runs)",
            base_set.len(),
            base.runs,
            fp.runs,
            full.runs
        );
    }
}

/// Heterogeneous lattice assignments ride sharding unchanged: each
/// process keeps its own point's guarantees over per-shard projections,
/// and the observable outcome set still matches full replication.
#[test]
fn litmus_outcome_sets_match_under_heterogeneous_lattices() {
    let causal = ProcModel::Fixed(ModelSpec::CAUSAL);
    let pram = ProcModel::Fixed(ModelSpec::PRAM);
    let processor = ProcModel::Fixed(ModelSpec::PROCESSOR);
    let cases: Vec<(&str, ProgSpec, Vec<ProcModel>)> = vec![
        ("wrc", wrc(), vec![causal, causal, pram]),
        ("iriw", iriw(), vec![pram, pram, causal, causal]),
        ("two_plus_two_w", two_plus_two_w(), vec![processor, processor, causal]),
    ];
    for (name, spec, models) in cases {
        let assigned = spec.models(models);
        let (base, base_set) = outcomes(opts(), || assigned.build_system());
        assert!(base.complete, "{name}: unsharded DPOR must exhaust the tree");
        let sharded = assigned.clone().sharded(NSHARDS);
        let (sh, sh_set) = outcomes(opts(), || sharded.build_system());
        assert!(sh.complete, "{name}: sharded DPOR must exhaust the tree");
        assert_eq!(sh_set, base_set, "{name}: sharding changed the lattice-assigned outcome set");
    }
}

/// Subscribe-on-first-touch conformance: an empty static interest set
/// forces every access through the directory (SubReq/SubAck plus
/// per-write backfill). A first-touch *read* executes the moment the
/// subscription lands — before any backfill can — so the dynamic
/// outcome set may shrink (both naive DFS and DPOR agree on the
/// narrowed set), but it must never invent an observation static
/// interest could not produce.
#[test]
fn dynamic_first_touch_never_invents_outcomes() {
    let spec = wrc();
    let static_spec = spec.clone().sharded(NSHARDS);
    let (st, static_set) = outcomes(opts(), || static_spec.build_system());
    assert!(st.complete, "static-interest DPOR must exhaust the tree");
    let dynamic_spec = spec.sharded(NSHARDS).interest(2, vec![]);
    let (dy, dynamic_set) = outcomes(opts(), || dynamic_spec.build_system());
    assert!(dy.complete, "dynamic-interest DPOR must exhaust the tree");
    let (dy_naive, dynamic_naive_set) =
        outcomes(opts().dpor(false), || dynamic_spec.build_system());
    assert!(dy_naive.complete, "dynamic-interest naive DFS must exhaust the tree");
    assert_eq!(dynamic_set, dynamic_naive_set, "DPOR lost or invented dynamic outcomes");
    assert!(!dynamic_set.is_empty(), "dynamic litmus program must produce reads");
    assert!(
        dynamic_set.is_subset(&static_set),
        "first-touch subscription invented outcomes: {:?} not in {:?}",
        dynamic_set.difference(&static_set).collect::<Vec<_>>(),
        static_set
    );
}

/// Regression for the backfill chain cycle: p0's own chains are shard 0
/// = `{seq 1: 42, seq 3: 7}` and shard 1 = `{seq 2: 1}`; seq 3 carries
/// a dependency triple into shard 1 and seq 2 one into shard 0. A late
/// joiner subscribing to both shards must drain every backfill — the
/// per-write pushes follow the acyclic causal order, where the old
/// atomic per-shard chain shipment could park each chain on the other
/// (see `replica::tests::per_write_recovery_pushes_avoid_cross_shard_chain_cycle`).
#[test]
fn dynamic_backfill_resolves_cross_shard_chains() {
    let spec = ProgSpec::new(Mode::Mixed)
        .proc(vec![w(0, 42), w(1, 1), w(0, 7)])
        .proc(vec![
            SpecOp::Await { loc: mixed_consistency::Loc(1), value: 1 },
            SpecOp::Await { loc: mixed_consistency::Loc(0), value: 7 },
            rc(0),
        ])
        .sharded(NSHARDS)
        .interest(1, vec![]);
    let (out, set) = outcomes(opts(), || spec.build_system());
    assert!(out.complete, "backfill exploration must exhaust the tree (no parked chains)");
    assert!(
        set.iter().all(|v| v.last() == Some(&7)),
        "after both awaits the joiner reads the full chain: {set:?}"
    );
}

/// Seeded network faults under sharding: drops, duplicates, reordering,
/// and a timed partition, all masked by the reliable session layer.
/// Every run must complete and verify.
#[test]
fn sharded_litmus_survives_faulty_network() {
    for (name, spec) in corpus() {
        let sharded = spec.sharded(NSHARDS);
        for seed in 0..5u64 {
            let lossy = FaultPlan::new()
                .drop_rate(0.3)
                .duplicate_rate(0.2)
                .reorder(SimTime::from_micros(80));
            let sys = sharded
                .build_system()
                .sim_config(SimConfig::with_seed(seed))
                .faults(lossy)
                .reliable(true);
            let outcome = sys.run().unwrap_or_else(|e| panic!("{name} seed {seed} (lossy): {e}"));
            outcome.verify().unwrap_or_else(|e| panic!("{name} seed {seed} (lossy): {e}"));

            let split = FaultPlan::new().partition(
                vec![NodeId(0)],
                (1..spec_nodes(&sharded)).map(|n| NodeId(n as u32)).collect(),
                SimTime::from_micros(10),
                SimTime::from_micros(400),
            );
            let sys = sharded
                .build_system()
                .sim_config(SimConfig::with_seed(seed))
                .faults(split)
                .reliable(true);
            let outcome =
                sys.run().unwrap_or_else(|e| panic!("{name} seed {seed} (partition): {e}"));
            outcome.verify().unwrap_or_else(|e| panic!("{name} seed {seed} (partition): {e}"));
        }
    }
}

fn spec_nodes(spec: &ProgSpec) -> usize {
    spec.procs.len()
}

/// Explored crash-recovery of the durable writer under sharding: the
/// reborn node replays its WAL and re-ships per-write recovery deltas.
/// Every completing branch verifies, and no branch can invent an
/// outcome outside the fault-free sharded set.
#[test]
fn sharded_crash_recover_preserves_outcomes() {
    let spec = store_buffer().sharded(NSHARDS).durable(2);
    let (quiet, quiet_set) = outcomes(opts(), || spec.build_system());
    assert!(quiet.complete, "fault-free durable sharded DPOR must exhaust the tree");
    let (crashed, crashed_set) =
        outcomes(ExploreOptions::new().allow_deadlock(true).max_runs(3_000_000), || {
            spec.build_system()
                .explore_faults(mixed_consistency::FaultBudget::new().crash_recover_of(NodeId(0)))
        });
    assert!(crashed.complete, "crash-recover exploration must exhaust the tree");
    assert!(
        crashed_set.is_subset(&quiet_set),
        "crash-recovery invented outcomes: {:?} not in {:?}",
        crashed_set.difference(&quiet_set).collect::<Vec<_>>(),
        quiet_set
    );
    assert!(!crashed_set.is_empty(), "some crash-recover branches must complete");
}
