//! Cross-crate property harness: randomly generated programs, executed on
//! every protocol mode under many seeds, must always yield histories
//! satisfying that protocol's consistency definition.
//!
//! This is the central soundness loop of the repository: the protocols
//! (`mc-proto`) are judged by the independent formal checkers
//! (`mc-model`) on every run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mixed_consistency::{
    check, sc, FaultPlan, Loc, LockId, LockPropagation, Mode, NodeId, ReadLabel, SimTime, System,
    Value,
};

/// One generated instruction.
#[derive(Clone, Debug)]
enum Instr {
    Write(Loc, i64),
    Read(Loc, ReadLabel),
    Add(Loc),
    Cs { lock: LockId, body: Vec<Instr> },
    Barrier,
}

/// Generates a deadlock-free random program: balanced critical sections,
/// barrier rounds aligned across processes, unique write values.
fn generate(nprocs: usize, ops_per_proc: usize, seed: u64) -> Vec<Vec<Instr>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nlocs = 4u32;
    let counter_loc = Loc(nlocs); // dedicated counter location
    let nlocks = 2u32;
    let barrier_rounds = rng.gen_range(0..3usize);

    let mut procs = Vec::new();
    for p in 0..nprocs {
        let mut prog = Vec::new();
        let mut val = (p as i64 + 1) * 100_000;
        for seg in 0..=barrier_rounds {
            for _ in 0..ops_per_proc / (barrier_rounds + 1) {
                let roll = rng.gen_range(0..100);
                let loc = Loc(rng.gen_range(0..nlocs));
                let label = if rng.gen_bool(0.5) { ReadLabel::Pram } else { ReadLabel::Causal };
                if roll < 35 {
                    val += 1;
                    prog.push(Instr::Write(loc, val));
                } else if roll < 70 {
                    prog.push(Instr::Read(loc, label));
                } else if roll < 80 {
                    prog.push(Instr::Add(counter_loc));
                } else {
                    // A small critical section.
                    let lock = LockId(rng.gen_range(0..nlocks));
                    let mut body = Vec::new();
                    for _ in 0..rng.gen_range(1..=3) {
                        if rng.gen_bool(0.5) {
                            val += 1;
                            body.push(Instr::Write(loc, val));
                        } else {
                            body.push(Instr::Read(loc, label));
                        }
                    }
                    prog.push(Instr::Cs { lock, body });
                }
            }
            if seg < barrier_rounds {
                prog.push(Instr::Barrier);
            }
        }
        procs.push(prog);
    }
    procs
}

fn execute(ctx: &mut mixed_consistency::Ctx<'_>, prog: &[Instr]) {
    for instr in prog {
        match instr {
            Instr::Write(loc, v) => {
                ctx.write(*loc, *v);
            }
            Instr::Read(loc, label) => {
                let _ = ctx.read(*loc, *label);
            }
            Instr::Add(loc) => {
                ctx.add(*loc, -1i64);
            }
            Instr::Cs { lock, body } => {
                ctx.write_lock(*lock);
                for i in body {
                    execute(ctx, std::slice::from_ref(i));
                }
                ctx.write_unlock(*lock);
            }
            Instr::Barrier => ctx.barrier(),
        }
    }
}

fn run_and_record(
    mode: Mode,
    prop: LockPropagation,
    progs: &[Vec<Instr>],
    seed: u64,
) -> mixed_consistency::History {
    let mut sys = System::new(progs.len(), mode).lock_propagation(prop).seed(seed).record(true);
    for prog in progs {
        let prog = prog.clone();
        sys.spawn(move |ctx| execute(ctx, &prog));
    }
    sys.run()
        .unwrap_or_else(|e| panic!("{mode}/{prop} seed {seed}: {e}"))
        .history
        .expect("recording enabled")
}

#[test]
fn pram_protocol_satisfies_pram_reads() {
    for seed in 0..12 {
        let progs = generate(3, 10, seed);
        for prop in LockPropagation::ALL {
            let h = run_and_record(Mode::Pram, prop, &progs, seed);
            if let Err(e) = check::check_pram(&h) {
                panic!("seed {seed} {prop}: {e}\n{}", h.to_pretty_string());
            }
        }
    }
}

#[test]
fn causal_protocol_satisfies_causal_reads() {
    for seed in 0..12 {
        let progs = generate(3, 10, seed);
        for prop in [LockPropagation::Eager, LockPropagation::Lazy] {
            let h = run_and_record(Mode::Causal, prop, &progs, seed);
            if let Err(e) = check::check_causal(&h) {
                panic!("seed {seed} {prop}: {e}\n{}", h.to_pretty_string());
            }
        }
    }
}

#[test]
fn mixed_protocol_satisfies_definition_4() {
    for seed in 0..12 {
        let progs = generate(4, 10, seed);
        for prop in [LockPropagation::Eager, LockPropagation::Lazy] {
            let h = run_and_record(Mode::Mixed, prop, &progs, seed);
            if let Err(e) = check::check_mixed(&h) {
                panic!("seed {seed} {prop}: {e}\n{}", h.to_pretty_string());
            }
        }
    }
}

#[test]
fn mixed_demand_driven_satisfies_pram_labels() {
    // Demand-driven propagation implements the PRAM side of lock
    // synchronization exactly; causal labels may exceed what it ships, so
    // judge all reads as PRAM reads here (Definition 3 must still hold).
    for seed in 0..12 {
        let progs = generate(3, 10, seed);
        let h = run_and_record(Mode::Mixed, LockPropagation::DemandDriven, &progs, seed);
        if let Err(e) = check::check_pram(&h) {
            panic!("seed {seed}: {e}\n{}", h.to_pretty_string());
        }
    }
}

#[test]
fn causal_histories_are_also_pram() {
    // ;i,P ⊆ ;i,C, so every causally consistent history is PRAM
    // consistent — checked on real executions.
    for seed in 0..8 {
        let progs = generate(3, 8, seed);
        let h = run_and_record(Mode::Causal, LockPropagation::Lazy, &progs, seed);
        check::check_causal(&h).expect("causal protocol is causal");
        check::check_pram(&h).expect("causal implies PRAM");
    }
}

#[test]
fn sc_protocol_is_sequentially_consistent_on_small_runs() {
    for seed in 0..8 {
        // Tiny programs: the exact SC search is exponential.
        let progs = generate(2, 4, seed);
        let h = run_and_record(Mode::Sc, LockPropagation::Lazy, &progs, seed);
        match sc::check_sequential_with_budget(&h, 4_000_000).expect("acyclic") {
            sc::ScVerdict::SequentiallyConsistent(order) => {
                // Double-check the witness replays.
                let causality = mixed_consistency::model::Causality::new(&h).unwrap();
                sc::replay_serialization(&h, &causality, &order).unwrap();
            }
            sc::ScVerdict::Unknown => {} // budget exhausted: inconclusive
            sc::ScVerdict::NotSequentiallyConsistent => {
                panic!(
                    "seed {seed}: SC protocol produced non-SC history\n{}",
                    h.to_pretty_string()
                );
            }
        }
        // SC histories satisfy the weaker definitions too.
        check::check_causal(&h).expect("SC implies causal");
    }
}

#[test]
fn injected_reordering_is_caught_on_pram() {
    // At least one seed must produce a detectable violation; causal mode
    // must mask every one of them.
    let mut caught = false;
    for seed in 0..15 {
        let mut sys = System::new(2, Mode::Pram)
            .seed(seed)
            .record(true)
            .latency(mixed_consistency::LatencyModel {
                base: mixed_consistency::SimTime::from_micros(1),
                per_byte_ns: 0,
                jitter: mixed_consistency::SimTime::from_micros(40),
            })
            .faults(FaultPlan::new().reorder(SimTime::from_micros(40)));
        sys.spawn(|ctx| {
            for v in 1..=12i64 {
                ctx.write(Loc(0), v);
            }
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| loop {
            let _ = ctx.read_pram(Loc(0));
            if ctx.read_pram(Loc(1)) == Value::Int(1) {
                break;
            }
        });
        let h = sys.run().unwrap().history.unwrap();
        if check::check_pram(&h).is_err() {
            caught = true;
            break;
        }
    }
    assert!(caught, "reordering injection never produced a detectable violation");
}

/// One persisted regression case for the random-fault property: the
/// generator seed, the exact fault plan, and (since v2) the optional
/// per-process lattice assignment that once produced a failure.
/// Stored as a small `key = value` text file under `tests/corpus/` so
/// every future run replays it before trying fresh random seeds.
#[derive(Clone, Debug, PartialEq)]
struct CorpusEntry {
    seed: u64,
    drop_rate: f64,
    duplicate_rate: f64,
    reorder_us: u64,
    /// `(victim node, from µs, until µs)` of a timed partition, if any.
    partition: Option<(u32, u64, u64)>,
    /// Per-process lattice points (`ProcModel` names, one per process);
    /// `None` replays the legacy mixed-mode judgment.
    models: Option<Vec<mc_model::ProcModel>>,
}

impl CorpusEntry {
    fn to_text(&self) -> String {
        let mut s = String::from("# mixed-consistency regression seed v2\n");
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("drop_rate = {}\n", self.drop_rate));
        s.push_str(&format!("duplicate_rate = {}\n", self.duplicate_rate));
        s.push_str(&format!("reorder_us = {}\n", self.reorder_us));
        if let Some((victim, from, until)) = self.partition {
            s.push_str(&format!("partition = {victim} {from} {until}\n"));
        }
        if let Some(models) = &self.models {
            let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
            s.push_str(&format!("models = {}\n", names.join(" ")));
        }
        s
    }

    fn parse(text: &str) -> Result<Self, String> {
        let mut entry = CorpusEntry {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_us: 0,
            partition: None,
            models: None,
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| format!("bad corpus line: {line}"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| format!("bad {key} value {value:?}: {e}");
            match key {
                "seed" => entry.seed = value.parse().map_err(|e| bad(&e))?,
                "drop_rate" => entry.drop_rate = value.parse().map_err(|e| bad(&e))?,
                "duplicate_rate" => entry.duplicate_rate = value.parse().map_err(|e| bad(&e))?,
                "reorder_us" => entry.reorder_us = value.parse().map_err(|e| bad(&e))?,
                "partition" => {
                    let mut parts = value.split_whitespace();
                    let mut next = || {
                        parts
                            .next()
                            .ok_or_else(|| format!("partition needs 3 fields: {value:?}"))?
                            .parse::<u64>()
                            .map_err(|e| bad(&e))
                    };
                    entry.partition = Some((next()? as u32, next()?, next()?));
                }
                "models" => {
                    let models: Option<Vec<mc_model::ProcModel>> =
                        value.split_whitespace().map(mc_model::ProcModel::named).collect();
                    let models =
                        models.ok_or_else(|| format!("unknown model name in: {value:?}"))?;
                    if models.is_empty() {
                        return Err("models key needs at least one name".to_string());
                    }
                    entry.models = Some(models);
                }
                _ => return Err(format!("unknown corpus key: {key}")),
            }
        }
        Ok(entry)
    }

    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new()
            .drop_rate(self.drop_rate)
            .duplicate_rate(self.duplicate_rate)
            .reorder(SimTime::from_micros(self.reorder_us));
        if let Some((victim, from, until)) = self.partition {
            let others: Vec<NodeId> = (0..4u32).filter(|&n| n != victim).map(NodeId).collect();
            plan = plan.partition(
                vec![NodeId(victim)],
                others,
                SimTime::from_micros(from),
                SimTime::from_micros(until),
            );
        }
        plan
    }
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Runs one random-fault case end to end; `Err` is the verdict a
/// corpus entry exists to guard against. An entry carrying a lattice
/// assignment runs (and is judged) under exactly those per-process
/// models; an entry without one replays the legacy mixed-mode judgment.
fn fault_case(entry: &CorpusEntry) -> Result<(), String> {
    let progs = generate(3, 8, entry.seed);
    let mut sys = System::new(progs.len(), Mode::Mixed)
        .seed(entry.seed)
        .record(true)
        .faults(entry.plan())
        .reliable(true);
    if let Some(models) = &entry.models {
        if models.len() != progs.len() {
            return Err(format!(
                "models names {} processes but the program has {}",
                models.len(),
                progs.len()
            ));
        }
        sys = sys.models(mc_model::ModelAssignment::per_proc(models.clone()));
    }
    for prog in &progs {
        let prog = prog.clone();
        sys.spawn(move |ctx| execute(ctx, &prog));
    }
    let outcome = sys.run().map_err(|e| format!("run failed: {e}"))?;
    let h = outcome.history.expect("recording enabled");
    match &entry.models {
        Some(models) => {
            let assignment = mc_model::ModelAssignment::per_proc(models.clone());
            mc_model::spec::check_model(&h, &assignment).map_err(|e| {
                format!("faults leaked through the session layer: {e}\n{}", h.to_pretty_string())
            })?;
        }
        None => {
            check::check_mixed(&h).map_err(|e| {
                format!("faults leaked through the session layer: {e}\n{}", h.to_pretty_string())
            })?;
        }
    }
    Ok(())
}

/// Replays every persisted regression case before anything random runs.
/// Lattice-parameterized entries (those carrying a `models` line) replay
/// first: a verdict pinned at a specific lattice point is the sharper
/// regression, so it should be the first thing a drifted checker or
/// protocol trips over.
fn replay_corpus() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else { return };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    let mut cases: Vec<(std::path::PathBuf, CorpusEntry)> = paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let entry =
                CorpusEntry::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, entry)
        })
        .collect();
    cases.sort_by_key(|(_, entry)| entry.models.is_none());
    for (path, entry) in cases {
        if let Err(e) = fault_case(&entry) {
            panic!("corpus regression {}: seed {}: {e}", path.display(), entry.seed);
        }
    }
}

#[test]
fn random_programs_under_random_faults_with_session_stay_consistent() {
    // The robustness property: random programs on a randomly faulty
    // network (loss, duplication, reordering, sometimes a timed
    // partition) with the session layer on must always terminate and
    // always yield mixed-consistent histories — the session restores
    // exactly the channel assumptions the protocols were built on.
    //
    // Persisted regressions replay first; a fresh failure persists its
    // (seed, fault-plan) to `tests/corpus/` before panicking, so the
    // exact case stays pinned even after the random generator drifts.
    replay_corpus();
    // Lattice points a random case may pin a process to. SC is excluded:
    // a total-store-order point changes the protocol itself (and must be
    // uniform), so it is exercised by the dedicated litmus matrix, not
    // mixed freely here.
    let model_pool: [mc_model::ProcModel; 6] = [
        mc_model::ProcModel::Fixed(mc_model::ModelSpec::CAUSAL),
        mc_model::ProcModel::Fixed(mc_model::ModelSpec::PROCESSOR),
        mc_model::ProcModel::Fixed(mc_model::ModelSpec::PRAM),
        mc_model::ProcModel::Fixed(mc_model::ModelSpec::WEAK_ORDERING),
        mc_model::ProcModel::Fixed(mc_model::ModelSpec::SLOW),
        mc_model::ProcModel::ByLabel,
    ];
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xFA_0175 ^ seed);
        let mut entry = CorpusEntry {
            seed,
            drop_rate: rng.gen_range(0.0..0.15),
            duplicate_rate: rng.gen_range(0.0..0.15),
            reorder_us: rng.gen_range(1..60),
            partition: None,
            models: None,
        };
        if rng.gen_bool(0.5) {
            // Cut one replica off from everyone (manager node 3
            // included) for a while.
            let victim = rng.gen_range(0..3u32);
            let from = rng.gen_range(0..200u64);
            entry.partition = Some((victim, from, from + rng.gen_range(50..300u64)));
        }
        if rng.gen_bool(0.5) {
            // Pin each process to a random lattice point: the run is
            // then judged against exactly that heterogeneous
            // assignment, and a failure persists the full
            // (seed, fault plan, models) triple.
            entry.models =
                Some((0..3).map(|_| model_pool[rng.gen_range(0..model_pool.len())]).collect());
        }
        if let Err(e) = fault_case(&entry) {
            let dir = corpus_dir();
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("seed-{seed}.txt"));
            let _ = std::fs::write(&path, entry.to_text());
            panic!("seed {seed}: {e}\n(persisted to {})", path.display());
        }
    }
}

#[test]
fn corpus_entries_round_trip() {
    let with = CorpusEntry {
        seed: 7,
        drop_rate: 0.125,
        duplicate_rate: 0.0625,
        reorder_us: 17,
        partition: Some((2, 50, 217)),
        models: None,
    };
    let with_models = CorpusEntry {
        models: Some(vec![
            mc_model::ProcModel::Fixed(mc_model::ModelSpec::CAUSAL),
            mc_model::ProcModel::ByLabel,
            mc_model::ProcModel::Fixed(mc_model::ModelSpec::SLOW),
        ]),
        ..with.clone()
    };
    let without = CorpusEntry { partition: None, ..with.clone() };
    for entry in [with, with_models, without] {
        assert_eq!(CorpusEntry::parse(&entry.to_text()).unwrap(), entry);
    }
    assert!(CorpusEntry::parse("seed = x").is_err());
    assert!(CorpusEntry::parse("mystery = 3").is_err());
    assert!(CorpusEntry::parse("models = causal banana").is_err());
    assert!(CorpusEntry::parse("models = ").is_err());
}

#[test]
fn deterministic_replay_across_identical_seeds() {
    let progs = generate(3, 12, 99);
    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
        let run = |seed| {
            let mut sys = System::new(3, mode).seed(seed);
            for prog in &progs {
                let prog = prog.clone();
                sys.spawn(move |ctx| execute(ctx, &prog));
            }
            let m = sys.run().unwrap().metrics;
            (m.finish_time, m.events, m.messages, m.bytes)
        };
        assert_eq!(run(4), run(4), "{mode}");
    }
}
