//! The batching-soundness property, tested end to end: batched,
//! coalesced, delta-compressed update propagation must be *observably
//! identical* to the unbatched paths — same final stores, same read
//! values, same checker verdicts — on randomly generated synchronized
//! programs, in every mode, on quiet and on faulty networks.
//!
//! The generated programs are barrier-phase structured so every read is
//! uniquely determined (each location is written in exactly one phase by
//! exactly one process, and read only after the phase barrier): any
//! divergence between the batched and unbatched runs is a protocol bug,
//! not scheduling noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mc_model::OpKind;
use mixed_consistency::{
    BatchPolicy, FaultPlan, History, Loc, LockId, Mode, ProcId, ReadLabel, SimTime, System, Value,
};

const NPROCS: usize = 3;
const COUNTER: u32 = 1000; // counter location, outside the phase grid

/// One generated instruction of the deterministic-read program family.
#[derive(Clone, Debug)]
enum Instr {
    Write(Loc, i64),
    Read(Loc, ReadLabel),
    Add(Loc, i64),
    Barrier,
}

/// `phase`-local location of process `p`: written by `p` in that phase
/// only, read by others only after the phase barrier.
fn slot(phase: usize, p: usize) -> Loc {
    Loc((phase * NPROCS + p) as u32)
}

/// Generates one barrier-phase program per process. Every read's value
/// is determined by the program alone: reads target the *final*
/// pre-barrier write of a phase-private location, and the shared counter
/// is read only after the last barrier (its value is the sum of all
/// increments).
fn generate(phases: usize, seed: u64) -> Vec<Vec<Instr>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut progs = vec![Vec::new(); NPROCS];
    let mut final_vals = [0i64; NPROCS];
    for phase in 0..phases {
        for (p, prog) in progs.iter_mut().enumerate() {
            for k in 0..rng.gen_range(1..=4) {
                final_vals[p] = (phase as i64 + 1) * 1000 + (p as i64) * 100 + k;
                prog.push(Instr::Write(slot(phase, p), final_vals[p]));
            }
            if rng.gen_bool(0.6) {
                prog.push(Instr::Add(Loc(COUNTER), rng.gen_range(1..=3)));
            }
        }
        for prog in progs.iter_mut() {
            prog.push(Instr::Barrier);
        }
        for prog in progs.iter_mut() {
            for _ in 0..rng.gen_range(0..=3) {
                let q = rng.gen_range(0..NPROCS);
                let label = if rng.gen_bool(0.5) { ReadLabel::Pram } else { ReadLabel::Causal };
                prog.push(Instr::Read(slot(phase, q), label));
            }
        }
    }
    // One more barrier so the counter reads see every increment.
    for prog in progs.iter_mut() {
        prog.push(Instr::Barrier);
        prog.push(Instr::Read(Loc(COUNTER), ReadLabel::Causal));
    }
    progs
}

fn execute(ctx: &mut mixed_consistency::Ctx<'_>, prog: &[Instr]) {
    for instr in prog {
        match instr {
            Instr::Write(loc, v) => {
                ctx.write(*loc, *v);
            }
            Instr::Read(loc, label) => {
                let _ = ctx.read(*loc, *label);
            }
            Instr::Add(loc, d) => {
                ctx.add(*loc, *d);
            }
            Instr::Barrier => ctx.barrier(),
        }
    }
}

/// Everything a run observes, flattened for equality comparison.
#[derive(Debug, PartialEq)]
struct Observation {
    /// Per process, per location: the converged final value.
    stores: Vec<Vec<Value>>,
    /// Per process, in program order: every read/await value.
    reads: Vec<Vec<(Loc, Value)>>,
}

fn read_values(h: &History) -> Vec<Vec<(Loc, Value)>> {
    (0..h.nprocs())
        .map(|p| {
            h.proc_ops(ProcId(p as u32))
                .iter()
                .filter_map(|&id| match &h.op(id).kind {
                    OpKind::Read { loc, value, .. } => Some((*loc, *value)),
                    OpKind::Await { loc, value, .. } => Some((*loc, *value)),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

fn observe(
    mode: Mode,
    progs: &[Vec<Instr>],
    seed: u64,
    nlocs: u32,
    batch: Option<BatchPolicy>,
    faults: Option<FaultPlan>,
) -> Observation {
    let mut sys = System::new(NPROCS, mode)
        .seed(seed)
        .record(true)
        .batching(batch)
        .locations(COUNTER as usize + 1);
    if let Some(plan) = faults {
        sys = sys.faults(plan).reliable(true);
    }
    for prog in progs {
        let prog = prog.clone();
        sys.spawn(move |ctx| execute(ctx, &prog));
    }
    let tag = if batch.is_some() { "batched" } else { "unbatched" };
    let outcome = sys.run().unwrap_or_else(|e| panic!("{mode} seed {seed} {tag}: {e}"));
    outcome.verify().unwrap_or_else(|e| panic!("{mode} seed {seed} {tag}: verdict {e}"));
    let h = outcome.history.as_ref().expect("recording enabled");
    let stores = (0..NPROCS)
        .map(|p| {
            (0..nlocs)
                .map(|l| outcome.final_value(ProcId(p as u32), Loc(l)))
                .chain(std::iter::once(outcome.final_value(ProcId(p as u32), Loc(COUNTER))))
                .collect()
        })
        .collect();
    Observation { stores, reads: read_values(h) }
}

#[test]
fn batched_equals_unbatched_in_every_mode() {
    for seed in 0..6u64 {
        let phases = 2 + (seed as usize % 2);
        let progs = generate(phases, seed);
        let nlocs = (phases * NPROCS) as u32;
        for mode in Mode::ALL {
            let unbatched = observe(mode, &progs, seed, nlocs, None, None);
            for policy in [BatchPolicy::default(), BatchPolicy::immediate()] {
                let batched = observe(mode, &progs, seed, nlocs, Some(policy), None);
                assert_eq!(
                    batched, unbatched,
                    "{mode} seed {seed} policy {policy:?}: batched run diverged"
                );
            }
        }
    }
}

#[test]
fn batched_equals_unbatched_under_random_faults() {
    // Same property on a faulty network with the session layer restoring
    // FIFO exactly-once delivery: drops, duplicates, and reorderings must
    // not open a gap between the batched and unbatched observations.
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C4 ^ seed);
        let plan = FaultPlan::new()
            .drop_rate(rng.gen_range(0.0..0.12))
            .duplicate_rate(rng.gen_range(0.0..0.12))
            .reorder(SimTime::from_micros(rng.gen_range(1..50)));
        let phases = 2;
        let progs = generate(phases, seed);
        let nlocs = (phases * NPROCS) as u32;
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let unbatched = observe(mode, &progs, seed, nlocs, None, Some(plan.clone()));
            let batched = observe(
                mode,
                &progs,
                seed,
                nlocs,
                Some(BatchPolicy::default()),
                Some(plan.clone()),
            );
            assert_eq!(batched, unbatched, "{mode} seed {seed}: batched run diverged under faults");
        }
    }
}

#[test]
fn batched_locked_increments_preserve_final_stores() {
    // Lock-contended read-increment-write sections: epoch order is
    // schedule-dependent, but the final store is not — it must be the
    // total increment count, batched or not, and both histories must
    // satisfy the mode's consistency definition.
    for mode in [Mode::Causal, Mode::Mixed] {
        for seed in 0..4u64 {
            let run = |batch: Option<BatchPolicy>| {
                let mut sys = System::new(NPROCS, mode).seed(seed).record(true).batching(batch);
                for _ in 0..NPROCS {
                    sys.spawn(move |ctx| {
                        for _ in 0..4 {
                            ctx.write_lock(LockId(0));
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                            ctx.write_unlock(LockId(0));
                        }
                    });
                }
                let outcome = sys.run().unwrap_or_else(|e| panic!("{mode} seed {seed}: {e}"));
                outcome.verify().unwrap_or_else(|e| panic!("{mode} seed {seed}: {e}"));
                outcome.final_value(ProcId(0), Loc(0))
            };
            assert_eq!(run(None), Value::Int((NPROCS * 4) as i64), "{mode} seed {seed}");
            assert_eq!(
                run(Some(BatchPolicy::default())),
                Value::Int((NPROCS * 4) as i64),
                "{mode} seed {seed}: batching lost a locked increment"
            );
        }
    }
}
