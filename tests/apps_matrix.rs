//! Application × protocol matrix: every Section 5 application must
//! compute correct results on every memory mode it is specified for,
//! across worker counts and seeds.

use mc_apps::cholesky::{run_cholesky, CholeskyConfig, CholeskyVariant};
use mc_apps::dense::{diag_dominant_system, diff_inf, jacobi_reference};
use mc_apps::em::{fdtd_reference, run_fdtd, EmConfig};
use mc_apps::solver::{run_barrier_solver, run_handshake_solver, SolverConfig};
use mc_apps::sparse::{
    grid_laplacian, random_sparse_spd, sparse_cholesky_reference, symbolic_factorize,
};
use mixed_consistency::{Mode, ReadLabel};

#[test]
fn barrier_solver_matrix() {
    let (a, b) = diag_dominant_system(10, 3);
    let (x_ref, _) = jacobi_reference(&a, &b, 1e-9, 300);
    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
        for workers in [1, 2, 5] {
            let mut cfg = SolverConfig::new(10, workers, mode);
            cfg.tol = 1e-9;
            cfg.max_iters = 300;
            cfg.seed = 17;
            let run = run_barrier_solver(&cfg, &a, &b).unwrap();
            assert!(run.converged, "{mode}/{workers}: residual {}", run.residual);
            assert!(diff_inf(&run.x, &x_ref) < 1e-6, "{mode}/{workers}: wrong solution");
        }
    }
}

#[test]
fn handshake_solver_matrix() {
    let (a, b) = diag_dominant_system(9, 8);
    let (x_ref, _) = jacobi_reference(&a, &b, 1e-9, 300);
    for mode in [Mode::Causal, Mode::Mixed] {
        for workers in [1, 3] {
            let mut cfg = SolverConfig::new(9, workers, mode);
            cfg.tol = 1e-9;
            cfg.max_iters = 300;
            let run = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).unwrap();
            assert!(run.converged, "{mode}/{workers}");
            assert!(diff_inf(&run.x, &x_ref) < 1e-6, "{mode}/{workers}");
        }
    }
}

#[test]
fn handshake_solver_seed_sweep() {
    // Different schedules, same answer (the algorithm is deterministic
    // modulo scheduling because each iteration is fully synchronized).
    let (a, b) = diag_dominant_system(8, 21);
    let mut first: Option<Vec<f64>> = None;
    for seed in 0..5 {
        let mut cfg = SolverConfig::new(8, 2, Mode::Mixed);
        cfg.seed = seed;
        cfg.tol = 1e-10;
        let run = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).unwrap();
        match &first {
            None => first = Some(run.x),
            Some(x0) => assert!(diff_inf(x0, &run.x) < 1e-12, "seed {seed} diverged"),
        }
    }
}

#[test]
fn fdtd_matrix_bit_exact() {
    for workers in [1, 2, 4] {
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
            let cfg = EmConfig::new(20, 8, workers, mode);
            let run = run_fdtd(&cfg).unwrap();
            let (e_ref, h_ref) = fdtd_reference(&cfg);
            assert_eq!(run.e, e_ref, "{mode}/{workers} E");
            assert_eq!(run.h, h_ref, "{mode}/{workers} H");
        }
    }
}

#[test]
fn fdtd_seed_sweep_stays_exact() {
    let base = EmConfig::new(14, 5, 3, Mode::Pram);
    let (e_ref, _) = fdtd_reference(&base);
    for seed in 0..6 {
        let run = run_fdtd(&EmConfig { seed, ..base.clone() }).unwrap();
        assert_eq!(run.e, e_ref, "seed {seed}");
    }
}

#[test]
fn cholesky_matrix() {
    let grids = [grid_laplacian(3), random_sparse_spd(14, 16, 4)];
    for a in &grids {
        let sym = symbolic_factorize(a);
        let l_ref = sparse_cholesky_reference(a, &sym);
        for workers in [1, 2, 4] {
            for (mode, variant) in [
                (Mode::Mixed, CholeskyVariant::Locks),
                (Mode::Causal, CholeskyVariant::Locks),
                (Mode::Sc, CholeskyVariant::Locks),
                (Mode::Mixed, CholeskyVariant::Counters),
                (Mode::Causal, CholeskyVariant::Counters),
            ] {
                let cfg = CholeskyConfig { mode, seed: 5, ..CholeskyConfig::new(workers) };
                let run = run_cholesky(&cfg, a, &sym, variant).unwrap();
                assert!(
                    run.residual < 1e-8,
                    "{mode}/{variant}/{workers}: residual {}",
                    run.residual
                );
                if variant == CholeskyVariant::Locks {
                    // The lock variant is deterministic arithmetic: exact
                    // match with the sequential reference.
                    assert!(run.l.max_abs_diff(&l_ref) < 1e-9, "{mode}/{variant}/{workers}");
                }
            }
        }
    }
}

#[test]
fn cholesky_counter_seed_sweep() {
    // The counter variant's float additions may associate differently per
    // schedule; the factorization must stay correct for every seed.
    let a = grid_laplacian(3);
    let sym = symbolic_factorize(&a);
    for seed in 0..8 {
        let cfg = CholeskyConfig { seed, ..CholeskyConfig::new(3) };
        let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Counters).unwrap();
        assert!(run.residual < 1e-8, "seed {seed}: residual {}", run.residual);
    }
}

#[test]
fn pram_reads_on_handshake_violate_causality_on_pram_memory() {
    // The paper's claim: Fig. 3's matrix reads "cannot be PRAM". On the
    // causal/mixed substrate the claim is masked — causally *gated
    // application* delivers updates in causal order, so even PRAM-labeled
    // reads never observe the anomaly (a finding worth recording). On
    // pure PRAM memory with latency skew the stale read materializes:
    // some seed yields a history that is PRAM consistent (Definition 3 —
    // the protocol keeps its own contract) but NOT causally consistent,
    // exactly the paper's "inconsistent values of the matrix are read".
    let (a, b) = diag_dominant_system(4, 2);
    let mut violation_found = false;
    for seed in 0..30 {
        let mut cfg = SolverConfig::new(4, 2, Mode::Pram);
        cfg.seed = seed;
        cfg.record = true;
        cfg.tol = 1e-7;
        cfg.max_iters = 5;
        cfg.latency = Some(mixed_consistency::LatencyModel {
            base: mixed_consistency::SimTime::from_micros(1),
            per_byte_ns: 0,
            jitter: mixed_consistency::SimTime::from_micros(60),
        });
        let run = run_handshake_solver(&cfg, &a, &b, ReadLabel::Pram).unwrap();
        let h = run.history.expect("recorded");
        mixed_consistency::check::check_pram(&h)
            .expect("the PRAM protocol must satisfy Definition 3");
        if mixed_consistency::check::check_causal(&h).is_err() {
            violation_found = true;
            break;
        }
    }
    assert!(violation_found, "no seed exposed the Fig.3-with-PRAM-reads causality violation");
}
