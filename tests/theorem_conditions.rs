//! Section 4 end-to-end: programs satisfying the paper's sufficient
//! conditions (Theorem 1, Corollaries 1 and 2) must behave sequentially
//! consistently on the weak protocols — verified on *recorded executions*
//! with the exact SC checker where feasible and the program-discipline
//! checkers everywhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mixed_consistency::model::programs;
use mixed_consistency::{check, commute, sc, Loc, LockId, Mode, ProcId, ReadLabel, System, Value};

/// An entry-consistent random program: every location is guarded by a
/// dedicated lock; reads take read or write locks, writes take write
/// locks. By Corollary 1, causal reads make executions SC.
fn entry_consistent_system(seed: u64, nprocs: usize, ops: usize) -> System {
    let mut sys = System::new(nprocs, Mode::Causal).seed(seed).record(true);
    for p in 0..nprocs {
        sys.spawn(move |ctx| {
            let mut rng = StdRng::seed_from_u64(seed * 31 + p as u64);
            let mut val = (p as i64 + 1) * 1000;
            for _ in 0..ops {
                let loc = Loc(rng.gen_range(0..3u32));
                let lock = LockId(loc.0); // lock i guards location i
                if rng.gen_bool(0.5) {
                    ctx.write_lock(lock);
                    val += 1;
                    ctx.write(loc, val);
                    ctx.write_unlock(lock);
                } else {
                    ctx.read_lock(lock);
                    let _ = ctx.read_causal(loc);
                    ctx.read_unlock(lock);
                }
            }
        });
    }
    sys
}

#[test]
fn corollary_1_entry_consistent_executions_are_sc() {
    for seed in 0..6 {
        let h = entry_consistent_system(seed, 2, 3).run().unwrap().history.unwrap();
        // The discipline holds…
        let mapping = programs::infer_lock_mapping(&h)
            .unwrap()
            .expect("discipline implies an inferable mapping");
        programs::check_entry_consistent(&h, &mapping).unwrap();
        // …reads are causal…
        check::check_causal(&h).unwrap();
        // …and the execution is exactly sequentially consistent.
        match sc::check_sequential_with_budget(&h, 2_000_000).unwrap() {
            sc::ScVerdict::SequentiallyConsistent(_) => {}
            sc::ScVerdict::Unknown => {} // inconclusive on a big history
            sc::ScVerdict::NotSequentiallyConsistent => {
                panic!("seed {seed}: Corollary 1 violated\n{}", h.to_pretty_string())
            }
        }
    }
}

#[test]
fn corollary_1_theorem_1_premises_hold() {
    // Larger runs where exact SC search is infeasible: Theorem 1's
    // polynomial premises certify sequential consistency instead.
    for seed in 0..4 {
        let h = entry_consistent_system(seed, 3, 6).run().unwrap().history.unwrap();
        let outcome = commute::check_theorem1(&h).unwrap();
        assert!(
            outcome.applies(),
            "seed {seed}: Theorem 1 premises fail on an entry-consistent run"
        );
    }
}

#[test]
fn corollary_2_phase_programs_are_sc() {
    // A barrier phase program on PRAM memory: write-own / read-others per
    // phase.
    for seed in 0..6 {
        let mut sys = System::new(3, Mode::Pram).seed(seed).record(true);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                for round in 0..3i64 {
                    ctx.write(Loc(p), round * 10 + p as i64);
                    ctx.barrier();
                    let left = ctx.read_pram(Loc((p + 1) % 3));
                    assert_eq!(
                        left,
                        Value::Int(round * 10 + ((p as i64 + 1) % 3)),
                        "stale phase read"
                    );
                    ctx.barrier();
                }
            });
        }
        let h = sys.run().unwrap().history.unwrap();
        programs::check_pram_consistent_program(&h).unwrap();
        check::check_pram(&h).unwrap();
        if let sc::ScVerdict::NotSequentiallyConsistent =
            sc::check_sequential_with_budget(&h, 2_000_000).unwrap()
        {
            panic!("seed {seed}: Corollary 2 violated")
        }
    }
}

#[test]
fn undisciplined_program_fails_the_condition_checkers() {
    // Racy writes without locks or barriers: the discipline checkers must
    // reject (soundness of the negative direction).
    let mut sys = System::new(2, Mode::Causal).seed(1).record(true);
    for p in 0..2u32 {
        sys.spawn(move |ctx| {
            ctx.write(Loc(0), p as i64 + 1);
            let _ = ctx.read_causal(Loc(0));
        });
    }
    let h = sys.run().unwrap().history.unwrap();
    assert_eq!(programs::infer_lock_mapping(&h).unwrap(), None);
    assert!(programs::check_pram_consistent_program(&h).is_err());
    // Theorem 1 must not apply: the concurrent conflicting writes fail
    // Definition 5.
    assert!(!commute::check_theorem1(&h).unwrap().applies());
}

#[test]
fn final_states_match_a_sequential_execution() {
    // Corollary 1's practical upshot: the final memory state of a
    // disciplined run equals the state of the witness serialization.
    for seed in 0..4 {
        let outcome = entry_consistent_system(seed, 2, 3).run().unwrap();
        let h = outcome.history.as_ref().unwrap();
        if let sc::ScVerdict::SequentiallyConsistent(order) =
            sc::check_sequential_with_budget(h, 2_000_000).unwrap()
        {
            // Replay the witness sequentially and compare final values.
            let mut mem = std::collections::HashMap::new();
            for op in &order {
                if let mixed_consistency::OpKind::Write { loc, value, .. } = &h.op(*op).kind {
                    mem.insert(*loc, *value);
                }
            }
            for (loc, v) in mem {
                assert_eq!(
                    outcome.final_value(ProcId(0), loc),
                    v,
                    "seed {seed}: {loc} diverged from the serialization"
                );
            }
        }
    }
}

#[test]
fn mixed_labels_in_one_program_judged_per_label() {
    // A program mixing both labels: Definition 4 judges each read by its
    // own label; the stricter all-causal judgment may fail or pass
    // depending on schedule, but the mixed judgment must always pass on
    // the mixed protocol.
    for seed in 0..6 {
        let mut sys = System::new(3, Mode::Mixed).seed(seed).record(true);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                ctx.write(Loc(p), p as i64 + 10);
                let _ = ctx.read_pram(Loc((p + 1) % 3));
                let _ = ctx.read_causal(Loc((p + 2) % 3));
                ctx.write(Loc(p), p as i64 + 20);
                let _ = ctx.read(Loc(p), ReadLabel::Pram);
            });
        }
        let h = sys.run().unwrap().history.unwrap();
        check::check_mixed(&h).unwrap();
    }
}
