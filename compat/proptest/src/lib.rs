//! Vendored, self-contained subset of the `proptest` API.
//!
//! Offline stand-in implementing the slice of proptest this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`/`boxed`,
//! range and tuple strategies, [`any`], `collection::vec`, the
//! [`prop_oneof!`] / [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (reproducible runs, no persisted failure
//! files), and there is **no shrinking** — a failing case panics with the
//! generated values as bound by the test body's own assertion message.

#![warn(missing_docs)]

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Returns the deterministic RNG for the `case`-th test case.
pub fn test_rng(case: u32) -> TestRng {
    // Golden-ratio stride decorrelates consecutive cases.
    TestRng::seed_from_u64(0x9e3779b97f4a7c15u64.wrapping_mul(case as u64 + 1))
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe internal form of [`Strategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A weighted union of strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// Builds a weighted union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof: all weights zero");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if roll < *w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights covered the roll")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Anything usable as a `vec` length specification: an exact `usize`
    /// or a range of lengths.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Generates a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The prelude: everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (no shrinking: plain
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (no shrinking: plain
/// `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted (`w => strategy`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(__case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0usize..5, -3i64..=3)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            prop_assert!((-3..=3).contains(&b));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..4, 2..6), exact in crate::collection::vec(any::<u64>(), 3usize)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![3 => (0u32..2).prop_map(|x| x as i64), 1 => (10u32..12).prop_map(|x| x as i64)]) {
            prop_assert!(v < 2 || (10..12).contains(&v), "{v}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1_000_000_000).prop_map(|x| x * 2);
        let run = || (0..10).map(|case| s.generate(&mut crate::test_rng(case))).collect::<Vec<_>>();
        assert_eq!(run(), run());
    }
}
