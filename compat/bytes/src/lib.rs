//! Vendored offline subset of the `bytes` crate: reference-counted byte
//! buffers with cheap slicing, built for the zero-copy framing path in
//! `mc-net`.
//!
//! Differences from upstream (deliberate, to keep the subset small):
//!
//! - [`BytesMut::split_to`] returns a frozen [`Bytes`] view directly
//!   (upstream returns another `BytesMut`); the framing code only ever
//!   wants an immutable frame out of the receive buffer.
//! - Backing storage is a fixed, zero-initialised region that never
//!   reallocates in place. `reserve` either *reclaims* the region (when
//!   no frozen views are still alive) or swaps in a fresh one. The
//!   reclaim-vs-allocate decision is counted in process-wide pool
//!   statistics ([`pool_stats`]) so tests can pin the steady-state
//!   allocation behaviour of the hot path.
//!
//! # Safety model
//!
//! A buffer region is logically split at two cursors, `start ≤ end`:
//! `[0, start)` is frozen (owned by outstanding [`Bytes`] views),
//! `[start, end)` is written-but-unconsumed, and `[end, cap)` is spare.
//! Writes only ever touch `[end, cap)`; frozen views only ever read
//! `[0, start)`. The two ranges are disjoint, cursors only advance, and
//! the region is only reset or replaced when the owner proves (via the
//! reference count) that no frozen view is alive — so shared access is
//! race-free without any per-access synchronisation.

use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh backing regions allocated (pool misses).
static POOL_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// In-place region reclaims (pool hits: `reserve` found the region free
/// of frozen views and reset it instead of allocating).
static POOL_REUSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide buffer-pool counters: `(allocations, reuses)`. A hot
/// loop in steady state should drive the reuse count, not the
/// allocation count.
pub fn pool_stats() -> (u64, u64) {
    (POOL_ALLOCS.load(Ordering::Relaxed), POOL_REUSES.load(Ordering::Relaxed))
}

/// The shared backing region: fixed capacity, zero-initialised, never
/// grown in place.
struct Shared {
    buf: UnsafeCell<Box<[u8]>>,
}

// Safety: all mutation goes through `BytesMut` (unique owner of the
// write cursor) and is confined to `[end, cap)`; concurrent readers
// (`Bytes` clones on other threads) are confined to frozen `[0, start)`.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    fn with_capacity(cap: usize) -> Arc<Shared> {
        POOL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        Arc::new(Shared { buf: UnsafeCell::new(vec![0u8; cap].into_boxed_slice()) })
    }

    fn capacity(&self) -> usize {
        // Safety: the box itself (pointer + length) is only replaced
        // when the owning `BytesMut` holds the sole reference.
        unsafe { (&*self.buf.get()).len() }
    }

    /// Safety: the caller must hold a window into an immutable or
    /// exclusively-owned part of the region (see the module-level model).
    unsafe fn slice(&self, off: usize, len: usize) -> &[u8] {
        &(&*self.buf.get())[off..off + len]
    }

    /// Safety: the caller must be the unique writer and the window must
    /// be disjoint from every frozen view.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, off: usize, len: usize) -> &mut [u8] {
        &mut (&mut *self.buf.get())[off..off + len]
    }
}

/// An immutable, cheaply cloneable view into a shared byte region.
pub struct Bytes {
    shared: Option<Arc<Shared>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// The empty view (no backing region at all).
    pub const fn new() -> Bytes {
        Bytes { shared: None, off: 0, len: 0 }
    }

    /// Copies `src` into a freshly allocated region. Cold-path
    /// constructor — the hot path slices pooled buffers instead.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(src.len().max(1));
        b.put_slice(src);
        b.freeze()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of this view (zero-copy; clones the region handle).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of bounds");
        Bytes {
            shared: self.shared.clone(),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` becomes the
    /// remainder. Zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to out of bounds");
        let head = self.slice(0..at);
        self.off += at;
        self.len -= at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes { shared: self.shared.clone(), off: self.off, len: self.len }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.shared {
            None => &[],
            // Safety: this window was frozen when the view was created
            // and the writer never touches frozen offsets again.
            Some(s) => unsafe { s.slice(self.off, self.len) },
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

/// A unique, appendable byte buffer over a pooled region. Frames are
/// appended at the write cursor and frozen off the front as [`Bytes`].
pub struct BytesMut {
    shared: Arc<Shared>,
    /// Start of the written-but-unconsumed window (everything before is
    /// frozen into outstanding `Bytes` views).
    start: usize,
    /// End of the written window (everything from here to capacity is
    /// spare, zero-initialised space).
    end: usize,
}

impl BytesMut {
    /// A buffer over a fresh region of at least `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { shared: Shared::with_capacity(cap.max(1)), start: 0, end: 0 }
    }

    /// Unconsumed written bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Total capacity of the current backing region.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Ensures at least `additional` bytes of spare space. Reclaims the
    /// current region in place when no frozen views are alive (the pool
    /// hit), otherwise swaps in a fresh region (the pool miss). Either
    /// way the unconsumed window is preserved.
    pub fn reserve(&mut self, additional: usize) {
        let cap = self.capacity();
        if cap - self.end >= additional {
            return;
        }
        let live = self.end - self.start;
        if Arc::strong_count(&self.shared) == 1 && cap >= live + additional {
            // Sole owner: every frozen view has been dropped, so the
            // region can be compacted and reused without a new
            // allocation. This is the steady-state path.
            if live > 0 {
                // Safety: unique owner, and copy_within handles overlap.
                unsafe {
                    (&mut *self.shared.buf.get()).copy_within(self.start..self.end, 0);
                }
            }
            self.start = 0;
            self.end = live;
            POOL_REUSES.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Frozen views still alive (or the region is simply too small):
        // allocate a fresh region and migrate the unconsumed window.
        let want = (live + additional).max(cap).next_power_of_two();
        let fresh = Shared::with_capacity(want);
        if live > 0 {
            // Safety: fresh region is uniquely ours; source window is
            // the written range of the old region.
            unsafe {
                fresh.slice_mut(0, live).copy_from_slice(self.shared.slice(self.start, live));
            }
        }
        self.shared = fresh;
        self.start = 0;
        self.end = live;
    }

    /// Appends `src`, growing via [`BytesMut::reserve`] if needed.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.reserve(src.len());
        // Safety: `[end, end+len)` is spare space; we are the unique
        // writer.
        unsafe {
            self.shared.slice_mut(self.end, src.len()).copy_from_slice(src);
        }
        self.end += src.len();
    }

    pub fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    pub fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    pub fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    pub fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Splits off the first `at` unconsumed bytes as a frozen [`Bytes`]
    /// view (zero-copy; upstream returns `BytesMut` here, see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let frame = Bytes { shared: Some(self.shared.clone()), off: self.start, len: at };
        self.start += at;
        frame
    }

    /// Freezes the whole unconsumed window.
    pub fn freeze(mut self) -> Bytes {
        let len = self.len();
        self.split_to(len)
    }

    /// The spare (writable) tail of the region, for direct socket reads.
    /// Always zero-initialised, so plain `&mut [u8]` I/O is safe; pair
    /// with [`BytesMut::advance_written`].
    pub fn spare_mut(&mut self) -> &mut [u8] {
        let cap = self.capacity();
        // Safety: `[end, cap)` is spare; we are the unique writer.
        unsafe { self.shared.slice_mut(self.end, cap - self.end) }
    }

    /// Commits `n` bytes written into [`BytesMut::spare_mut`].
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the spare space.
    pub fn advance_written(&mut self, n: usize) {
        assert!(self.end + n <= self.capacity(), "advance past capacity");
        self.end += n;
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: the unconsumed window is only written through `&mut
        // self` methods, which cannot overlap this borrow.
        unsafe { self.shared.slice(self.start, self.end - self.start) }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} of {} bytes)", self.len(), self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_freeze_slice_roundtrip() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"hello ");
        b.put_slice(b"world");
        assert_eq!(&b[..], b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        let tail = b.split_to(5);
        assert_eq!(&tail[..], b"world");
        assert!(b.is_empty());
        assert_eq!(&head.slice(0..5)[..], b"hello");
    }

    #[test]
    fn bytes_split_to_advances_view() {
        let mut b = Bytes::copy_from_slice(b"abcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
    }

    #[test]
    fn reserve_reclaims_when_views_are_dropped() {
        let mut b = BytesMut::with_capacity(16);
        let (allocs0, reuses0) = pool_stats();
        for _ in 0..100 {
            b.put_slice(&[7u8; 12]);
            let frame = b.split_to(12);
            assert_eq!(frame.len(), 12);
            drop(frame);
            // The view is gone, so this must reclaim in place.
            b.reserve(12);
        }
        let (allocs1, reuses1) = pool_stats();
        assert_eq!(allocs1 - allocs0, 0, "steady-state loop must not allocate");
        assert!(reuses1 - reuses0 >= 99, "steady-state loop must reclaim");
    }

    #[test]
    fn reserve_migrates_when_views_are_alive() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(&[1u8; 8]);
        let frame = b.split_to(8);
        b.put_slice(&[2u8; 8]);
        // The frozen view pins the old region; growing must migrate.
        b.reserve(16);
        b.put_slice(&[3u8; 16]);
        assert_eq!(&frame[..], &[1u8; 8], "frozen view survives migration");
        assert_eq!(b.len(), 24);
        assert_eq!(&b[..8], &[2u8; 8]);
        assert_eq!(&b[8..], &[3u8; 16]);
    }

    #[test]
    fn socket_read_pattern() {
        let mut b = BytesMut::with_capacity(32);
        let n = {
            let spare = b.spare_mut();
            spare[..4].copy_from_slice(b"data");
            4
        };
        b.advance_written(n);
        assert_eq!(&b[..], b"data");
    }

    #[test]
    fn little_endian_put_helpers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xab);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(b.len(), 15);
        assert_eq!(b[0], 0xab);
        assert_eq!(&b[1..3], &0x1234u16.to_le_bytes());
        assert_eq!(&b[3..7], &0xdead_beefu32.to_le_bytes());
        assert_eq!(&b[7..15], &0x0102_0304_0506_0708u64.to_le_bytes());
    }
}
