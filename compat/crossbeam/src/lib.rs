//! Vendored, self-contained subset of the `crossbeam` channel API.
//!
//! Offline stand-in for `crossbeam::channel`: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`, with cloneable `Sender` and
//! `Receiver` halves and the same disconnect semantics the live executor
//! relies on (send fails once every receiver is gone; recv fails once the
//! queue is drained and every sender is gone). Not optimized for
//! throughput — the live executor's message rates are tiny compared to
//! the cost of the protocol work on either side.

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap();
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.chan.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_within_one_sender() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_fires_without_sender_activity() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            drop(tx);
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let sender = thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            sender.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }
    }
}
