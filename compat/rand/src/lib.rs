//! Vendored, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment for this repository must work fully offline, so
//! instead of the crates.io `rand` we ship the small slice of its API the
//! workspace actually uses: [`rngs::StdRng`] (here a xoshiro256++ PRNG),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. Everything is deterministic given a
//! seed — exactly the property the simulator needs — and there are no
//! OS-entropy or platform dependencies.
//!
//! The generator is not the upstream ChaCha12 `StdRng`, so streams differ
//! from crates.io `rand` for the same seed; nothing in this workspace
//! depends on the exact stream, only on seed-determinism.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform on the representable grid in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Statistically strong, tiny, and fully deterministic from a `u64`
    /// seed (state expanded with SplitMix64, per the xoshiro authors'
    /// recommendation). Not the upstream `rand::rngs::StdRng` stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a100: Vec<u64> = (0..100).map(|_| a.gen_range(0..1u64 << 60)).collect();
        let c100: Vec<u64> = (0..100).map(|_| c.gen_range(0..1u64 << 60)).collect();
        assert_ne!(a100, c100);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.gen_range(4usize..=4);
            assert_eq!(s, 4);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
