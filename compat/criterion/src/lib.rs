//! Vendored, self-contained subset of the `criterion` API.
//!
//! Offline stand-in for the benchmark harness: it runs each closure a
//! configurable number of iterations, reports mean wall-clock time per
//! iteration on stdout, and exposes just the API surface
//! `benches/paper.rs` uses (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`). No statistics, plots, or baselines —
//! numbers are indicative, not rigorous.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget (upper bound on measuring).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up-time budget (upper bound on warm-up).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn run_one(&self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            routine(&mut b);
        }
        // Measurement.
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        let deadline = Instant::now() + self.measurement_time;
        routine(&mut b);
        let mut iters = b.iters;
        let mut elapsed = b.elapsed;
        while Instant::now() < deadline {
            let mut more = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
            routine(&mut more);
            iters += more.iters;
            elapsed += more.elapsed;
        }
        let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        println!("bench {label:<48} {:>12.0} ns/iter ({iters} iters)", per_iter);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` under `id`.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, routine);
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&label, |b| routine(b, input));
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labeled `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timer handle passed to benchmark routines.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("smoke");
        let mut ran = 0u64;
        g.bench_function("id", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| b.iter(|| black_box(x) * 2));
        g.finish();
        assert!(ran > 0);
    }
}
