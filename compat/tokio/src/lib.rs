//! Vendored offline subset of the `tokio` runtime API: a multi-threaded
//! task executor, timer-driven socket readiness, async TCP, bounded
//! mpsc channels, and sleeps — just enough to run `mc-net`'s transport
//! tasks without registry access.
//!
//! Differences from upstream (deliberate, to keep the subset small):
//!
//! - Socket readiness is retry-driven, not epoll-driven: an I/O future
//!   that hits `WouldBlock` re-arms itself on the timer wheel a few
//!   tens of microseconds out. Loopback throughput is unaffected (each
//!   retry drains everything available); only the idle-to-busy wakeup
//!   pays the retry granularity.
//! - `TcpStream` exposes inherent `async fn read`/`write_all` methods
//!   instead of the `AsyncRead`/`AsyncWrite` traits.
//! - No I/O driver shutdown: the timer thread is a process-wide
//!   singleton that parks when idle.

pub use task::{spawn, spawn_blocking, JoinError, JoinHandle};

mod exec {
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::task::{Context, Poll, Wake, Waker};

    type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

    pub(crate) struct ExecShared {
        queue: Mutex<VecDeque<Arc<Task>>>,
        cv: Condvar,
        shutdown: AtomicBool,
    }

    pub(crate) struct Task {
        exec: Weak<ExecShared>,
        /// `Some` while the task is live; polled under the lock, so a
        /// concurrent wake enqueues a re-poll rather than racing.
        fut: Mutex<Option<BoxFuture>>,
    }

    impl Wake for Task {
        fn wake(self: Arc<Self>) {
            if let Some(exec) = self.exec.upgrade() {
                exec.push(self);
            }
        }
    }

    impl ExecShared {
        pub(crate) fn new() -> Arc<ExecShared> {
            Arc::new(ExecShared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            })
        }

        fn push(&self, task: Arc<Task>) {
            let mut q = self.queue.lock().expect("executor queue healthy");
            q.push_back(task);
            self.cv.notify_one();
        }

        pub(crate) fn spawn_task(self: &Arc<Self>, fut: BoxFuture) {
            let task = Arc::new(Task { exec: Arc::downgrade(self), fut: Mutex::new(Some(fut)) });
            self.push(task);
        }

        pub(crate) fn worker_loop(self: Arc<Self>) {
            loop {
                let task = {
                    let mut q = self.queue.lock().expect("executor queue healthy");
                    loop {
                        if self.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        if let Some(t) = q.pop_front() {
                            break t;
                        }
                        q = self.cv.wait(q).expect("executor queue healthy");
                    }
                };
                let waker = Waker::from(task.clone());
                let mut cx = Context::from_waker(&waker);
                let mut slot = task.fut.lock().expect("task slot healthy");
                if let Some(fut) = slot.as_mut() {
                    if fut.as_mut().poll(&mut cx).is_ready() {
                        *slot = None;
                    }
                }
            }
        }

        pub(crate) fn begin_shutdown(&self) {
            self.shutdown.store(true, Ordering::SeqCst);
            self.cv.notify_all();
            // Drop queued tasks so their resources (sockets, channels)
            // release promptly.
            self.queue.lock().expect("executor queue healthy").clear();
        }
    }

    /// Parks the calling thread until its waker fires — the `block_on`
    /// root waker.
    pub(crate) struct Parker {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    impl Parker {
        pub(crate) fn new() -> Arc<Parker> {
            Arc::new(Parker { woken: Mutex::new(false), cv: Condvar::new() })
        }

        pub(crate) fn park(&self) {
            let mut woken = self.woken.lock().expect("parker healthy");
            while !*woken {
                woken = self.cv.wait(woken).expect("parker healthy");
            }
            *woken = false;
        }
    }

    impl Wake for Parker {
        fn wake(self: Arc<Self>) {
            *self.woken.lock().expect("parker healthy") = true;
            self.cv.notify_one();
        }
    }

    pub(crate) fn poll_once<F: Future>(fut: Pin<&mut F>, waker: &Waker) -> Poll<F::Output> {
        let mut cx = Context::from_waker(waker);
        fut.poll(&mut cx)
    }
}

mod timer {
    //! The process-wide timer wheel: wakes registered wakers at (or just
    //! after) their deadline. Doubles as the socket-readiness retry
    //! driver.

    use std::sync::{Condvar, Mutex, OnceLock};
    use std::task::Waker;
    use std::time::{Duration, Instant};

    struct TimerShared {
        entries: Mutex<Vec<(Instant, Waker)>>,
        cv: Condvar,
    }

    static TIMER: OnceLock<&'static TimerShared> = OnceLock::new();

    fn shared() -> &'static TimerShared {
        TIMER.get_or_init(|| {
            let shared: &'static TimerShared = Box::leak(Box::new(TimerShared {
                entries: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("tokio-compat-timer".into())
                .spawn(move || timer_loop(shared))
                .expect("spawn timer thread");
            shared
        })
    }

    fn timer_loop(shared: &'static TimerShared) {
        let mut entries = shared.entries.lock().expect("timer healthy");
        loop {
            let now = Instant::now();
            let mut due = Vec::new();
            entries.retain(|(t, w)| {
                if *t <= now {
                    due.push(w.clone());
                    false
                } else {
                    true
                }
            });
            let next = entries.iter().map(|(t, _)| *t).min();
            if !due.is_empty() {
                drop(entries);
                for w in due {
                    w.wake();
                }
                entries = shared.entries.lock().expect("timer healthy");
                continue;
            }
            entries = match next {
                Some(t) => {
                    let wait = t.saturating_duration_since(now);
                    shared.cv.wait_timeout(entries, wait).expect("timer healthy").0
                }
                None => shared.cv.wait(entries).expect("timer healthy"),
            };
        }
    }

    /// Arranges for `waker` to fire once `delay` has elapsed.
    pub(crate) fn wake_after(delay: Duration, waker: Waker) {
        let shared = shared();
        let mut entries = shared.entries.lock().expect("timer healthy");
        entries.push((Instant::now() + delay, waker));
        shared.cv.notify_one();
    }

    /// The readiness-retry interval for I/O futures that hit
    /// `WouldBlock`.
    pub(crate) const IO_RETRY: Duration = Duration::from_micros(40);
}

pub mod runtime {
    //! The multi-threaded runtime: worker threads draining a shared
    //! task queue, plus `block_on` on the caller's thread.

    use std::future::Future;
    use std::sync::Arc;
    use std::task::{Poll, Waker};

    use crate::exec::{poll_once, ExecShared, Parker};

    std::thread_local! {
        static CURRENT: std::cell::RefCell<Option<Handle>> = const { std::cell::RefCell::new(None) };
    }

    /// A cloneable handle to a runtime's task queue.
    #[derive(Clone)]
    pub struct Handle {
        pub(crate) shared: Arc<ExecShared>,
    }

    impl Handle {
        /// The handle of the runtime driving the current thread.
        ///
        /// # Panics
        ///
        /// Panics outside a runtime context.
        pub fn current() -> Handle {
            CURRENT.with(|c| c.borrow().clone()).expect("not inside a tokio runtime context")
        }

        /// Spawns a future onto this runtime.
        pub fn spawn<F>(&self, fut: F) -> crate::task::JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            crate::task::spawn_on(self, fut)
        }

        /// Runs `fut` to completion on the calling thread, with this
        /// runtime's workers driving any spawned tasks.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
            let parker = Parker::new();
            let waker = Waker::from(parker.clone());
            let mut fut = std::pin::pin!(fut);
            let out = loop {
                match poll_once(fut.as_mut(), &waker) {
                    Poll::Ready(v) => break v,
                    Poll::Pending => parker.park(),
                }
            };
            CURRENT.with(|c| *c.borrow_mut() = prev);
            out
        }
    }

    /// A running runtime: worker threads live as long as this value.
    pub struct Runtime {
        handle: Handle,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl Runtime {
        /// A runtime with a small default worker pool.
        ///
        /// # Errors
        ///
        /// Infallible in this subset; `Result` keeps upstream's
        /// signature.
        pub fn new() -> std::io::Result<Runtime> {
            let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
            Ok(Runtime::with_workers(workers))
        }

        /// A runtime with exactly `workers` worker threads.
        pub fn with_workers(workers: usize) -> Runtime {
            let shared = ExecShared::new();
            let handle = Handle { shared: shared.clone() };
            let workers = (0..workers.max(1))
                .map(|i| {
                    let shared = shared.clone();
                    let handle = handle.clone();
                    std::thread::Builder::new()
                        .name(format!("tokio-compat-worker-{i}"))
                        .spawn(move || {
                            CURRENT.with(|c| *c.borrow_mut() = Some(handle));
                            shared.worker_loop();
                        })
                        .expect("spawn runtime worker")
                })
                .collect();
            Runtime { handle, workers }
        }

        pub fn handle(&self) -> &Handle {
            &self.handle
        }

        /// Runs `fut` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            self.handle.block_on(fut)
        }
    }

    impl Drop for Runtime {
        fn drop(&mut self) {
            self.handle.shared.begin_shutdown();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

pub mod task {
    //! Task spawning and join handles.

    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    use crate::runtime::Handle;

    /// The spawned task panicked or was abandoned by a shut-down
    /// runtime.
    #[derive(Debug)]
    pub struct JoinError;

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task failed or was abandoned")
        }
    }

    impl std::error::Error for JoinError {}

    struct JoinState<T> {
        value: Option<T>,
        done: bool,
        waker: Option<Waker>,
    }

    /// Awaitable handle to a spawned task's output.
    pub struct JoinHandle<T> {
        state: Arc<Mutex<JoinState<T>>>,
    }

    struct Completer<T> {
        state: Arc<Mutex<JoinState<T>>>,
    }

    impl<T> Completer<T> {
        fn complete(&self, value: Option<T>) {
            let mut st = self.state.lock().expect("join state healthy");
            st.value = value;
            st.done = true;
            if let Some(w) = st.waker.take() {
                drop(st);
                w.wake();
            }
        }
    }

    impl<T> Drop for Completer<T> {
        fn drop(&mut self) {
            let mut st = self.state.lock().expect("join state healthy");
            if !st.done {
                // Future dropped without completing (runtime shutdown or
                // panic inside poll): surface as JoinError.
                st.done = true;
                if let Some(w) = st.waker.take() {
                    drop(st);
                    w.wake();
                }
            }
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut st = self.state.lock().expect("join state healthy");
            if st.done {
                return Poll::Ready(st.value.take().ok_or(JoinError));
            }
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    fn new_join<T>() -> (JoinHandle<T>, Completer<T>) {
        let state = Arc::new(Mutex::new(JoinState { value: None, done: false, waker: None }));
        (JoinHandle { state: state.clone() }, Completer { state })
    }

    pub(crate) fn spawn_on<F>(handle: &Handle, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (join, completer) = new_join();
        handle.shared.spawn_task(Box::pin(async move {
            let out = fut.await;
            completer.complete(Some(out));
        }));
        join
    }

    /// Spawns a future onto the current runtime.
    ///
    /// # Panics
    ///
    /// Panics outside a runtime context.
    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        spawn_on(&Handle::current(), fut)
    }

    /// Runs a blocking closure on a dedicated thread, awaitable from
    /// async context.
    pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (join, completer) = new_join();
        std::thread::Builder::new()
            .name("tokio-compat-blocking".into())
            .spawn(move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                completer.complete(out.ok());
            })
            .expect("spawn blocking thread");
        join
    }
}

pub mod time {
    //! Timer futures.

    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    /// Future returned by [`sleep`].
    pub struct Sleep {
        deadline: Instant,
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let now = Instant::now();
            if now >= self.deadline {
                return Poll::Ready(());
            }
            crate::timer::wake_after(self.deadline - now, cx.waker().clone());
            Poll::Pending
        }
    }

    /// Completes once `dur` has elapsed.
    pub fn sleep(dur: Duration) -> Sleep {
        Sleep { deadline: Instant::now() + dur }
    }
}

pub mod net {
    //! Async TCP over nonblocking std sockets, with timer-driven
    //! readiness retries (see the crate docs).

    use std::future::poll_fn;
    use std::io::{self, Read, Write};
    use std::net::SocketAddr;
    use std::task::Poll;

    use crate::timer::{wake_after, IO_RETRY};

    /// A listening TCP socket.
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr` (synchronous under the hood; `async` keeps
        /// upstream's signature).
        ///
        /// # Errors
        ///
        /// Propagates the bind error.
        pub async fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Wraps an already-bound std listener.
        ///
        /// # Errors
        ///
        /// Propagates the `set_nonblocking` error.
        pub fn from_std(inner: std::net::TcpListener) -> io::Result<TcpListener> {
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// # Errors
        ///
        /// Propagates the underlying `local_addr` error.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts the next inbound connection.
        ///
        /// # Errors
        ///
        /// Propagates fatal accept errors (`WouldBlock` retries).
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            poll_fn(|cx| match self.inner.accept() {
                Ok((stream, addr)) => match TcpStream::from_std(stream) {
                    Ok(s) => Poll::Ready(Ok((s, addr))),
                    Err(e) => Poll::Ready(Err(e)),
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    wake_after(IO_RETRY, cx.waker().clone());
                    Poll::Pending
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }
    }

    /// A connected TCP socket.
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`. The blocking connect runs on a dedicated
        /// thread so runtime workers stay free.
        ///
        /// # Errors
        ///
        /// Propagates the connect error.
        pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let stream = crate::task::spawn_blocking(move || std::net::TcpStream::connect(addr))
                .await
                .map_err(|_| io::Error::other("connect task failed"))??;
            TcpStream::from_std(stream)
        }

        /// Wraps an already-connected std stream.
        ///
        /// # Errors
        ///
        /// Propagates the `set_nonblocking` error.
        pub fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        /// # Errors
        ///
        /// Propagates the underlying setsockopt error.
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// Reads into `buf`, resolving with the number of bytes read
        /// (0 = EOF).
        ///
        /// # Errors
        ///
        /// Propagates fatal read errors (`WouldBlock` retries).
        pub async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            poll_fn(|cx| match (&self.inner).read(buf) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    wake_after(IO_RETRY, cx.waker().clone());
                    Poll::Pending
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }

        /// Writes all of `buf`.
        ///
        /// # Errors
        ///
        /// Propagates fatal write errors; a closed peer surfaces as
        /// `WriteZero` or a broken pipe.
        pub async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            let mut written = 0usize;
            poll_fn(|cx| {
                while written < buf.len() {
                    match (&self.inner).write(&buf[written..]) {
                        Ok(0) => {
                            return Poll::Ready(Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                "peer closed",
                            )))
                        }
                        Ok(n) => written += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            wake_after(IO_RETRY, cx.waker().clone());
                            return Poll::Pending;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Poll::Ready(Err(e)),
                    }
                }
                Poll::Ready(Ok(()))
            })
            .await
        }
    }
}

pub mod sync {
    //! Synchronisation primitives.

    pub mod mpsc {
        //! A bounded multi-producer single-consumer channel with both
        //! async and blocking endpoints — the bridge between synchronous
        //! protocol threads and async transport tasks.

        use std::collections::VecDeque;
        use std::future::poll_fn;
        use std::sync::{Arc, Condvar, Mutex};
        use std::task::{Poll, Waker};

        struct Chan<T> {
            queue: VecDeque<T>,
            cap: usize,
            senders: usize,
            rx_alive: bool,
            rx_waker: Option<Waker>,
        }

        struct Shared<T> {
            chan: Mutex<Chan<T>>,
            /// Blocked senders wait here for space (or receiver death).
            space: Condvar,
        }

        /// Sending endpoint (cloneable).
        pub struct Sender<T> {
            shared: Arc<Shared<T>>,
        }

        /// Receiving endpoint.
        pub struct Receiver<T> {
            shared: Arc<Shared<T>>,
        }

        /// The receiver was dropped; the value comes back.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        /// A bounded channel of capacity `cap`.
        ///
        /// # Panics
        ///
        /// Panics if `cap` is zero.
        pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
            assert!(cap > 0, "mpsc channel capacity must be positive");
            let shared = Arc::new(Shared {
                chan: Mutex::new(Chan {
                    queue: VecDeque::with_capacity(cap),
                    cap,
                    senders: 1,
                    rx_alive: true,
                    rx_waker: None,
                }),
                space: Condvar::new(),
            });
            (Sender { shared: shared.clone() }, Receiver { shared })
        }

        impl<T> Sender<T> {
            /// Blocks the calling (non-async) thread until there is
            /// space, then enqueues — the transport's backpressure
            /// point.
            ///
            /// # Errors
            ///
            /// Returns the value if the receiver is gone.
            pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
                let mut chan = self.shared.chan.lock().expect("channel healthy");
                while chan.rx_alive && chan.queue.len() >= chan.cap {
                    chan = self.shared.space.wait(chan).expect("channel healthy");
                }
                if !chan.rx_alive {
                    return Err(SendError(value));
                }
                chan.queue.push_back(value);
                let waker = chan.rx_waker.take();
                drop(chan);
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }

            /// Slots currently free in the channel — `max_capacity`
            /// when the queue is drained.
            pub fn capacity(&self) -> usize {
                let chan = self.shared.chan.lock().expect("channel healthy");
                chan.cap - chan.queue.len()
            }

            /// The capacity the channel was created with.
            pub fn max_capacity(&self) -> usize {
                self.shared.chan.lock().expect("channel healthy").cap
            }
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Sender<T> {
                self.shared.chan.lock().expect("channel healthy").senders += 1;
                Sender { shared: self.shared.clone() }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut chan = self.shared.chan.lock().expect("channel healthy");
                chan.senders -= 1;
                if chan.senders == 0 {
                    let waker = chan.rx_waker.take();
                    drop(chan);
                    if let Some(w) = waker {
                        w.wake();
                    }
                }
            }
        }

        impl<T> Receiver<T> {
            /// Receives the next value; `None` once every sender is
            /// gone and the queue is drained.
            pub async fn recv(&mut self) -> Option<T> {
                poll_fn(|cx| {
                    let mut chan = self.shared.chan.lock().expect("channel healthy");
                    if let Some(v) = chan.queue.pop_front() {
                        // Space opened up: release one blocked sender.
                        self.shared.space.notify_one();
                        return Poll::Ready(Some(v));
                    }
                    if chan.senders == 0 {
                        return Poll::Ready(None);
                    }
                    chan.rx_waker = Some(cx.waker().clone());
                    Poll::Pending
                })
                .await
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut chan = self.shared.chan.lock().expect("channel healthy");
                chan.rx_alive = false;
                chan.queue.clear();
                self.shared.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use crate::runtime::Runtime;

    #[test]
    fn block_on_plain_future() {
        let rt = Runtime::with_workers(2);
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawned_tasks_run_on_workers() {
        let rt = Runtime::with_workers(2);
        let counter = Arc::new(AtomicUsize::new(0));
        rt.block_on(async {
            let mut joins = Vec::new();
            for _ in 0..16 {
                let counter = counter.clone();
                joins.push(crate::spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for j in joins {
                j.await.expect("task completes");
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn sleep_waits_roughly_long_enough() {
        let rt = Runtime::with_workers(1);
        let start = Instant::now();
        rt.block_on(crate::time::sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn spawn_blocking_roundtrip() {
        let rt = Runtime::with_workers(1);
        let out = rt.block_on(async { crate::spawn_blocking(|| 7 * 6).await.expect("runs") });
        assert_eq!(out, 42);
    }

    #[test]
    fn mpsc_bridges_sync_and_async() {
        let rt = Runtime::with_workers(2);
        let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.blocking_send(i).expect("receiver alive");
            }
        });
        let sum = rt.block_on(async move {
            let mut sum = 0u32;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            sum
        });
        producer.join().expect("producer exits");
        assert_eq!(sum, (0..100).sum());
    }

    #[test]
    fn tcp_echo_over_loopback() {
        let rt = Runtime::with_workers(2);
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().expect("addr"))
                .await
                .expect("bind");
            let addr = listener.local_addr().expect("addr");
            let server = crate::spawn(async move {
                let (mut conn, _) = listener.accept().await.expect("accept");
                let mut buf = [0u8; 64];
                let mut got = Vec::new();
                loop {
                    let n = conn.read(&mut buf).await.expect("read");
                    if n == 0 {
                        break;
                    }
                    got.extend_from_slice(&buf[..n]);
                    conn.write_all(&buf[..n]).await.expect("write");
                }
                got
            });
            let mut client = crate::net::TcpStream::connect(addr).await.expect("connect");
            client.write_all(b"ping pong").await.expect("write");
            let mut echo = vec![0u8; 9];
            let mut read = 0;
            while read < echo.len() {
                let n = client.read(&mut echo[read..]).await.expect("read");
                assert!(n > 0, "server closed early");
                read += n;
            }
            drop(client);
            assert_eq!(&echo, b"ping pong");
            assert_eq!(server.await.expect("server task"), b"ping pong");
        });
    }
}
