//! # mc-bench — the experiment harness
//!
//! Reproduces every figure and every evaluation claim of the paper as a
//! parameterized experiment producing labeled metric rows (virtual time,
//! message counts, bytes, stalls). The same runners back:
//!
//! * the `report` binary (`cargo run -p mc-bench --bin report`), which
//!   regenerates the tables recorded in `EXPERIMENTS.md`;
//! * the Criterion benches (`cargo bench`), which track the wall-clock
//!   cost of the simulator and checkers themselves.
//!
//! Experiment index (see `DESIGN.md` §5): E1 protocol access costs,
//! C1/F2/F3 solver comparison, C2/F5 Cholesky variants, C3 asynchronous
//! relaxation, E2 lock propagation variants, E3 barrier scaling, E4
//! checker throughput, F4 FDTD scaling.

#![warn(missing_docs)]

use std::fmt::Write as _;

use mixed_consistency::{Metrics, SimTime};

pub mod experiments;

/// One labeled row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment-specific key columns (already formatted).
    pub keys: Vec<(&'static str, String)>,
    /// Metric columns.
    pub vals: Vec<(&'static str, String)>,
}

impl Row {
    /// Builds a row from key and value columns.
    pub fn new(keys: Vec<(&'static str, String)>, vals: Vec<(&'static str, String)>) -> Self {
        Row { keys, vals }
    }
}

/// A titled experiment table, renderable as Markdown.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (e.g. "C1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's corresponding claim or figure.
    pub paper_ref: &'static str,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Renders the table as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}", self.id, self.title);
        let _ = writeln!(s, "*Paper:* {}\n", self.paper_ref);
        if self.rows.is_empty() {
            let _ = writeln!(s, "(no rows)");
            return s;
        }
        let header: Vec<&str> = self.rows[0]
            .keys
            .iter()
            .map(|(k, _)| *k)
            .chain(self.rows[0].vals.iter().map(|(k, _)| *k))
            .collect();
        let _ = writeln!(s, "| {} |", header.join(" | "));
        let _ = writeln!(s, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for r in &self.rows {
            let cells: Vec<&str> = r
                .keys
                .iter()
                .map(|(_, v)| v.as_str())
                .chain(r.vals.iter().map(|(_, v)| v.as_str()))
                .collect();
            let _ = writeln!(s, "| {} |", cells.join(" | "));
        }
        s
    }
}

/// Metric columns whose values are wall-clock measurements and therefore
/// hardware-dependent: a baseline diff compares them with a tolerance
/// band instead of exactly. Every other column is deterministic (fixed
/// seeds, virtual time) and must match a committed baseline byte-for-byte.
pub const WALL_COLS: &[&str] =
    &["check wall time", "ops/s", "dpor scheds/s", "naive scheds/s", "p99 read us"];

/// True when `col` holds a wall-clock (nondeterministic) measurement.
pub fn is_wall_col(col: &str) -> bool {
    WALL_COLS.contains(&col)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report: experiment id → titled row
/// list, each row split into `counters` (deterministic, diffed exactly)
/// and `wall` (wall-clock, diffed with a tolerance band). Every scalar is
/// a string and every metric sits on its own line, so two reports can be
/// compared line-by-line without a JSON parser (`bench_diff` does exactly
/// that; the `date` line is exempt).
pub fn report_json(date: &str, tables: &[Table]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"mc-bench/1\",");
    let _ = writeln!(s, "  \"date\": \"{}\",", json_escape(date));
    let _ =
        writeln!(s, "  \"command\": \"cargo run -p mc-bench --bin report --release -- --json\",");
    s.push_str("  \"experiments\": {\n");
    for (ti, t) in tables.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", json_escape(t.id));
        let _ = writeln!(s, "      \"title\": \"{}\",", json_escape(t.title));
        let _ = writeln!(s, "      \"paper\": \"{}\",", json_escape(t.paper_ref));
        s.push_str("      \"rows\": [\n");
        for (ri, r) in t.rows.iter().enumerate() {
            let key: Vec<String> = r.keys.iter().map(|(k, v)| format!("{k}={v}")).collect();
            s.push_str("        {\n");
            let _ = writeln!(s, "          \"key\": \"{}\",", json_escape(&key.join(" ")));
            for (section, wall) in [("counters", false), ("wall", true)] {
                let cols: Vec<&(&'static str, String)> =
                    r.vals.iter().filter(|(k, _)| is_wall_col(k) == wall).collect();
                let trail = if wall { "" } else { "," };
                if cols.is_empty() {
                    let _ = writeln!(s, "          \"{section}\": {{}}{trail}");
                    continue;
                }
                let _ = writeln!(s, "          \"{section}\": {{");
                for (ci, (k, v)) in cols.iter().enumerate() {
                    let comma = if ci + 1 < cols.len() { "," } else { "" };
                    let _ = writeln!(
                        s,
                        "            \"{}\": \"{}\"{comma}",
                        json_escape(k),
                        json_escape(v)
                    );
                }
                let _ = writeln!(s, "          }}{trail}");
            }
            let comma = if ri + 1 < t.rows.len() { "," } else { "" };
            let _ = writeln!(s, "        }}{comma}");
        }
        s.push_str("      ]\n");
        let comma = if ti + 1 < tables.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  }\n}\n");
    s
}

/// Formats `secs` seconds since the Unix epoch as a UTC `YYYY-MM-DD`
/// date (Howard Hinnant's `civil_from_days` algorithm — no external
/// date crate needed).
pub fn utc_date(secs: u64) -> String {
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Formats the standard metric columns from a [`Metrics`].
pub fn metric_cols(m: &Metrics) -> Vec<(&'static str, String)> {
    vec![
        ("virtual time", m.finish_time.to_string()),
        ("messages", m.messages.to_string()),
        ("kbytes", format!("{:.1}", m.bytes as f64 / 1024.0)),
        ("stall", m.stall_time.to_string()),
    ]
}

/// Formats a `SimTime` ratio as `x.xx×`.
pub fn speedup(base: SimTime, other: SimTime) -> String {
    if other.as_nanos() == 0 {
        return "∞".into();
    }
    format!("{:.2}×", base.as_nanos() as f64 / other.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = Table {
            id: "X0",
            title: "demo",
            paper_ref: "none",
            rows: vec![Row::new(vec![("mode", "pram".into())], vec![("messages", "3".into())])],
        };
        let md = t.to_markdown();
        assert!(md.contains("| mode | messages |"));
        assert!(md.contains("| pram | 3 |"));
        assert!(md.contains("### X0"));
    }

    #[test]
    fn empty_table() {
        let t = Table { id: "X1", title: "t", paper_ref: "p", rows: vec![] };
        assert!(t.to_markdown().contains("(no rows)"));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(SimTime::from_nanos(200), SimTime::from_nanos(100)), "2.00×");
        assert_eq!(speedup(SimTime::from_nanos(1), SimTime::ZERO), "∞");
    }

    #[test]
    fn utc_date_handles_epoch_and_leap_years() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_399), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC — a century leap day.
        assert_eq!(utc_date(951_782_400), "2000-02-29");
    }

    #[test]
    fn report_json_splits_counters_from_wall_and_is_line_oriented() {
        let t = Table {
            id: "E4",
            title: "demo \"quoted\"",
            paper_ref: "none",
            rows: vec![Row::new(
                vec![("n", "4".into()), ("mode", "mixed".into())],
                vec![
                    ("messages", "3".into()),
                    ("check wall time", "1.5ms".into()),
                    ("ops/s", "1200".into()),
                ],
            )],
        };
        let json = report_json("2026-08-05", &[t]);
        assert!(json.contains("\"key\": \"n=4 mode=mixed\""));
        assert!(json.contains("\"date\": \"2026-08-05\""));
        assert!(json.contains("\"title\": \"demo \\\"quoted\\\"\""));
        // Every metric sits alone on its own line.
        assert!(json
            .lines()
            .any(|l| l.trim() == "\"messages\": \"3\"," || l.trim() == "\"messages\": \"3\""));
        // The wall-clock columns land in the wall section, after counters.
        let counters = json.find("\"counters\"").unwrap();
        let wall = json.find("\"wall\"").unwrap();
        let msgs = json.find("\"messages\"").unwrap();
        let wt = json.find("\"check wall time\"").unwrap();
        assert!(counters < msgs && msgs < wall && wall < wt);
        assert!(json.find("\"ops/s\"").unwrap() > wall);
        // Deterministic: same input, same bytes.
        let t2 = Table {
            id: "E4",
            title: "demo \"quoted\"",
            paper_ref: "none",
            rows: vec![Row::new(
                vec![("n", "4".into()), ("mode", "mixed".into())],
                vec![
                    ("messages", "3".into()),
                    ("check wall time", "1.5ms".into()),
                    ("ops/s", "1200".into()),
                ],
            )],
        };
        assert_eq!(json, report_json("2026-08-05", &[t2]));
    }

    #[test]
    fn wall_cols_cover_every_nondeterministic_column() {
        for c in ["check wall time", "ops/s", "dpor scheds/s", "naive scheds/s"] {
            assert!(is_wall_col(c));
        }
        assert!(!is_wall_col("messages"));
        assert!(!is_wall_col("virtual time"));
    }
}
