//! # mc-bench — the experiment harness
//!
//! Reproduces every figure and every evaluation claim of the paper as a
//! parameterized experiment producing labeled metric rows (virtual time,
//! message counts, bytes, stalls). The same runners back:
//!
//! * the `report` binary (`cargo run -p mc-bench --bin report`), which
//!   regenerates the tables recorded in `EXPERIMENTS.md`;
//! * the Criterion benches (`cargo bench`), which track the wall-clock
//!   cost of the simulator and checkers themselves.
//!
//! Experiment index (see `DESIGN.md` §5): E1 protocol access costs,
//! C1/F2/F3 solver comparison, C2/F5 Cholesky variants, C3 asynchronous
//! relaxation, E2 lock propagation variants, E3 barrier scaling, E4
//! checker throughput, F4 FDTD scaling.

#![warn(missing_docs)]

use std::fmt::Write as _;

use mixed_consistency::{Metrics, SimTime};

pub mod experiments;

/// One labeled row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment-specific key columns (already formatted).
    pub keys: Vec<(&'static str, String)>,
    /// Metric columns.
    pub vals: Vec<(&'static str, String)>,
}

impl Row {
    /// Builds a row from key and value columns.
    pub fn new(keys: Vec<(&'static str, String)>, vals: Vec<(&'static str, String)>) -> Self {
        Row { keys, vals }
    }
}

/// A titled experiment table, renderable as Markdown.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (e.g. "C1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's corresponding claim or figure.
    pub paper_ref: &'static str,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Renders the table as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}", self.id, self.title);
        let _ = writeln!(s, "*Paper:* {}\n", self.paper_ref);
        if self.rows.is_empty() {
            let _ = writeln!(s, "(no rows)");
            return s;
        }
        let header: Vec<&str> = self.rows[0]
            .keys
            .iter()
            .map(|(k, _)| *k)
            .chain(self.rows[0].vals.iter().map(|(k, _)| *k))
            .collect();
        let _ = writeln!(s, "| {} |", header.join(" | "));
        let _ = writeln!(s, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for r in &self.rows {
            let cells: Vec<&str> = r
                .keys
                .iter()
                .map(|(_, v)| v.as_str())
                .chain(r.vals.iter().map(|(_, v)| v.as_str()))
                .collect();
            let _ = writeln!(s, "| {} |", cells.join(" | "));
        }
        s
    }
}

/// Formats the standard metric columns from a [`Metrics`].
pub fn metric_cols(m: &Metrics) -> Vec<(&'static str, String)> {
    vec![
        ("virtual time", m.finish_time.to_string()),
        ("messages", m.messages.to_string()),
        ("kbytes", format!("{:.1}", m.bytes as f64 / 1024.0)),
        ("stall", m.stall_time.to_string()),
    ]
}

/// Formats a `SimTime` ratio as `x.xx×`.
pub fn speedup(base: SimTime, other: SimTime) -> String {
    if other.as_nanos() == 0 {
        return "∞".into();
    }
    format!("{:.2}×", base.as_nanos() as f64 / other.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let t = Table {
            id: "X0",
            title: "demo",
            paper_ref: "none",
            rows: vec![Row::new(vec![("mode", "pram".into())], vec![("messages", "3".into())])],
        };
        let md = t.to_markdown();
        assert!(md.contains("| mode | messages |"));
        assert!(md.contains("| pram | 3 |"));
        assert!(md.contains("### X0"));
    }

    #[test]
    fn empty_table() {
        let t = Table { id: "X1", title: "t", paper_ref: "p", rows: vec![] };
        assert!(t.to_markdown().contains("(no rows)"));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(SimTime::from_nanos(200), SimTime::from_nanos(100)), "2.00×");
        assert_eq!(speedup(SimTime::from_nanos(1), SimTime::ZERO), "∞");
    }
}
