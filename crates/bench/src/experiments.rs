//! The experiment runners: one function per experiment id of DESIGN.md §5.

use mc_apps::cholesky::{run_cholesky, CholeskyConfig, CholeskyVariant};
use mc_apps::dense::diag_dominant_system;
use mc_apps::em::{run_fdtd, EmConfig};
use mc_apps::em2d::{run_fdtd2d, Em2dConfig};
use mc_apps::solver::{
    run_async_relaxation, run_barrier_solver, run_handshake_solver, SolverConfig,
};
use mc_apps::sparse::{grid_laplacian, random_sparse_spd, symbolic_factorize};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mixed_consistency::{
    check, FaultPlan, Loc, LockId, LockPropagation, Metrics, Mode, ReadLabel, SimTime, System,
};

use crate::{metric_cols, speedup, Row, Table};

/// A uniform random read/write workload with no synchronization:
/// the raw access-cost microbenchmark.
fn access_workload(mode: Mode, write_frac: f64, procs: usize, ops: usize, seed: u64) -> Metrics {
    let mut sys = System::new(procs, mode).seed(seed);
    for p in 0..procs {
        sys.spawn(move |ctx| {
            let mut rng = StdRng::seed_from_u64(seed * 131 + p as u64);
            let mut val = (p as i64 + 1) * 1_000_000;
            for _ in 0..ops {
                let loc = Loc(rng.gen_range(0..8u32));
                if rng.gen_bool(write_frac) {
                    val += 1;
                    ctx.write(loc, val);
                } else {
                    let label = if rng.gen_bool(0.5) { ReadLabel::Pram } else { ReadLabel::Causal };
                    let _ = ctx.read(loc, label);
                }
            }
        });
    }
    sys.run().expect("workload runs").metrics
}

/// The same access mix with batched update propagation switchable — the
/// E8 comparison axis — plus a barrier every [`SYNC_PERIOD`] operations.
/// The barriers bound the coalescing window (an unsynchronized workload
/// coalesces an entire run into one batch per process, which measures
/// nothing): each phase's buffered writes must flush before the arrival
/// message, in both configurations, so the reduction reported is the
/// per-phase one a synchronized program actually sees.
fn batched_access_workload(
    mode: Mode,
    write_frac: f64,
    procs: usize,
    ops: usize,
    seed: u64,
    batch: Option<mixed_consistency::BatchPolicy>,
) -> Metrics {
    const SYNC_PERIOD: usize = 25;
    let mut sys = System::new(procs, mode).seed(seed).batching(batch);
    for p in 0..procs {
        sys.spawn(move |ctx| {
            let mut rng = StdRng::seed_from_u64(seed * 131 + p as u64);
            let mut val = (p as i64 + 1) * 1_000_000;
            for i in 0..ops {
                let loc = Loc(rng.gen_range(0..8u32));
                if rng.gen_bool(write_frac) {
                    val += 1;
                    ctx.write(loc, val);
                } else {
                    let label = if rng.gen_bool(0.5) { ReadLabel::Pram } else { ReadLabel::Causal };
                    let _ = ctx.read(loc, label);
                }
                if (i + 1) % SYNC_PERIOD == 0 {
                    ctx.barrier();
                }
            }
        });
    }
    sys.run().expect("workload runs").metrics
}

/// **E1** — per-operation access cost of the four protocols
/// (Sections 1/6: replication makes reads local; SC pays a round trip per
/// access; causal adds vector bytes to updates).
pub fn protocols_table(procs: usize, ops: usize) -> Table {
    let mut rows = Vec::new();
    for (wl, frac) in [("read-heavy (10% wr)", 0.1), ("write-heavy (50% wr)", 0.5)] {
        for mode in Mode::ALL {
            let m = access_workload(mode, frac, procs, ops, 7);
            let total_ops = (procs * ops) as f64;
            rows.push(Row::new(
                vec![("workload", wl.into()), ("mode", mode.to_string())],
                vec![
                    ("ns/op", format!("{:.0}", m.finish_time.as_nanos() as f64 / total_ops)),
                    ("msgs/op", format!("{:.2}", m.messages as f64 / total_ops)),
                    ("bytes/op", format!("{:.1}", m.bytes as f64 / total_ops)),
                    ("update bytes", m.kind("update").bytes.to_string()),
                ],
            ));
        }
    }
    Table {
        id: "E1",
        title: "per-access cost by protocol",
        paper_ref: "§1/§6 — replicated weak memory vs. sequentially consistent server",
        rows,
    }
}

/// One E8 datapoint: (msgs/op, bytes/op) with batching off and on, same
/// workload, same seed. Shared by the table and its acceptance test.
fn batching_datapoint(mode: Mode, write_frac: f64, procs: usize, ops: usize) -> [f64; 4] {
    let total_ops = (procs * ops) as f64;
    let off = batched_access_workload(mode, write_frac, procs, ops, 7, None);
    let on = batched_access_workload(
        mode,
        write_frac,
        procs,
        ops,
        7,
        Some(mixed_consistency::BatchPolicy::default()),
    );
    [
        off.messages as f64 / total_ops,
        on.messages as f64 / total_ops,
        off.bytes as f64 / total_ops,
        on.bytes as f64 / total_ops,
    ]
}

/// **E8** — batched, coalesced, delta-compressed update propagation:
/// wire traffic per operation with batching off vs. on
/// ([`mixed_consistency::BatchPolicy::default`]), across the replicated
/// modes. Coalescing collapses same-location writes inside a batch
/// window and delta compression strips unchanged vector components, so
/// the win grows with write intensity and with vector-carrying modes.
pub fn batching_table(procs: usize, ops: usize) -> Table {
    let mut rows = Vec::new();
    for (wl, frac) in [("read-heavy (10% wr)", 0.1), ("write-heavy (50% wr)", 0.5)] {
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let [msgs_off, msgs_on, bytes_off, bytes_on] =
                batching_datapoint(mode, frac, procs, ops);
            rows.push(Row::new(
                vec![("workload", wl.into()), ("mode", mode.to_string())],
                vec![
                    ("msgs/op off", format!("{msgs_off:.2}")),
                    ("msgs/op on", format!("{msgs_on:.2}")),
                    ("msg reduction", format!("{:.1}x", msgs_off / msgs_on)),
                    ("bytes/op off", format!("{bytes_off:.1}")),
                    ("bytes/op on", format!("{bytes_on:.1}")),
                    ("byte reduction", format!("{:.0}%", 100.0 * (1.0 - bytes_on / bytes_off))),
                ],
            ));
        }
    }
    Table {
        id: "E8",
        title: "batched update propagation",
        paper_ref: "§6 — update propagation cost; coalesced batches and delta-compressed vectors",
        rows,
    }
}

/// The network model of the paper's era: 10 Mbit/s shared Ethernet with
/// significant software messaging overhead — bandwidth matters, so the
/// causal protocol's vector timestamps and the handshake's extra rounds
/// show up in completion time, as they did on Maya's testbed.
pub fn ethernet_1994() -> mixed_consistency::LatencyModel {
    mixed_consistency::LatencyModel {
        base: mixed_consistency::SimTime::from_micros(300),
        per_byte_ns: 800, // ≈ 10 Mbit/s
        jitter: mixed_consistency::SimTime::from_micros(50),
    }
}

/// **C1 / F2 / F3** — Figure 2 (barriers, PRAM) vs Figure 3 (handshakes,
/// causal), sweeping problem size and workers, on the 1994-Ethernet
/// network model.
pub fn solver_table() -> Table {
    let mut rows = Vec::new();
    for (n, workers) in [(8, 2), (16, 4), (24, 6)] {
        let (a, b) = diag_dominant_system(n, 2026);
        let mut cfg = SolverConfig::new(n, workers, Mode::Pram);
        // Fixed iteration count: the performance comparison must not be
        // confounded by slightly different stopping points.
        cfg.tol = 0.0;
        cfg.max_iters = 25;
        cfg.latency = Some(ethernet_1994());
        let bar = run_barrier_solver(&cfg, &a, &b).expect("barrier solver");
        cfg.mode = Mode::Causal;
        let hs = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).expect("handshake");
        for (variant, run) in [("Fig.2 barrier/PRAM", &bar), ("Fig.3 handshake/causal", &hs)] {
            let mut vals = metric_cols(&run.metrics);
            vals.push(("residual", format!("{:.1e}", run.residual)));
            rows.push(Row::new(
                vec![
                    ("n", n.to_string()),
                    ("workers", workers.to_string()),
                    ("variant", variant.into()),
                ],
                vals,
            ));
        }
        rows.push(Row::new(
            vec![
                ("n", n.to_string()),
                ("workers", workers.to_string()),
                ("variant", "→ barrier speedup".into()),
            ],
            vec![
                ("virtual time", speedup(hs.metrics.finish_time, bar.metrics.finish_time)),
                (
                    "messages",
                    format!("{:.2}×", hs.metrics.messages as f64 / bar.metrics.messages as f64),
                ),
                ("kbytes", String::new()),
                ("stall", String::new()),
                ("residual", String::new()),
            ],
        ));
    }
    Table {
        id: "C1",
        title: "linear solver: barriers (Fig.2) vs handshaking (Fig.3)",
        paper_ref: "§7 — \"the linear equation solver using barriers has a better performance\"",
        rows,
    }
}

/// **C2 / F5** — Cholesky: locks vs counter objects over several
/// matrices.
pub fn cholesky_table() -> Table {
    let mut rows = Vec::new();
    let matrices: Vec<(String, mc_apps::sparse::SpdMatrix)> = vec![
        ("grid 3×3".into(), grid_laplacian(3)),
        ("grid 4×4".into(), grid_laplacian(4)),
        ("grid 5×5".into(), grid_laplacian(5)),
        ("random n=24".into(), random_sparse_spd(24, 40, 9)),
    ];
    for (name, a) in &matrices {
        let sym = symbolic_factorize(a);
        let cfg = CholeskyConfig { mode: Mode::Mixed, ..CholeskyConfig::new(4) };
        let locks = run_cholesky(&cfg, a, &sym, CholeskyVariant::Locks).expect("locks");
        let counters = run_cholesky(&cfg, a, &sym, CholeskyVariant::Counters).expect("counters");
        for (variant, run) in [("locks (Fig.5)", &locks), ("counters", &counters)] {
            let lock_msgs = run.metrics.kind("lock_req").count
                + run.metrics.kind("lock_grant").count
                + run.metrics.kind("lock_rel").count;
            let mut vals = metric_cols(&run.metrics);
            vals.push(("lock msgs", lock_msgs.to_string()));
            vals.push(("residual", format!("{:.1e}", run.residual)));
            rows.push(Row::new(vec![("matrix", name.clone()), ("variant", variant.into())], vals));
        }
        rows.push(Row::new(
            vec![("matrix", name.clone()), ("variant", "→ counter speedup".into())],
            vec![
                ("virtual time", speedup(locks.metrics.finish_time, counters.metrics.finish_time)),
                ("messages", String::new()),
                ("kbytes", String::new()),
                ("stall", String::new()),
                ("lock msgs", String::new()),
                ("residual", String::new()),
            ],
        ));
    }
    Table {
        id: "C2",
        title: "sparse Cholesky: critical sections vs counter objects",
        paper_ref: "§7 — \"an algorithm using counter objects outperforms the lock-based algorithm significantly\"",
        rows,
    }
}

/// **C3** — asynchronous relaxation on PRAM: residual decay without any
/// synchronization, vs the fully synchronized Figure-2 solver.
pub fn relaxation_table() -> Table {
    let mut rows = Vec::new();
    let n = 16;
    let (a, b) = diag_dominant_system(n, 4);
    let mut cfg = SolverConfig::new(n, 4, Mode::Pram);
    cfg.tol = 1e-8;
    cfg.max_iters = 400;
    let bar = run_barrier_solver(&cfg, &a, &b).expect("barrier");
    let mut vals = metric_cols(&bar.metrics);
    vals.push(("residual", format!("{:.1e}", bar.residual)));
    rows.push(Row::new(
        vec![("variant", "Fig.2 synchronized".into()), ("sweeps", "-".into())],
        vals,
    ));
    for sweeps in [5, 10, 20, 40] {
        let run = run_async_relaxation(&cfg, &a, &b, sweeps).expect("async");
        let mut vals = metric_cols(&run.metrics);
        vals.push(("residual", format!("{:.1e}", run.residual)));
        rows.push(Row::new(
            vec![("variant", "async relaxation (PRAM)".into()), ("sweeps", sweeps.to_string())],
            vals,
        ));
    }
    Table {
        id: "C3",
        title: "asynchronous relaxation converges on PRAM",
        paper_ref: "§7 — \"some asynchronous relaxation algorithms such as Gauss-Seidel iteration converge even with PRAM\"",
        rows,
    }
}

/// The lock-propagation workload: rounds of exclusive critical sections,
/// each writing `data_locs` locations; the next holder either reads the
/// data or ignores it.
fn lock_workload(
    prop: LockPropagation,
    consumer_reads: bool,
    procs: usize,
    rounds: usize,
    data_locs: u32,
) -> Metrics {
    let mut sys =
        System::new(procs, Mode::Mixed).lock_propagation(prop).seed(11).latency(ethernet_1994());
    for p in 0..procs {
        sys.spawn(move |ctx| {
            let mut val = (p as i64 + 1) * 10_000;
            for _ in 0..rounds {
                ctx.write_lock(LockId(0));
                if consumer_reads {
                    for l in 0..data_locs {
                        let _ = ctx.read_causal(Loc(l));
                    }
                }
                for l in 0..data_locs {
                    val += 1;
                    ctx.write(Loc(l), val);
                }
                ctx.write_unlock(LockId(0));
            }
        });
    }
    sys.run().expect("lock workload").metrics
}

/// **E2** — eager vs lazy vs demand-driven lock propagation
/// (Section 6's three implementations).
pub fn locks_table(procs: usize, rounds: usize) -> Table {
    let mut rows = Vec::new();
    for (wl, reads) in [("consumer reads data", true), ("data never read", false)] {
        for prop in LockPropagation::ALL {
            let m = lock_workload(prop, reads, procs, rounds, 24);
            rows.push(Row::new(
                vec![("workload", wl.into()), ("propagation", prop.to_string())],
                metric_cols(&m),
            ));
        }
    }
    Table {
        id: "E2",
        title: "lock/unlock propagation variants",
        paper_ref: "§6 — eager vs lazy vs demand-driven implementations of lock/unlock",
        rows,
    }
}

/// **E3** — barrier cost scaling with process count (Section 6's
/// message-count-vector barrier).
pub fn barrier_table(rounds: usize) -> Table {
    let mut rows = Vec::new();
    for procs in [2, 4, 8, 16] {
        let mut sys = System::new(procs, Mode::Pram).seed(3);
        for p in 0..procs as u32 {
            sys.spawn(move |ctx| {
                for r in 0..rounds {
                    ctx.write(Loc(p), (r * 100 + p as usize) as i64);
                    ctx.barrier();
                }
            });
        }
        let m = sys.run().expect("barrier workload").metrics;
        rows.push(Row::new(
            vec![("procs", procs.to_string()), ("rounds", rounds.to_string())],
            vec![
                ("ns/round", format!("{:.0}", m.finish_time.as_nanos() as f64 / rounds as f64)),
                (
                    "msgs/round",
                    format!(
                        "{:.1}",
                        (m.kind("barrier_arrive").count + m.kind("barrier_release").count) as f64
                            / rounds as f64
                    ),
                ),
                ("total msgs", m.messages.to_string()),
            ],
        ));
    }
    Table {
        id: "E3",
        title: "barrier scaling",
        paper_ref: "§6 — barrier manager with per-process message-count vectors",
        rows,
    }
}

/// A many-locks workload for the manager-sharding ablation: every
/// process cycles through `nlocks` independent locks.
fn sharded_lock_workload(shards: usize, procs: usize, nlocks: u32, rounds: usize) -> Metrics {
    let mut sys =
        System::new(procs, Mode::Mixed).manager_shards(shards).seed(3).latency(ethernet_1994());
    for p in 0..procs {
        sys.spawn(move |ctx| {
            for r in 0..rounds {
                let lock = mixed_consistency::LockId(((p + r) % nlocks as usize) as u32);
                ctx.with_write_lock(lock, |ctx| {
                    let v = ctx.read_causal(Loc(lock.0)).expect_i64();
                    ctx.write(Loc(lock.0), v + 1);
                });
            }
        });
    }
    sys.run().expect("sharded workload").metrics
}

/// **E5** — manager sharding ablation: Section 6 maps every lock "to a
/// process"; distributing those processes over nodes relieves the
/// manager's links.
pub fn sharding_table() -> Table {
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let m = sharded_lock_workload(shards, 6, 8, 8);
        rows.push(Row::new(vec![("manager shards", shards.to_string())], metric_cols(&m)));
    }
    Table {
        id: "E5",
        title: "manager sharding (ablation)",
        paper_ref: "§6 — \"every lock is mapped to a process called the lock manager\"",
        rows,
    }
}

/// One E10 run: an `n`-replica ring workload — every process writes
/// `writes` values to its own location (its own shard, since
/// `nshards = n`) and awaits its ring neighbor's last value — under
/// either interest-sharded replication (interest = own shard plus the
/// neighbor's) or classic full replication.
fn ring_workload(n: usize, writes: u32, sharded: bool) -> Metrics {
    let mut sys = System::new(n, Mode::Causal).seed(31).latency(ethernet_1994());
    if sharded {
        let interest: Vec<Vec<usize>> = (0..n).map(|p| vec![p, (p + 1) % n]).collect();
        sys = sys.sharding(Some(mixed_consistency::ShardConfig::new(n, interest)));
    }
    for p in 0..n {
        let (own, next) = (p as u32, ((p + 1) % n) as u32);
        sys.spawn(move |ctx| {
            for i in 1..=writes {
                ctx.write(Loc(own), i64::from(i));
            }
            ctx.await_eq(Loc(next), i64::from(writes));
        });
    }
    sys.run().expect("ring workload").metrics
}

/// One E10 datapoint: `(msgs/op, avg update wire bytes)` for an
/// `n`-replica ring.
fn interest_sharding_datapoint(n: usize, sharded: bool) -> (f64, f64) {
    const WRITES: u32 = 50;
    let m = ring_workload(n, WRITES, sharded);
    let ops = (n as u64) * (u64::from(WRITES) + 1);
    let upd = if sharded { m.kind("shard_update") } else { m.kind("update") };
    (m.messages as f64 / ops as f64, upd.bytes as f64 / upd.count.max(1) as f64)
}

/// **E10** — interest-sharded partial replication vs full replication
/// on a ring workload: per-operation message count and per-update wire
/// size (header plus clock metadata) as the cluster grows 4 → 32.
/// Under sharding both stay flat — each write reaches only the shard's
/// subscribers, and dependency triples cover the writer's interest set,
/// not the cluster — while full replication grows linearly on both
/// axes (fan-out `n-1`, vector clocks of width `n`).
pub fn interest_sharding_table() -> Table {
    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 32] {
        let (sh_msgs, sh_bytes) = interest_sharding_datapoint(n, true);
        let (full_msgs, full_bytes) = interest_sharding_datapoint(n, false);
        rows.push(Row::new(
            vec![("replicas", n.to_string())],
            vec![
                ("sharded msgs/op", format!("{sh_msgs:.2}")),
                ("full msgs/op", format!("{full_msgs:.2}")),
                ("sharded B/update", format!("{sh_bytes:.1}")),
                ("full B/update", format!("{full_bytes:.1}")),
                ("msg ratio", format!("{:.1}x", full_msgs / sh_msgs)),
            ],
        ));
    }
    Table {
        id: "E10",
        title: "interest-sharded partial replication: flat per-replica cost vs cluster size",
        paper_ref: "§6 demand-driven propagation — updates flow only where interest is declared",
        rows,
    }
}

/// **F4** — FDTD cost across protocols and worker counts (1-D line and
/// 2-D grid).
pub fn em_table() -> Table {
    let mut rows = Vec::new();
    for workers in [2, 4] {
        for mode in Mode::ALL {
            let cfg = EmConfig::new(32, 10, workers, mode);
            let run = run_fdtd(&cfg).expect("fdtd");
            rows.push(Row::new(
                vec![
                    ("grid", "1-D, 32 nodes".into()),
                    ("workers", workers.to_string()),
                    ("mode", mode.to_string()),
                ],
                metric_cols(&run.metrics),
            ));
        }
    }
    for mode in [Mode::Pram, Mode::Sc] {
        let cfg = Em2dConfig::new(8, 6, 4, mode);
        let run = run_fdtd2d(&cfg).expect("fdtd2d");
        rows.push(Row::new(
            vec![("grid", "2-D, 8×8".into()), ("workers", "4".into()), ("mode", mode.to_string())],
            metric_cols(&run.metrics),
        ));
    }
    Table {
        id: "F4",
        title: "FDTD electromagnetic-field computation",
        paper_ref: "Figure 4 / §5.2 — PRAM provides the \"ghost copies\" implicitly",
        rows,
    }
}

/// **E6** — session-layer overhead vs message-loss rate: the price of
/// earning back the paper's FIFO-channel assumption over a network that
/// drops, duplicates, and reorders. Payload traffic is constant across
/// the sweep; retransmissions, acks, and completion time grow with the
/// loss rate.
pub fn faults_table() -> Table {
    let mut rows = Vec::new();
    for loss_pct in [0u32, 1, 5, 10, 20] {
        let drop = f64::from(loss_pct) / 100.0;
        let mut sys = System::new(3, Mode::Mixed)
            .seed(17)
            .faults(
                FaultPlan::new()
                    .drop_rate(drop)
                    .duplicate_rate(drop / 2.0)
                    .reorder(SimTime::from_micros(20)),
            )
            .reliable(true);
        for _ in 0..3 {
            sys.spawn(|ctx| {
                for _ in 0..6 {
                    ctx.with_write_lock(LockId(0), |ctx| {
                        let v = ctx.read_causal(Loc(0)).expect_i64();
                        ctx.write(Loc(0), v + 1);
                    });
                }
            });
        }
        let m = sys.run().expect("faulty workload").metrics;
        let retransmits = m.kind("retransmit").count;
        let acks = m.kind("session_ack").count;
        let payload = m.messages - retransmits - acks;
        rows.push(Row::new(
            vec![("drop rate", format!("{loss_pct}%"))],
            vec![
                ("virtual time", m.finish_time.to_string()),
                ("messages", m.messages.to_string()),
                ("retransmits", retransmits.to_string()),
                ("acks", acks.to_string()),
                ("faults injected", m.faults.total().to_string()),
                (
                    "msg overhead",
                    format!("{:.0}%", 100.0 * (m.messages as f64 / payload as f64 - 1.0)),
                ),
            ],
        ));
    }
    Table {
        id: "E6",
        title: "session-layer overhead vs message-loss rate",
        paper_ref:
            "§6 — the assumed \"FIFO communication channels\", earned back by retransmission",
        rows,
    }
}

/// **E4** — checker throughput: wall-clock cost of verifying recorded
/// histories of growing size.
pub fn checkers_table() -> Table {
    let mut rows = Vec::new();
    for target_ops in [200usize, 600, 1200] {
        // A mixed workload sized to roughly `target_ops` operations.
        let procs = 3;
        let per = target_ops / procs / 2;
        let mut sys = System::new(procs, Mode::Mixed).seed(5).record(true);
        for p in 0..procs {
            sys.spawn(move |ctx| {
                let mut rng = StdRng::seed_from_u64(p as u64);
                let mut val = (p as i64 + 1) * 100_000;
                for _ in 0..per {
                    let loc = Loc(rng.gen_range(0..6u32));
                    if rng.gen_bool(0.5) {
                        val += 1;
                        ctx.write(loc, val);
                    } else {
                        let _ = ctx.read_causal(loc);
                    }
                    let _ = ctx.read_pram(loc);
                }
            });
        }
        let h = sys.run().expect("run").history.expect("recorded");
        let start = std::time::Instant::now();
        let verdict = check::check_mixed(&h).is_ok();
        let elapsed = start.elapsed();
        rows.push(Row::new(
            vec![("history ops", h.len().to_string())],
            vec![
                ("check wall time", format!("{:.1?}", elapsed)),
                ("ops/s", format!("{:.0}", h.len() as f64 / elapsed.as_secs_f64())),
                ("consistent", verdict.to_string()),
            ],
        ));
    }
    Table {
        id: "E4",
        title: "checker throughput (Definition 4 verification)",
        paper_ref: "§3 — executable consistency definitions",
        rows,
    }
}

/// **E7** — stateless model checking: schedules explored by naive
/// depth-first enumeration vs dynamic partial-order reduction on the
/// litmus programs, with identical outcome coverage by construction
/// (the conformance suite in `tests/explore_litmus.rs` asserts it).
pub fn exploration_table() -> Table {
    use mixed_consistency::explore::{explore_with, ExploreOptions};
    use mixed_consistency::{ProgSpec, SpecOp};

    let w = |loc: u32, value: i64| SpecOp::Write { loc: Loc(loc), value };
    let r = |loc: u32, label: ReadLabel| SpecOp::Read { loc: Loc(loc), label };
    let programs: Vec<(&str, ProgSpec)> = vec![
        (
            "store-buffer",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1), r(1, ReadLabel::Causal)])
                .proc(vec![w(1, 1), r(0, ReadLabel::Causal)]),
        ),
        (
            "causality-chain",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1)])
                .proc(vec![r(0, ReadLabel::Causal), w(1, 2)])
                .proc(vec![r(1, ReadLabel::Pram), r(0, ReadLabel::Pram)]),
        ),
        (
            "wrc",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1)])
                .proc(vec![r(0, ReadLabel::Causal), w(1, 1)])
                .proc(vec![r(1, ReadLabel::Pram), r(0, ReadLabel::Pram)]),
        ),
        (
            "2+2w",
            ProgSpec::new(Mode::Mixed)
                .proc(vec![w(0, 1), w(1, 2)])
                .proc(vec![w(1, 1), w(0, 2)])
                .proc(vec![r(0, ReadLabel::Causal), r(0, ReadLabel::Causal)]),
        ),
    ];

    let mut rows = Vec::new();
    for (name, spec) in &programs {
        let run = |dpor: bool| {
            let start = std::time::Instant::now();
            let out = explore_with(
                ExploreOptions::new().dpor(dpor).max_runs(3_000_000),
                || spec.build_system(),
                |o| {
                    check::check_mixed(o.history.as_ref().expect("recording enabled"))
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                },
            )
            .expect("litmus programs are consistent");
            (out, start.elapsed())
        };
        let (naive, naive_t) = run(false);
        let (dpor, dpor_t) = run(true);
        assert!(naive.complete && dpor.complete, "{name}: exploration must exhaust");
        rows.push(Row::new(
            vec![("program", (*name).to_string())],
            vec![
                ("naive runs", naive.runs.to_string()),
                ("dpor runs", dpor.runs.to_string()),
                ("pruned", dpor.pruned.to_string()),
                ("outcomes", dpor.unique_outcomes.to_string()),
                ("reduction", format!("{:.1}x", naive.runs as f64 / dpor.runs as f64)),
                ("dpor scheds/s", format!("{:.0}", dpor.runs as f64 / dpor_t.as_secs_f64())),
                ("naive scheds/s", format!("{:.0}", naive.runs as f64 / naive_t.as_secs_f64())),
            ],
        ));
    }
    Table {
        id: "E7",
        title: "schedule exploration: naive DFS vs dynamic partial-order reduction",
        paper_ref: "§2/§4 — exhaustive interleaving coverage for the litmus programs",
        rows,
    }
}

/// One E9 run. `prewrites` distinct-location writes build the store;
/// a flag/ack handshake marks the moment every prewrite is applied (the
/// causal gate on the flag guarantees it); an optional ping-pong tail
/// keeps fresh writes in flight afterwards. `crash_at` crash-recovers
/// node 1 from its durable image mid-tail.
fn recovery_run(
    prewrites: u32,
    with_tail: bool,
    durable: bool,
    crash_at: Option<SimTime>,
) -> Metrics {
    const TAIL: u32 = 6;
    let flag = Loc(prewrites);
    let ack = Loc(prewrites + 1);
    let base = prewrites + 2;
    let mut sys = System::new(2, Mode::Causal).seed(23).latency(ethernet_1994()).reliable(true);
    if durable {
        sys = sys.durability(Some(mixed_consistency::DurabilityPolicy::new(16)));
    }
    if let Some(at) = crash_at {
        sys = sys.faults(FaultPlan::new().crash_recover(mixed_consistency::NodeId(1), at));
    }
    sys.spawn(move |ctx| {
        for i in 0..prewrites {
            ctx.write(Loc(i), i as i64 + 1);
        }
        ctx.write(flag, 1);
        ctx.await_eq(ack, 1);
        if with_tail {
            for r in 0..TAIL {
                ctx.write(Loc(base + r), r as i64 + 1);
                ctx.await_eq(ack, r as i64 + 2);
            }
        }
    });
    sys.spawn(move |ctx| {
        ctx.await_eq(flag, 1);
        ctx.write(ack, 1);
        if with_tail {
            for r in 0..TAIL {
                ctx.await_eq(Loc(base + r), r as i64 + 1);
                ctx.write(ack, r as i64 + 2);
            }
        }
    });
    sys.run().expect("recovery workload").metrics
}

/// One E9 datapoint: `(crashed, steady, no_wal)` metrics for a store of
/// `prewrites` locations. The crash is placed just past the handshake
/// (probed on an identical prefix without the tail), so node 1 dies
/// holding the whole compacted store durably and only the log tail —
/// staged ingests plus in-flight tail writes — must be refetched.
fn recovery_datapoint(prewrites: u32) -> (Metrics, Metrics, Metrics) {
    let probe = recovery_run(prewrites, false, true, None);
    let crash_at = probe.finish_time + SimTime::from_micros(900);
    let crashed = recovery_run(prewrites, true, true, Some(crash_at));
    let steady = recovery_run(prewrites, true, true, None);
    let no_wal = recovery_run(prewrites, true, false, None);
    (crashed, steady, no_wal)
}

/// **E9** — durable crash recovery: a replica that crash-recovers from
/// its write-ahead log and compacted snapshot fetches only the missing
/// *delta* from its peers. The store grows 16× across the sweep; the
/// recovery traffic must not — it is bounded by the log tail (staged
/// ingests + in-flight writes at the moment of death), not by store
/// size. The last column is the steady-state price of logging: virtual
/// completion time with the WAL on vs. off, no crash.
pub fn recovery_table() -> Table {
    let mut rows = Vec::new();
    for prewrites in [64u32, 256, 1024] {
        let (crashed, steady, no_wal) = recovery_datapoint(prewrites);
        let resp = crashed.kind("recover_resp");
        rows.push(Row::new(
            vec![("store locs", prewrites.to_string())],
            vec![
                ("recovery bytes", resp.bytes.to_string()),
                ("recovery msgs", (crashed.kind("recover_req").count + resp.count).to_string()),
                ("wal replayed", crashed.wal.replayed.to_string()),
                ("wal lost", crashed.wal.lost.to_string()),
                ("snapshots", crashed.wal.snapshots.to_string()),
                (
                    "wal time overhead",
                    format!(
                        "{:.1}%",
                        100.0
                            * (steady.finish_time.as_nanos() as f64
                                / no_wal.finish_time.as_nanos() as f64
                                - 1.0)
                    ),
                ),
            ],
        ));
    }
    Table {
        id: "E9",
        title: "durable crash recovery: delta fetch bounded by the log tail",
        paper_ref:
            "robustness extension — per-replica WAL + compacted snapshots, recover-from-disk",
        rows,
    }
}

/// One E11 datapoint: a ring workload over either the threaded
/// in-process executor or a real loopback-TCP cluster, with process 0
/// timing `reads` labelled reads after convergence. Returns the run's
/// wall time and the sorted read latencies.
fn saturation_run(
    tcp: bool,
    nprocs: usize,
    mode: Mode,
    writes: u32,
    reads: usize,
    label: ReadLabel,
) -> (std::time::Duration, Vec<std::time::Duration>) {
    use std::sync::{Arc, Mutex};
    let lat: Arc<Mutex<Vec<std::time::Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let body = |p: u32| {
        let lat = lat.clone();
        move |ctx: &mut mc_live::LiveCtx| {
            for i in 1..=writes {
                ctx.write(Loc(p), i as i64);
            }
            let next = (p + 1) % nprocs as u32;
            ctx.await_eq(Loc(next), mc_model::Value::Int(writes as i64));
            if p == 0 {
                let mut timings = Vec::with_capacity(reads);
                for _ in 0..reads {
                    let t0 = std::time::Instant::now();
                    let _ = ctx.read(Loc(next), label);
                    timings.push(t0.elapsed());
                }
                lat.lock().expect("latency vec healthy").extend(timings);
            }
        }
    };
    let out = if tcp {
        let mut sys = mc_net::NetSystem::new(nprocs, mode);
        for p in 0..nprocs as u32 {
            sys.spawn(body(p));
        }
        sys.run().expect("TCP ring runs")
    } else {
        let mut sys = mc_live::LiveSystem::new(nprocs, mode);
        for p in 0..nprocs as u32 {
            sys.spawn(body(p));
        }
        sys.run().expect("threaded ring runs")
    };
    let mut lat = Arc::try_unwrap(lat).expect("bodies joined").into_inner().expect("unpoisoned");
    lat.sort_unstable();
    (out.wall, lat)
}

/// The (transport, mode, label) grid E11 sweeps: read labels under the
/// vector modes, plus the serialized read under SC.
const SATURATION_CELLS: &[(Mode, ReadLabel, &str)] = &[
    (Mode::Causal, ReadLabel::Pram, "pram"),
    (Mode::Causal, ReadLabel::Causal, "causal"),
    (Mode::Sc, ReadLabel::Causal, "sc"),
];

/// E11 writes per process: long enough that steady-state frame traffic
/// dominates connection setup.
const SATURATION_WRITES: u32 = 1_500;
/// E11 timed reads on process 0.
const SATURATION_READS: usize = 300;

fn p99(sorted: &[std::time::Duration]) -> std::time::Duration {
    sorted[(sorted.len() * 99) / 100 - 1]
}

/// E11: the tokio TCP transport under saturation — ring throughput and
/// p99 read latency per consistency label, threaded channels vs real
/// loopback sockets running the identical protocol stack.
pub fn net_saturation_table() -> Table {
    let mut rows = Vec::new();
    for &(mode, label, label_name) in SATURATION_CELLS {
        for tcp in [false, true] {
            let (wall, lat) =
                saturation_run(tcp, 4, mode, SATURATION_WRITES, SATURATION_READS, label);
            let ops = u64::from(SATURATION_WRITES) * 4 + SATURATION_READS as u64;
            rows.push(Row::new(
                vec![
                    ("transport", if tcp { "tcp" } else { "threads" }.to_string()),
                    ("mode", format!("{mode}")),
                    ("read label", label_name.to_string()),
                ],
                vec![
                    ("ops/s", format!("{:.0}", ops as f64 / wall.as_secs_f64())),
                    ("p99 read us", format!("{:.1}", p99(&lat).as_nanos() as f64 / 1000.0)),
                ],
            ));
        }
    }
    Table {
        id: "E11",
        title: "TCP transport saturation: loopback sockets vs threaded channels (ring, 4 procs)",
        paper_ref: "runtime extension — the protocol stack over a real async network",
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_table_shape() {
        let t = protocols_table(2, 20);
        assert_eq!(t.rows.len(), 8, "2 workloads x 4 modes");
        assert!(t.to_markdown().contains("sc"));
    }

    #[test]
    fn net_saturation_meets_acceptance() {
        // The issue's acceptance floor: real loopback TCP must hold
        // ring throughput within 5x of the threaded in-process
        // baseline. Best-of-3 on both sides damps scheduler noise.
        // Workload size matters: connection setup is a fixed cost, so
        // the ring must be long enough that steady-state frame traffic
        // dominates — the same size the E11 table sweeps.
        let best = |tcp: bool| {
            (0..3)
                .map(|_| {
                    saturation_run(tcp, 4, Mode::Causal, SATURATION_WRITES, 50, ReadLabel::Causal).0
                })
                .min()
                .expect("three runs")
        };
        let threads = best(false);
        let tcp = best(true);
        assert!(
            tcp <= threads * 5,
            "TCP ring must stay within 5x of the threaded baseline: {tcp:?} vs {threads:?}"
        );
    }

    #[test]
    fn batching_table_meets_acceptance() {
        // The issue's acceptance floor: in every cell batching must not
        // cost bytes, and on the write-heavy causal workload it must cut
        // messages by >=2x and bytes by >=30%.
        for (frac, write_heavy) in [(0.1, false), (0.5, true)] {
            for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
                let [msgs_off, msgs_on, bytes_off, bytes_on] =
                    batching_datapoint(mode, frac, 4, 200);
                assert!(
                    bytes_on <= bytes_off,
                    "{mode} frac {frac}: batching cost bytes ({bytes_on} > {bytes_off})"
                );
                if write_heavy && mode == Mode::Causal {
                    assert!(
                        msgs_off >= 2.0 * msgs_on,
                        "write-heavy causal: msgs/op {msgs_off} -> {msgs_on} is under 2x"
                    );
                    assert!(
                        bytes_on <= 0.7 * bytes_off,
                        "write-heavy causal: bytes/op {bytes_off} -> {bytes_on} is under 30%"
                    );
                }
            }
        }
    }

    #[test]
    fn batching_table_shape() {
        let t = batching_table(2, 40);
        assert_eq!(t.rows.len(), 6, "2 workloads x 3 replicated modes");
        assert!(t.to_markdown().contains("msg reduction"));
    }

    #[test]
    fn locks_table_shape() {
        let t = locks_table(2, 3);
        assert_eq!(t.rows.len(), 6, "2 workloads x 3 propagations");
    }

    #[test]
    fn barrier_table_scales() {
        let t = barrier_table(3);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn faults_table_shape() {
        let t = faults_table();
        assert_eq!(t.rows.len(), 5, "five loss rates");
        // No faults fire on the lossless row (jitter-induced spurious
        // retransmits are possible); heavy loss costs many retransmits.
        assert_eq!(t.rows[0].vals[4].1, "0");
        let retx = |i: usize| t.rows[i].vals[2].1.parse::<u64>().unwrap();
        assert!(retx(4) > retx(0) + 10, "loss must drive retransmissions up");
    }

    #[test]
    fn checkers_table_runs() {
        let t = checkers_table();
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows.iter().all(|r| r.vals[2].1 == "true"));
    }

    #[test]
    fn recovery_table_meets_acceptance() {
        // The issue's acceptance floor: recovery traffic is bounded by
        // the log tail, not the store. A 16x larger store must not grow
        // the delta fetch materially, and shipping the full store
        // (~16 bytes/entry on the modeled wire) must cost far more than
        // what recovery actually moved.
        let (small_crashed, _, _) = recovery_datapoint(64);
        let (big_crashed, steady, _) = recovery_datapoint(1024);
        let small_bytes = small_crashed.kind("recover_resp").bytes;
        let big_bytes = big_crashed.kind("recover_resp").bytes;
        assert_eq!(big_crashed.wal.recoveries, 1, "node 1 must recover exactly once");
        assert!(big_bytes > 0, "the crash must leave a real delta to fetch");
        assert!(
            big_bytes <= 3 * small_bytes.max(64),
            "recovery bytes grew with the store: {small_bytes} -> {big_bytes}"
        );
        let full_store_bytes = 1024 * 16;
        assert!(
            big_bytes * 4 <= full_store_bytes,
            "recovery moved {big_bytes} bytes, not clearly under a full-store \
             transfer (~{full_store_bytes})"
        );
        // Steady state: logging appends every write exactly once and
        // loses nothing when no crash happens.
        assert!(steady.wal.appends > 0);
        assert_eq!(steady.wal.lost, 0);
        assert_eq!(steady.wal.recoveries, 0);
    }

    #[test]
    fn interest_sharding_meets_acceptance() {
        // The issue's acceptance floor: per-replica cost under interest
        // sharding stays flat (±10%) from 4 to 32 replicas, on both the
        // message and the clock-bytes axis, while full replication
        // grows with the cluster.
        let (sh4_msgs, sh4_bytes) = interest_sharding_datapoint(4, true);
        let (sh32_msgs, sh32_bytes) = interest_sharding_datapoint(32, true);
        assert!(
            (sh32_msgs - sh4_msgs).abs() <= 0.1 * sh4_msgs,
            "sharded msgs/op must stay flat 4 -> 32 replicas: {sh4_msgs:.2} -> {sh32_msgs:.2}"
        );
        assert!(
            (sh32_bytes - sh4_bytes).abs() <= 0.1 * sh4_bytes,
            "sharded update size must stay flat 4 -> 32 replicas: \
             {sh4_bytes:.1} -> {sh32_bytes:.1}"
        );
        let (full4_msgs, full4_bytes) = interest_sharding_datapoint(4, false);
        let (full32_msgs, full32_bytes) = interest_sharding_datapoint(32, false);
        assert!(
            full32_msgs >= 4.0 * full4_msgs,
            "full replication fan-out must grow with the cluster: \
             {full4_msgs:.2} -> {full32_msgs:.2}"
        );
        assert!(
            full32_bytes >= 2.0 * full4_bytes,
            "full replication clock bytes must grow with the cluster: \
             {full4_bytes:.1} -> {full32_bytes:.1}"
        );
        assert!(
            full32_msgs >= 5.0 * sh32_msgs,
            "at 32 replicas sharding must cut messages >=5x: \
             full {full32_msgs:.2} vs sharded {sh32_msgs:.2}"
        );
    }

    #[test]
    fn exploration_table_reduces() {
        let t = exploration_table();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let naive: u64 = row.vals[0].1.parse().unwrap();
            let dpor: u64 = row.vals[1].1.parse().unwrap();
            assert!(dpor <= naive, "{}: reduction must not expand", row.keys[0].1);
            let reduction: f64 = row.vals[4].1.trim_end_matches('x').parse().unwrap();
            assert!(reduction >= 5.0, "{}: {reduction}x < 5x", row.keys[0].1);
        }
    }
}
