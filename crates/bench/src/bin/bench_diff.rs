//! Diffs two machine-readable benchmark reports (`BENCH_*.json`).
//!
//! `bench_diff BASELINE CURRENT [--tolerance 0.10] [--strict-wall]`
//!
//! The report format puts one metric per line, so the diff is
//! line-by-line with no JSON parser:
//!
//! * the `date` line is exempt (reports from different days still match);
//! * wall-clock columns ([`mc_bench::WALL_COLS`]) are parsed as a number
//!   with an optional duration unit and compared with a relative
//!   tolerance band (default ±10%); deviations are reported, and fail
//!   the diff only under `--strict-wall` — CI runner speed varies far
//!   more than the simulator's deterministic counters ever may;
//! * every other line (all deterministic counters, keys, structure)
//!   must match byte-for-byte.
//!
//! Exit codes: 0 clean, 1 mismatch, 2 usage/IO error.

use std::process::exit;

use mc_bench::is_wall_col;

/// Extracts `(key, value)` from a `"key": "value"` line, if it is one.
fn scalar_line(line: &str) -> Option<(&str, &str)> {
    let t = line.trim();
    let rest = t.strip_prefix('"')?;
    let (key, rest) = rest.split_once("\": ")?;
    let v = rest.strip_prefix('"')?;
    let v = v.strip_suffix(',').unwrap_or(v);
    let v = v.strip_suffix('"')?;
    Some((key, v))
}

/// Parses a wall-clock value: a leading float with an optional duration
/// unit suffix (`ns`/`µs`/`us`/`ms`/`s`, from `Duration`'s debug format),
/// normalized to nanoseconds; unit-less values (rates like `ops/s`) pass
/// through unscaled.
fn parse_wall(v: &str) -> Option<f64> {
    let end = v
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '.')
        .map_or(v.len(), |(i, _)| i);
    let num: f64 = v[..end].parse().ok()?;
    let scale = match v[end..].trim() {
        "" | "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(num * scale)
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 0.10f64;
    let mut strict_wall = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance needs a number");
                    exit(2);
                }
            },
            "--strict-wall" => strict_wall = true,
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff BASELINE CURRENT [--tolerance 0.10] [--strict-wall]");
        exit(2);
    }
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            exit(2);
        })
    };
    let baseline = read(&paths[0]);
    let current = read(&paths[1]);

    let (bl, cl): (Vec<&str>, Vec<&str>) = (baseline.lines().collect(), current.lines().collect());
    if bl.len() != cl.len() {
        eprintln!(
            "FAIL: reports have different shapes: {} has {} lines, {} has {}",
            paths[0],
            bl.len(),
            paths[1],
            cl.len()
        );
        exit(1);
    }

    let mut counter_mismatches = 0u32;
    let mut wall_deviations = 0u32;
    let mut wall_checked = 0u32;
    for (n, (b, c)) in bl.iter().zip(&cl).enumerate() {
        let line = n + 1;
        match (scalar_line(b), scalar_line(c)) {
            (Some(("date", _)), Some(("date", _))) => continue,
            (Some((bk, bv)), Some((ck, cv))) if bk == ck && is_wall_col(bk) => {
                wall_checked += 1;
                let ok = match (parse_wall(bv), parse_wall(cv)) {
                    (Some(x), Some(y)) => {
                        let scale = x.abs().max(f64::EPSILON);
                        (y - x).abs() / scale <= tolerance
                    }
                    _ => false,
                };
                if !ok {
                    wall_deviations += 1;
                    eprintln!(
                        "wall line {line}: \"{bk}\" outside ±{:.0}% band: baseline {bv}, current {cv}",
                        tolerance * 100.0
                    );
                }
            }
            _ if b == c => {}
            _ => {
                counter_mismatches += 1;
                eprintln!("FAIL line {line}:\n  baseline: {b}\n  current:  {c}");
            }
        }
    }

    println!(
        "compared {} lines: {counter_mismatches} counter mismatches, \
         {wall_deviations}/{wall_checked} wall-clock values outside the ±{:.0}% band",
        bl.len(),
        tolerance * 100.0
    );
    if counter_mismatches > 0 || (strict_wall && wall_deviations > 0) {
        exit(1);
    }
}
