//! # mixed-consistency
//!
//! A from-scratch reproduction of **"Mixed Consistency: A Model for
//! Parallel Programming"** (Agrawal, Choy, Leong, Singh — PODC 1994): a
//! distributed-shared-memory programming model combining **causal memory**
//! and **PRAM** reads with explicit **read/write locks**, **barriers**, and
//! **await** synchronization.
//!
//! The crate ties together three layers:
//!
//! * [`mc_model`] (re-exported as [`model`]) — the formal model:
//!   histories, the causality relation, and executable checkers for
//!   Definitions 1–5, Theorem 1 and Corollaries 1–2;
//! * [`mc_sim`] — a deterministic discrete-event simulator (virtual time,
//!   FIFO links, seeded schedules);
//! * [`mc_proto`] — the DSM protocols: PRAM, causal, mixed, and a
//!   sequentially consistent central-server baseline, plus the lock
//!   manager (eager / lazy / demand-driven propagation), barrier manager,
//!   awaits, and counter objects.
//!
//! # Quick start
//!
//! ```
//! use mixed_consistency::{check, Loc, Mode, System, Value};
//!
//! // Two processes on mixed-consistency memory: a producer/consumer
//! // handshake through an await (Section 3.1.3 of the paper).
//! let mut sys = System::new(2, Mode::Mixed).record(true);
//! sys.spawn(|ctx| {
//!     ctx.write(Loc(0), 42);   // data
//!     ctx.write(Loc(1), 1);    // flag
//! });
//! sys.spawn(|ctx| {
//!     ctx.await_eq(Loc(1), 1);
//!     assert_eq!(ctx.read_pram(Loc(0)), Value::Int(42));
//! });
//!
//! let outcome = sys.run()?;
//! println!("virtual time: {}", outcome.metrics.finish_time);
//!
//! // Every execution yields a history checkable against the paper's
//! // definitions:
//! let history = outcome.history.expect("recording was enabled");
//! check::check_mixed(&history).expect("Definition 4 holds");
//! # Ok::<(), mixed_consistency::RunError>(())
//! ```
//!
//! # Choosing read labels
//!
//! * [`Ctx::read_causal`] — observes everything causally before it
//!   (program order ∪ reads-from ∪ synchronization order, transitively);
//! * [`Ctx::read_pram`] — cheaper: observes per-writer FIFO order and
//!   *direct* synchronization predecessors only.
//!
//! Corollary 1 (entry-consistent programs + causal reads) and Corollary 2
//! (barrier phase programs + PRAM reads) identify when the weak labels are
//! observationally sequentially consistent; both conditions have dynamic
//! checkers in [`model::programs`].

#![warn(missing_docs)]

pub mod explore;
pub mod progspec;
pub mod repro;
mod system;
mod vars;

pub use progspec::{ProgSpec, SpecOp};
pub use repro::Repro;
pub use system::{Ctx, Outcome, RunError, System, VerifyError};
pub use vars::{VarArray, VarMatrix, VarSpace};

/// The formal model (histories, causality, checkers), re-exported.
pub use mc_model as model;

pub use mc_model::{
    check, commute, litmus, programs, sc, trace, viz, BarrierId, History, Loc, LockId, LockMode,
    ModelAssignment, ModelSpec, OpKind, ProcId, ProcModel, ReadLabel, Value, WriteId,
};
pub use mc_proto::{
    BatchPolicy, DsmConfig, DurabilityPolicy, LockPropagation, MemDisk, Mode, SessionConfig,
    ShardConfig,
};
pub use mc_sim::{
    ActionId, Crash, DecisionTrace, DurabilityStats, FaultBudget, FaultPlan, FaultStats, Histogram,
    LatencyModel, Metrics, NodeId, Partition, SimConfig, SimError, SimTime, StepInfo, StepKind,
    Touch, TraceEvent, Tracer,
};
