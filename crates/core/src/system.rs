//! The user-facing runtime: build a system, spawn processes, run, get
//! metrics and a checkable history.

use std::fmt;
use std::sync::{Arc, Mutex};

use mc_model::{
    BarrierId, History, HistoryBuilder, Loc, LockId, LockMode, MalformedHistory, OpKind, ProcId,
    ReadLabel, Value, WriteId,
};
use mc_proto::{Dsm, DsmConfig, LockPropagation, Mode, Req, Resp};
use mc_sim::{
    FaultPlan, Kernel, LatencyModel, Metrics, NodeId, ProcCtx, SimConfig, SimError, SimTime,
};

/// Error from running a system.
#[derive(Debug)]
pub enum RunError {
    /// The simulation failed (deadlock, process panic, event limit).
    Sim(SimError),
    /// The recorded history failed well-formedness validation — this
    /// indicates a protocol bug (or injected fault) worth investigating.
    Malformed(MalformedHistory),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Malformed(e) => write!(f, "recorded history is malformed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// The result of a completed run.
#[derive(Debug)]
pub struct Outcome {
    /// Simulator metrics: virtual time, messages, bytes, stalls.
    pub metrics: Metrics,
    /// The recorded history, when recording was enabled.
    pub history: Option<History>,
    /// The structured event trace, when [`System::trace`] was enabled:
    /// message/syscall/stall spans and timer/fault instants keyed by
    /// virtual time, exportable as JSONL or a Chrome/Perfetto trace.
    pub trace: Option<mc_sim::Tracer>,
    dsm: Dsm,
}

impl Outcome {
    /// The final converged value of `loc`: read from `proc`'s replica in
    /// the replicated modes (the simulator drains all deliveries before
    /// finishing, so replicas agree except for concurrent float-counter
    /// deltas — see the Cholesky discussion), or from the central server
    /// in SC mode.
    pub fn final_value(&self, proc: ProcId, loc: Loc) -> Value {
        if self.dsm.config().mode.is_replicated() {
            self.dsm.replica(proc).peek(loc)
        } else {
            self.dsm.server_value(loc)
        }
    }

    /// The protocol's final state.
    pub fn dsm(&self) -> &Dsm {
        &self.dsm
    }

    /// Verifies the recorded history against the consistency definition
    /// of the protocol the run executed on: Definition 3 for
    /// [`Mode::Pram`], Definition 2 for [`Mode::Causal`], Definition 4
    /// for [`Mode::Mixed`], and the exact Definition 1 search for
    /// [`Mode::Sc`] (`Unknown` verdicts are treated as success; SC runs
    /// should stay litmus-sized).
    ///
    /// # Errors
    ///
    /// Returns the checker's error on violation, or [`VerifyError::NotRecorded`]
    /// if recording was off.
    pub fn verify(&self) -> Result<(), VerifyError> {
        let h = self.history.as_ref().ok_or(VerifyError::NotRecorded)?;
        let cfg = self.dsm.config();
        // The mode enums survive as protocol substrates, but every
        // verdict now comes from the declarative lattice validator: a
        // legacy mode is judged as the uniform assignment of its
        // equivalent lattice point.
        let models = cfg.models.clone().unwrap_or_else(|| match cfg.mode {
            Mode::Pram => mc_model::ModelAssignment::uniform(h.nprocs(), mc_model::ModelSpec::PRAM),
            Mode::Causal => {
                mc_model::ModelAssignment::uniform(h.nprocs(), mc_model::ModelSpec::CAUSAL)
            }
            Mode::Mixed => mc_model::ModelAssignment::mixed(h.nprocs()),
            Mode::Sc => mc_model::ModelAssignment::uniform(h.nprocs(), mc_model::ModelSpec::SC),
        });
        // Under interest-based partial replication the protocol promises
        // each consistency guarantee *per shard* (updates flow among a
        // shard's subscribers only), so the recorded history is judged
        // shard by shard: project onto each shard's locations and check
        // the projection. Cross-shard program order still reaches the
        // checker — the projection keeps per-process order among the
        // shard's own accesses.
        if let Some(sc) = cfg.sharding.as_ref().filter(|_| cfg.mode.is_replicated()) {
            for shard in 0..sc.nshards {
                let hs = h.project_shard(sc.nshards, shard).map_err(VerifyError::Projection)?;
                Self::judge(&hs, &models)?;
            }
            return Ok(());
        }
        Self::judge(h, &models)
    }

    fn judge(h: &mc_model::History, models: &mc_model::ModelAssignment) -> Result<(), VerifyError> {
        match mc_model::spec::check_model(h, models) {
            Ok(_) => Ok(()),
            Err(mc_model::check::CheckError::Violations(r))
                if r.violations.is_empty()
                    && r.global == [mc_model::check::GlobalViolation::NotSerializable] =>
            {
                Err(VerifyError::NotSequentiallyConsistent)
            }
            Err(e) => Err(VerifyError::Check(e)),
        }
    }
}

/// Error type of [`Outcome::verify`].
#[derive(Debug)]
pub enum VerifyError {
    /// The run did not record a history (enable [`System::record`]).
    NotRecorded,
    /// A consistency definition was violated.
    Check(mc_model::check::CheckError),
    /// A per-shard projection of the history was malformed — the
    /// protocol let a reads-from edge cross shards.
    Projection(mc_model::MalformedHistory),
    /// No serialization of the SC run is sequential.
    NotSequentiallyConsistent,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotRecorded => write!(f, "history recording was not enabled"),
            VerifyError::Check(e) => write!(f, "{e}"),
            VerifyError::Projection(e) => write!(f, "shard projection malformed: {e}"),
            VerifyError::NotSequentiallyConsistent => {
                write!(f, "no serialization is sequential")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Builder for a mixed-consistency DSM system.
///
/// # Examples
///
/// ```
/// use mixed_consistency::{Mode, System, Value, Loc};
///
/// let mut sys = System::new(2, Mode::Mixed).record(true);
/// sys.spawn(|ctx| {
///     ctx.write(Loc(0), 41);
///     ctx.write(Loc(1), 1); // flag
/// });
/// sys.spawn(|ctx| {
///     ctx.await_eq(Loc(1), 1);
///     assert_eq!(ctx.read_causal(Loc(0)), Value::Int(41));
/// });
/// let outcome = sys.run()?;
/// let history = outcome.history.expect("recording enabled");
/// mixed_consistency::check::check_mixed(&history).expect("mixed consistent");
/// # Ok::<(), mixed_consistency::RunError>(())
/// ```
pub struct System {
    dsm_cfg: DsmConfig,
    sim_cfg: SimConfig,
    record: bool,
    trace: bool,
    schedule: Option<Box<dyn mc_sim::Schedule>>,
    seed_disks: Vec<(ProcId, mc_proto::MemDisk)>,
    #[allow(clippy::type_complexity)]
    procs: Vec<Box<dyn FnOnce(&mut Ctx<'_>) + Send + 'static>>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("dsm", &self.dsm_cfg)
            .field("nprocs", &self.procs.len())
            .field("record", &self.record)
            .finish()
    }
}

impl System {
    /// Creates a system of `nprocs` processes running on memory `mode`.
    pub fn new(nprocs: usize, mode: Mode) -> Self {
        System {
            dsm_cfg: DsmConfig::new(nprocs, mode),
            sim_cfg: SimConfig::default(),
            record: false,
            trace: false,
            schedule: None,
            seed_disks: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// Pre-seeds `proc`'s replica disk before the run — the durable
    /// image a reborn node recovers from. Lets repro artifacts (and
    /// corruption tests) start a run from an exact on-disk state.
    pub fn seed_disk(mut self, proc: ProcId, disk: mc_proto::MemDisk) -> Self {
        self.seed_disks.push((proc, disk));
        self
    }

    /// Selects the lock propagation variant (default: lazy).
    pub fn lock_propagation(mut self, p: LockPropagation) -> Self {
        self.dsm_cfg.lock_propagation = p;
        self
    }

    /// Restricts a barrier object to a subset of processes (Section
    /// 3.1.2's sub-group barriers). Unrestricted barriers involve every
    /// process.
    pub fn barrier_group(mut self, barrier: BarrierId, group: Vec<ProcId>) -> Self {
        self.dsm_cfg = self.dsm_cfg.with_barrier_group(barrier, group);
        self
    }

    /// Distributes lock/barrier managers over `shards` nodes (Section 6
    /// maps every synchronization object "to a process"; sharding spreads
    /// that traffic across links).
    pub fn manager_shards(mut self, shards: usize) -> Self {
        self.dsm_cfg = self.dsm_cfg.with_manager_shards(shards);
        self
    }

    /// Seeds the schedule and latency jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim_cfg.seed = seed;
        self
    }

    /// Sets the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.sim_cfg.latency = latency;
        self
    }

    /// Overrides the full simulator configuration.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Enables or disables history recording (default: off).
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Enables or disables structured tracing (default: off).
    ///
    /// A traced run collects a [`mc_sim::Tracer`] in
    /// [`Outcome::trace`]: a span per message (tagged with the vector
    /// timestamp it carries), a span per syscall and per stall, and
    /// instants for timers and injected faults — all keyed by virtual
    /// time, so traces are deterministic per seed. Export with
    /// [`mc_sim::Tracer::to_jsonl`] or
    /// [`mc_sim::Tracer::to_chrome_trace`] (loads in Perfetto).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Replaces the kernel's tie-breaking schedule (used by
    /// [`crate::explore`]; custom [`mc_sim::Schedule`]s plug in here too).
    pub fn set_schedule(&mut self, schedule: Box<dyn mc_sim::Schedule>) {
        self.schedule = Some(schedule);
    }

    /// Mutable access to the simulator configuration (crate-internal).
    pub(crate) fn sim_cfg_mut(&mut self) -> &mut SimConfig {
        &mut self.sim_cfg
    }

    /// Installs a network fault-injection plan: seeded message drops,
    /// duplicates, reordering, timed partitions, and node crash/restart
    /// windows (see [`FaultPlan`]). Combine with [`System::reliable`] to
    /// run the session layer that masks the faults, or leave it off to
    /// let the consistency checkers catch the resulting anomalies.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.sim_cfg.faults = plan;
        self
    }

    /// Enables the reliable-delivery session layer
    /// ([`mc_proto::session`]): per-link sequence numbers,
    /// acknowledgements, and retransmission with exponential backoff. It
    /// restores the FIFO-channel assumption of the paper's Section 6 over
    /// a faulty network.
    pub fn reliable(mut self, reliable: bool) -> Self {
        self.dsm_cfg.reliable = reliable;
        self
    }

    /// Enables (`Some`) or disables (`None`, the default) batched,
    /// coalesced, delta-compressed update propagation
    /// ([`mc_proto::BatchPolicy`]). Buffered writes flush before every
    /// synchronization message, so the mixed-consistency semantics are
    /// unchanged — only the wire traffic is.
    pub fn batching(mut self, batch: Option<mc_proto::BatchPolicy>) -> Self {
        self.dsm_cfg.batch = batch;
        self
    }

    /// Enables (`Some`) or disables (`None`, the default) sharded
    /// interest-based partial replication ([`mc_proto::ShardConfig`]):
    /// the address space is partitioned by `loc.index() % nshards`,
    /// each process subscribes to the shards in its interest set, and
    /// updates are multicast only to a shard's subscribers. Vector
    /// clocks become per-shard, so clock width scales with the number
    /// of interested replicas rather than the cluster size — the
    /// paper's §6 demand-driven propagation taken to its demand-known-
    /// in-advance limit. [`Outcome::verify`] judges each shard's
    /// projection of the history independently.
    ///
    /// Accesses outside a process's interest set panic unless
    /// [`mc_proto::ShardConfig::with_dynamic`] enables
    /// subscribe-on-first-touch. Locks and barriers are not supported
    /// while sharding is on. Ignored under [`Mode::Sc`] (there is no
    /// replication to partition).
    ///
    /// # Panics
    ///
    /// Panics (in the constructor path) if the interest-set count
    /// differs from the system's process count.
    pub fn sharding(mut self, sharding: Option<mc_proto::ShardConfig>) -> Self {
        self.dsm_cfg = self.dsm_cfg.with_sharding(sharding);
        self
    }

    /// Sets the replica store pre-sizing hint (number of shared
    /// locations the program uses).
    pub fn locations(mut self, locations: usize) -> Self {
        self.dsm_cfg.locations = locations;
        self
    }

    /// Assigns a consistency-model lattice point to every process (see
    /// [`mc_model::spec`]): the protocol substrate is derived from the
    /// assignment (overriding the constructor's mode), reads are labeled
    /// per process, and [`Outcome::verify`] judges each process's reads
    /// against its own point.
    ///
    /// # Panics
    ///
    /// Panics if the assignment's process count differs from the
    /// system's, or if it mixes `sc` with replicated points.
    pub fn models(mut self, models: mc_model::ModelAssignment) -> Self {
        self.dsm_cfg = self.dsm_cfg.with_models(models);
        self
    }

    /// Enables (`Some`) or disables (`None`, the default) durable crash
    /// recovery ([`mc_proto::DurabilityPolicy`]): every replica keeps a
    /// write-ahead log with append-before-ack for its own writes plus
    /// compacted snapshots, so a crash-recover fault (timed via
    /// [`FaultPlan::crash_recover`], or explored via
    /// [`mc_sim::FaultBudget::crash_recover_of`]) rebuilds the replica
    /// from disk and fetches only the missing delta from peers. Combine
    /// with [`System::reliable`] so the recovery handshake survives the
    /// same faults it repairs.
    pub fn durability(mut self, policy: Option<mc_proto::DurabilityPolicy>) -> Self {
        self.dsm_cfg.durability = policy;
        self
    }

    /// Enables fault *exploration*: each message send becomes a decision
    /// point (deliver / drop / duplicate, within the budget) and the
    /// budget's listed nodes may crash at any scheduling step — see
    /// [`mc_sim::FaultBudget`]. Meant for [`crate::explore`], where the
    /// decision trace then enumerates fault placements exhaustively
    /// instead of sampling them from a [`FaultPlan`].
    pub fn explore_faults(mut self, budget: mc_sim::FaultBudget) -> Self {
        self.sim_cfg.explore_faults = Some(budget);
        self
    }

    /// Adds the next process (process ids follow spawn order).
    pub fn spawn<F>(&mut self, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx<'_>) + Send + 'static,
    {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Box::new(f));
        id
    }

    /// Runs the system to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Sim`] for deadlocks/panics/event limits and
    /// [`RunError::Malformed`] if the recorded history fails validation.
    ///
    /// # Panics
    ///
    /// Panics if more processes were spawned than `nprocs`.
    pub fn run(self) -> Result<Outcome, RunError> {
        let System { dsm_cfg, sim_cfg, record, trace, procs, schedule, seed_disks } = self;
        // Strict: barriers wait for every configured process, so a
        // mismatch would deadlock at runtime with a far less helpful
        // diagnostic than this.
        assert_eq!(
            procs.len(),
            dsm_cfg.nprocs,
            "spawned {} processes but configured {}",
            procs.len(),
            dsm_cfg.nprocs
        );
        let recorder: Option<Arc<Mutex<HistoryBuilder>>> =
            record.then(|| Arc::new(Mutex::new(HistoryBuilder::new(dsm_cfg.nprocs))));

        let nnodes = dsm_cfg.nnodes();
        let mut dsm = Dsm::new(dsm_cfg);
        for (p, disk) in seed_disks {
            dsm.set_disk(p, disk);
        }
        let mut kernel = Kernel::new(dsm, nnodes, sim_cfg);
        if trace {
            kernel.enable_tracing();
        }
        if let Some(s) = schedule {
            kernel.set_schedule(s);
        }
        for (i, f) in procs.into_iter().enumerate() {
            let recorder = recorder.clone();
            kernel.spawn(NodeId(i as u32), move |pctx| {
                let mut ctx = Ctx { proc: ProcId(i as u32), inner: pctx, recorder };
                f(&mut ctx);
            });
        }
        let report = kernel.run()?;
        let history = match recorder {
            None => None,
            Some(rec) => {
                let builder = Arc::try_unwrap(rec)
                    .expect("all process handles dropped")
                    .into_inner()
                    .expect("no poisoned recorder");
                Some(builder.build().map_err(RunError::Malformed)?)
            }
        };
        Ok(Outcome { metrics: report.metrics, history, trace: report.trace, dsm: report.protocol })
    }
}

/// The per-process handle: the memory and synchronization operations of
/// the mixed-consistency model.
#[derive(Debug)]
pub struct Ctx<'a> {
    proc: ProcId,
    inner: &'a mut ProcCtx<Dsm>,
    recorder: Option<Arc<Mutex<HistoryBuilder>>>,
}

impl Ctx<'_> {
    /// This process's id.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    fn push(&mut self, kind: OpKind) {
        if let Some(rec) = &self.recorder {
            rec.lock().expect("recorder healthy").push(self.proc, kind);
        }
    }

    /// Writes `value` to `loc` (non-blocking) and returns the write id.
    pub fn write(&mut self, loc: Loc, value: impl Into<Value>) -> WriteId {
        let value = value.into();
        let Resp::Wrote { id } = self.inner.request(Req::Write { loc, value }) else {
            unreachable!("write answered with non-write response")
        };
        self.push(OpKind::Write { loc, value, id });
        id
    }

    /// Applies a commutative increment to the counter at `loc`
    /// (Section 5.3's abstract objects). Integer deltas apply to integer
    /// counters, float deltas to float cells (the Cholesky optimization).
    pub fn add(&mut self, loc: Loc, delta: impl Into<Value>) -> WriteId {
        let delta = delta.into();
        let Resp::Wrote { id } = self.inner.request(Req::Update { loc, delta }) else {
            unreachable!("update answered with non-write response")
        };
        self.push(OpKind::Update { loc, delta, id });
        id
    }

    /// Reads `loc` with an explicit consistency label.
    pub fn read(&mut self, loc: Loc, label: ReadLabel) -> Value {
        let Resp::Value { value, writer } = self.inner.request(Req::Read { loc, label }) else {
            unreachable!("read answered with non-value response")
        };
        let recorded_writer = Some(writer.unwrap_or(WriteId::initial(loc)));
        self.push(OpKind::Read { loc, label, value, writer: recorded_writer });
        value
    }

    /// Reads `loc` as a causal read (Definition 2).
    pub fn read_causal(&mut self, loc: Loc) -> Value {
        self.read(loc, ReadLabel::Causal)
    }

    /// Reads `loc` as a PRAM read (Definition 3).
    pub fn read_pram(&mut self, loc: Loc) -> Value {
        self.read(loc, ReadLabel::Pram)
    }

    /// Acquires a lock.
    pub fn lock(&mut self, lock: LockId, mode: LockMode) {
        let resp = self.inner.request(Req::Lock { lock, mode });
        debug_assert_eq!(resp, Resp::Done);
        self.push(OpKind::Lock { lock, mode });
    }

    /// Releases a lock.
    pub fn unlock(&mut self, lock: LockId, mode: LockMode) {
        let resp = self.inner.request(Req::Unlock { lock, mode });
        debug_assert_eq!(resp, Resp::Done);
        self.push(OpKind::Unlock { lock, mode });
    }

    /// Acquires `lock` in write mode (`wl`).
    pub fn write_lock(&mut self, lock: LockId) {
        self.lock(lock, LockMode::Write);
    }

    /// Releases `lock` from write mode (`wu`).
    pub fn write_unlock(&mut self, lock: LockId) {
        self.unlock(lock, LockMode::Write);
    }

    /// Acquires `lock` in read mode (`rl`).
    pub fn read_lock(&mut self, lock: LockId) {
        self.lock(lock, LockMode::Read);
    }

    /// Releases `lock` from read mode (`ru`).
    pub fn read_unlock(&mut self, lock: LockId) {
        self.unlock(lock, LockMode::Read);
    }

    /// Runs `f` inside a write critical section of `lock`.
    pub fn with_write_lock<R>(&mut self, lock: LockId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.write_lock(lock);
        let r = f(self);
        self.write_unlock(lock);
        r
    }

    /// Arrives at (and passes) the default barrier object.
    pub fn barrier(&mut self) {
        self.barrier_on(BarrierId(0));
    }

    /// Arrives at (and passes) a specific barrier object.
    pub fn barrier_on(&mut self, barrier: BarrierId) {
        let Resp::BarrierPassed { round } = self.inner.request(Req::Barrier { barrier }) else {
            unreachable!("barrier answered with non-barrier response")
        };
        self.push(OpKind::Barrier { barrier, round: mc_model::BarrierRound(round) });
    }

    /// Blocks until `loc = value` (`await`, Section 3.1.3) and returns the
    /// observed value.
    pub fn await_eq(&mut self, loc: Loc, value: impl Into<Value>) -> Value {
        let value = value.into();
        let Resp::Awaited { value: observed, writers } =
            self.inner.request(Req::Await { loc, value })
        else {
            unreachable!("await answered with non-await response")
        };
        let writers = if writers.is_empty() { vec![WriteId::initial(loc)] } else { writers };
        self.push(OpKind::Await { loc, value: observed, writers });
        observed
    }

    /// Charges `cost` of virtual compute time (models local work between
    /// memory operations).
    pub fn compute(&mut self, cost: SimTime) {
        self.inner.advance(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::check;

    #[test]
    fn quick_producer_consumer_records_history() {
        let mut sys = System::new(2, Mode::Mixed).record(true).seed(3);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 41);
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), 1);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(41));
        });
        let outcome = sys.run().unwrap();
        let h = outcome.history.as_ref().unwrap();
        assert_eq!(h.nprocs(), 2);
        assert_eq!(h.len(), 4);
        check::check_mixed(h).unwrap();
        assert_eq!(outcome.final_value(ProcId(1), Loc(0)), Value::Int(41));
    }

    #[test]
    fn lock_history_has_epochs() {
        let mut sys = System::new(2, Mode::Mixed).record(true);
        for _ in 0..2 {
            sys.spawn(|ctx| {
                ctx.with_write_lock(LockId(0), |ctx| {
                    let v = ctx.read_causal(Loc(0)).expect_i64();
                    ctx.write(Loc(0), v + 1);
                });
            });
        }
        let outcome = sys.run().unwrap();
        let h = outcome.history.as_ref().unwrap();
        assert_eq!(h.lock_epochs()[&LockId(0)].len(), 2);
        check::check_causal(h).unwrap();
        assert_eq!(outcome.final_value(ProcId(0), Loc(0)), Value::Int(2));
    }

    #[test]
    fn barrier_history_rounds() {
        let mut sys = System::new(3, Mode::Pram).record(true);
        for i in 0..3u32 {
            sys.spawn(move |ctx| {
                ctx.write(Loc(i), i as i64);
                ctx.barrier();
                let _ = ctx.read_pram(Loc((i + 1) % 3));
                ctx.barrier();
            });
        }
        let h = sys.run().unwrap().history.unwrap();
        assert_eq!(h.barrier_rounds()[&BarrierId(0)].len(), 2);
        check::check_pram(&h).unwrap();
        mc_model::programs::check_pram_consistent_program(&h).unwrap();
    }

    #[test]
    fn counter_history_checks() {
        let mut sys = System::new(2, Mode::Mixed).record(true);
        sys.spawn(|ctx| {
            ctx.add(Loc(0), -1);
            ctx.add(Loc(0), -1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(0), -2);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(-2));
        });
        let h = sys.run().unwrap().history.unwrap();
        check::check_mixed(&h).unwrap();
    }

    #[test]
    fn spawning_too_many_processes_panics() {
        let mut sys = System::new(1, Mode::Pram);
        sys.spawn(|_| {});
        sys.spawn(|_| {});
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.run()));
        assert!(err.is_err());
    }

    #[test]
    fn deadlock_surfaces_as_run_error() {
        let mut sys = System::new(1, Mode::Mixed);
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(0), 99);
        });
        match sys.run() {
            Err(RunError::Sim(SimError::Deadlock { .. })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compute_advances_virtual_time() {
        let mut sys = System::new(1, Mode::Pram);
        sys.spawn(|ctx| {
            ctx.compute(SimTime::from_millis(3));
            ctx.write(Loc(0), 1);
        });
        let outcome = sys.run().unwrap();
        assert!(outcome.metrics.finish_time >= SimTime::from_millis(3));
    }

    #[test]
    fn subgroup_barriers_synchronize_only_their_group() {
        // Processes 0/1 phase through barrier b1, processes 2/3 through
        // b2 — independently. A final global barrier (b0) joins everyone.
        let mut sys = System::new(4, Mode::Mixed)
            .record(true)
            .barrier_group(BarrierId(1), vec![ProcId(0), ProcId(1)])
            .barrier_group(BarrierId(2), vec![ProcId(2), ProcId(3)]);
        for p in 0..4u32 {
            sys.spawn(move |ctx| {
                let group_bar = if p < 2 { BarrierId(1) } else { BarrierId(2) };
                let partner = Loc(p ^ 1);
                for round in 0..2i64 {
                    ctx.write(Loc(p), round * 10 + p as i64);
                    ctx.barrier_on(group_bar);
                    // Ghost read from the partner: must be fresh within
                    // the group.
                    let v = ctx.read_pram(partner);
                    assert_eq!(v, Value::Int(round * 10 + partner.0 as i64));
                    ctx.barrier_on(group_bar);
                }
                ctx.barrier_on(BarrierId(0));
            });
        }
        let outcome = sys.run().unwrap();
        let h = outcome.history.as_ref().unwrap();
        // Two rounds x 2 barriers per group, one global round.
        assert_eq!(h.barrier_rounds()[&BarrierId(1)].len(), 4);
        assert_eq!(h.barrier_rounds()[&BarrierId(2)].len(), 4);
        assert_eq!(h.barrier_rounds()[&BarrierId(0)].len(), 1);
        assert_eq!(h.barrier_rounds()[&BarrierId(1)][0].ops.len(), 2);
        check::check_mixed(h).unwrap();
        check::check_pram(h).unwrap();
    }

    #[test]
    fn outcome_verify_picks_mode_checker() {
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
            let mut sys = System::new(2, mode).record(true);
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 3);
                ctx.write(Loc(1), 1);
            });
            sys.spawn(|ctx| {
                ctx.await_eq(Loc(1), 1);
                let _ = ctx.read_causal(Loc(0));
            });
            let outcome = sys.run().unwrap();
            outcome.verify().unwrap_or_else(|e| panic!("{mode}: {e}"));
            // Per-process metrics got recorded.
            assert!(outcome.metrics.proc(0).syscalls >= 2);
            assert!(outcome.metrics.proc(1).syscalls >= 2);
        }
    }

    #[test]
    fn verify_requires_recording() {
        let mut sys = System::new(1, Mode::Pram);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 1);
        });
        let outcome = sys.run().unwrap();
        assert!(matches!(outcome.verify(), Err(VerifyError::NotRecorded)));
        assert!(VerifyError::NotRecorded.to_string().contains("recording"));
    }

    #[test]
    fn manager_sharding_preserves_semantics() {
        let run = |shards: usize| {
            let mut sys = System::new(3, Mode::Mixed).manager_shards(shards).record(true).seed(5);
            for p in 0..3u32 {
                sys.spawn(move |ctx| {
                    for round in 0..3 {
                        let lock = LockId((p + round) % 4);
                        ctx.with_write_lock(lock, |ctx| {
                            let v = ctx.read_causal(Loc(lock.0)).expect_i64();
                            ctx.write(Loc(lock.0), v + 1);
                        });
                        ctx.barrier_on(BarrierId(1)); // lives on shard 1 % shards
                    }
                });
            }
            sys.run().unwrap()
        };
        for shards in [1, 2, 3] {
            let outcome = run(shards);
            outcome.verify().unwrap_or_else(|e| panic!("{shards} shards: {e}"));
            // Total increments conserved across lock objects.
            let total: i64 =
                (0..4u32).map(|l| outcome.final_value(ProcId(0), Loc(l)).expect_i64()).sum();
            assert_eq!(total, 9, "{shards} shards");
        }
    }

    #[test]
    fn faulty_network_with_session_layer_still_satisfies_definitions() {
        // The issue's acceptance bar: >=5% drop, duplication, and a timed
        // partition (cutting node 0 off from everyone, manager included).
        // With the session layer on, every recorded history must still
        // pass the Definition 4 checker and no increment may be lost.
        for seed in [1u64, 7, 23] {
            let plan = FaultPlan::new()
                .drop_rate(0.05)
                .duplicate_rate(0.05)
                .reorder(SimTime::from_micros(30))
                .partition(
                    vec![NodeId(0)],
                    vec![NodeId(1), NodeId(2), NodeId(3)],
                    SimTime::from_micros(150),
                    SimTime::from_micros(450),
                );
            let mut sys =
                System::new(3, Mode::Mixed).record(true).seed(seed).faults(plan).reliable(true);
            for _ in 0..3 {
                sys.spawn(|ctx| {
                    for _ in 0..4 {
                        ctx.with_write_lock(LockId(0), |ctx| {
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                        });
                    }
                });
            }
            let outcome = sys.run().unwrap();
            outcome.verify().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                outcome.final_value(ProcId(0), Loc(0)),
                Value::Int(12),
                "seed {seed}: no increment lost"
            );
            assert!(outcome.metrics.faults.total() > 0, "seed {seed}: faults fired");
            assert!(
                outcome.metrics.kind("retransmit").count > 0,
                "seed {seed}: the session layer had to work"
            );
        }
    }

    #[test]
    fn unreliable_duplication_is_caught_by_the_pram_checker() {
        // With the session layer off, a duplicated update can trail its
        // original long enough to overwrite a newer write from the same
        // sender — a reader then travels backwards in that sender's order,
        // which the Definition 2 checker rejects. The same seed with the
        // session layer on is clean: duplicates are suppressed by
        // sequence number.
        let plan = || FaultPlan::new().duplicate_rate(0.4).reorder(SimTime::from_micros(60));
        let build = |seed: u64, reliable: bool| {
            let mut sys = System::new(2, Mode::Pram)
                .record(true)
                .seed(seed)
                .faults(plan())
                .reliable(reliable);
            sys.spawn(|ctx| {
                for v in 1..=6i64 {
                    ctx.write(Loc(0), v);
                    ctx.compute(SimTime::from_micros(15));
                }
                ctx.write(Loc(1), 1);
            });
            sys.spawn(|ctx| {
                ctx.await_eq(Loc(1), 1);
                for _ in 0..10 {
                    let _ = ctx.read_pram(Loc(0));
                    ctx.compute(SimTime::from_micros(25));
                }
            });
            sys
        };
        let caught = (0..60u64).find(|&seed| {
            matches!(build(seed, false).run().unwrap().verify(), Err(VerifyError::Check(_)))
        });
        let seed = caught.expect("some seed must expose the duplication to the checker");
        build(seed, true)
            .run()
            .unwrap()
            .verify()
            .expect("the session layer masks the same fault plan");
    }

    #[test]
    fn sc_mode_runs_without_recording_replicas() {
        let mut sys = System::new(2, Mode::Sc).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 5);
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), 1);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(5));
        });
        let outcome = sys.run().unwrap();
        let h = outcome.history.unwrap();
        check::check_causal(&h).unwrap();
        assert!(mc_model::sc::check_sequential(&h).unwrap().is_sc());
    }
}
