//! Counterexample minimization and machine-readable repro artifacts.
//!
//! When exploration finds a violation, the raw evidence is a program, a
//! fault budget, and a decision trace — often much bigger than the bug.
//! This module shrinks all three and packages what remains as a [`Repro`]
//! artifact: a small text file that `mc-check --replay` re-executes
//! deterministically, turning every exploration failure into a
//! regression test.
//!
//! Minimization is greedy and category-preserving: an edit (dropping an
//! operation, a lock pair, a barrier object, a whole process; truncating
//! the decision trace; lowering individual decisions) is kept only if
//! the *same category* of failure — a failed run or a rejected
//! verification — still occurs.

use std::fmt::Write as _;

use mc_sim::schedule::ReplaySchedule;
use mc_sim::{FaultBudget, NodeId, SimError};

use crate::explore::{explore_with, ExploreError, ExploreOptions};
use crate::progspec::{ProgSpec, SpecOp};
use crate::system::RunError;

/// The failure category a repro reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The run itself failed (deadlock, malformed history, sim error).
    Run,
    /// The run completed but its history violated the consistency
    /// definition of the program's mode.
    Verify,
}

/// A minimized, self-contained counterexample: program, fault budget,
/// and the decision trace that drives the simulator into the failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Repro {
    /// What kind of failure this reproduces.
    pub kind: FailureKind,
    /// Human-readable description of the original failure.
    pub reason: String,
    /// Whether deadlocked runs count as tolerated dead ends (crash and
    /// drop exploration) rather than failures.
    pub allow_deadlock: bool,
    /// The fault budget the run was explored under, if any.
    pub budget: Option<FaultBudget>,
    /// The decision prefix to replay (all later decisions are 0).
    pub trace: Vec<u32>,
    /// Pre-seeded replica disk images (`(proc, serialized MemDisk)`),
    /// for repros that start from a specific durable state — e.g. a
    /// torn WAL tail a reborn node must recover through.
    pub disks: Vec<(u32, Vec<u8>)>,
    /// The program.
    pub spec: ProgSpec,
}

/// What one deterministic replay of a repro candidate produced.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RunResult {
    /// Completed and verified.
    Pass,
    /// Deadlocked (tolerated under `allow_deadlock`).
    Deadlock(String),
    /// Failed to execute.
    RunFail(String),
    /// Completed but the checker rejected the history.
    VerifyFail(String),
}

impl RunResult {
    fn kind(&self, allow_deadlock: bool) -> Option<FailureKind> {
        match self {
            RunResult::Pass => None,
            RunResult::Deadlock(_) if allow_deadlock => None,
            RunResult::Deadlock(_) | RunResult::RunFail(_) => Some(FailureKind::Run),
            RunResult::VerifyFail(_) => Some(FailureKind::Verify),
        }
    }
}

/// Runs the spec once under the given decision prefix and classifies
/// the result.
fn run_once(
    spec: &ProgSpec,
    budget: Option<&FaultBudget>,
    prefix: &[u32],
    disks: &[(u32, Vec<u8>)],
) -> RunResult {
    let mut sys = spec.build_system();
    if let Some(b) = budget {
        sys = sys.explore_faults(b.clone());
    }
    for (p, image) in disks {
        match mc_proto::MemDisk::from_image(image) {
            Some(disk) => sys = sys.seed_disk(crate::ProcId(*p), disk),
            None => return RunResult::RunFail(format!("disk image for proc {p} is malformed")),
        }
    }
    sys.zero_jitter_for_exploration();
    let (schedule, _trace) = ReplaySchedule::new(prefix.to_vec());
    sys.set_schedule(Box::new(schedule));
    match sys.run() {
        Ok(outcome) => match outcome.verify() {
            Ok(()) => RunResult::Pass,
            Err(e) => RunResult::VerifyFail(e.to_string()),
        },
        Err(RunError::Sim(e @ SimError::Deadlock { .. })) => RunResult::Deadlock(e.to_string()),
        Err(e) => RunResult::RunFail(e.to_string()),
    }
}

/// Explores the spec under the budget; on failure returns the category,
/// message, and full failing decision trace.
fn find_failure(
    spec: &ProgSpec,
    budget: Option<&FaultBudget>,
    options: &ExploreOptions,
) -> Option<(FailureKind, String, Vec<u32>)> {
    let result = explore_with(
        options.clone(),
        || {
            let mut sys = spec.build_system();
            if let Some(b) = budget {
                sys = sys.explore_faults(b.clone());
            }
            sys
        },
        |o| o.verify().map_err(|e| e.to_string()),
    );
    match result {
        Ok(_) => None,
        Err(ExploreError::Run { trace, source, .. }) => {
            Some((FailureKind::Run, source.to_string(), trace.choices))
        }
        Err(ExploreError::Verify { trace, message, .. }) => {
            Some((FailureKind::Verify, message, trace.choices))
        }
    }
}

/// Explores the program for a violation and, if one is found, minimizes
/// it into a [`Repro`]: the program is shrunk structurally, then the
/// decision trace is truncated to the shortest failing prefix and each
/// decision greedily lowered. Returns `None` when exploration (within
/// `options`' budget) finds no failure.
pub fn find_and_minimize(
    spec: &ProgSpec,
    budget: Option<&FaultBudget>,
    options: &ExploreOptions,
) -> Option<Repro> {
    let (kind, reason, _) = find_failure(spec, budget, options)?;

    // Program shrinking: keep any structural edit that preserves the
    // failure category, restarting the candidate scan after each
    // accepted edit until no edit survives.
    let mut spec = spec.clone();
    let mut trace = None;
    'shrink: loop {
        for candidate in shrink_candidates(&spec) {
            if let Some((k, _, t)) = find_failure(&candidate, budget, options) {
                if k == kind {
                    spec = candidate;
                    trace = Some(t);
                    continue 'shrink;
                }
            }
        }
        break;
    }
    let mut trace = match trace {
        Some(t) => t,
        None => find_failure(&spec, budget, options)?.2,
    };

    // Shortest failing prefix: decisions beyond the prefix default to 0
    // on replay, so trailing decisions that the failure does not depend
    // on can simply be cut.
    let same = |prefix: &[u32]| {
        run_once(&spec, budget, prefix, &[]).kind(options.allow_deadlock) == Some(kind)
    };
    if let Some(cut) = (0..=trace.len()).find(|&i| same(&trace[..i])) {
        trace.truncate(cut);
    }
    // Greedy decision lowering: prefer the smallest choice at every
    // position that still fails.
    for i in 0..trace.len() {
        let original = trace[i];
        for lower in 0..original {
            trace[i] = lower;
            if same(&trace) {
                break;
            }
            trace[i] = original;
        }
    }
    while let Some(&0) = trace.last() {
        if !same(&trace[..trace.len() - 1]) {
            break;
        }
        trace.pop();
    }

    Some(Repro {
        kind,
        // The artifact's reason field is single-line.
        reason: reason.replace('\n', " | ").trim().to_string(),
        allow_deadlock: options.allow_deadlock,
        budget: budget.cloned(),
        trace,
        disks: Vec::new(),
        spec,
    })
}

/// Structural edits that plausibly preserve well-formedness, most
/// aggressive first: drop a process, a barrier object, a lock pair, or
/// a single plain operation.
fn shrink_candidates(spec: &ProgSpec) -> Vec<ProgSpec> {
    let mut out = Vec::new();
    // Whole processes.
    if spec.procs.len() > 1 {
        for p in 0..spec.procs.len() {
            let mut s = spec.clone();
            s.procs.remove(p);
            out.push(s);
        }
    }
    // Whole barrier objects (removing single arrivals would desync
    // participants).
    let mut barriers: Vec<_> = spec
        .procs
        .iter()
        .flatten()
        .filter_map(|op| match op {
            SpecOp::Barrier { barrier } => Some(*barrier),
            _ => None,
        })
        .collect();
    barriers.sort();
    barriers.dedup();
    for b in barriers {
        let mut s = spec.clone();
        for ops in &mut s.procs {
            ops.retain(|op| !matches!(op, SpecOp::Barrier { barrier } if *barrier == b));
        }
        out.push(s);
    }
    // Lock pairs: a lock and the first matching unlock after it.
    for (p, ops) in spec.procs.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if let SpecOp::Lock { lock, mode } = op {
                let matching = ops[i + 1..].iter().position(
                    |o| matches!(o, SpecOp::Unlock { lock: l, mode: m } if l == lock && m == mode),
                );
                if let Some(j) = matching {
                    let mut s = spec.clone();
                    s.procs[p].remove(i + 1 + j);
                    s.procs[p].remove(i);
                    out.push(s);
                }
            }
        }
    }
    // Single plain operations.
    for (p, ops) in spec.procs.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if matches!(
                op,
                SpecOp::Write { .. }
                    | SpecOp::Add { .. }
                    | SpecOp::Read { .. }
                    | SpecOp::Await { .. }
            ) {
                let mut s = spec.clone();
                s.procs[p].remove(i);
                out.push(s);
            }
        }
    }
    out
}

impl Repro {
    /// Replays the repro deterministically.
    ///
    /// Returns `true` if the recorded failure category reproduces,
    /// `false` if the run passes (or deadlocks tolerably).
    pub fn replay(&self) -> bool {
        run_once(&self.spec, self.budget.as_ref(), &self.trace, &self.disks)
            .kind(self.allow_deadlock)
            == Some(self.kind)
    }

    /// The message the replayed failure produces now (for display).
    pub fn replay_message(&self) -> String {
        match run_once(&self.spec, self.budget.as_ref(), &self.trace, &self.disks) {
            RunResult::Pass => "run passed".to_string(),
            RunResult::Deadlock(m) | RunResult::RunFail(m) | RunResult::VerifyFail(m) => m,
        }
    }

    /// Renders the artifact in the text format accepted by
    /// [`Repro::parse`] (and by `mc-check --replay`).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mixed-consistency repro v1\n");
        let _ = writeln!(
            out,
            "kind {}",
            match self.kind {
                FailureKind::Run => "run",
                FailureKind::Verify => "verify",
            }
        );
        let _ = writeln!(out, "reason {}", self.reason.replace('\n', " | "));
        if self.allow_deadlock {
            let _ = writeln!(out, "allow-deadlock");
        }
        if let Some(b) = &self.budget {
            if b.max_drops > 0 {
                let _ = writeln!(out, "fault-drops {}", b.max_drops);
            }
            if b.max_duplicates > 0 {
                let _ = writeln!(out, "fault-dups {}", b.max_duplicates);
            }
            if !b.crashes.is_empty() {
                let nodes: Vec<String> = b.crashes.iter().map(|n| n.0.to_string()).collect();
                let _ = writeln!(out, "fault-crashes {}", nodes.join(" "));
            }
            if !b.recovers.is_empty() {
                let nodes: Vec<String> = b.recovers.iter().map(|n| n.0.to_string()).collect();
                let _ = writeln!(out, "fault-recovers {}", nodes.join(" "));
            }
        }
        if !self.trace.is_empty() {
            let steps: Vec<String> = self.trace.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "trace {}", steps.join(" "));
        }
        for (p, image) in &self.disks {
            let hex: String = image.iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(out, "disk {p} {hex}");
        }
        out.push_str(&self.spec.to_text());
        out
    }

    /// Parses the text format produced by [`Repro::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut kind = None;
        let mut reason = String::new();
        let mut allow_deadlock = false;
        let mut budget = FaultBudget::new();
        let mut has_budget = false;
        let mut trace = Vec::new();
        let mut disks = Vec::new();
        let mut spec_text = String::new();
        let mut in_spec = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            if in_spec {
                spec_text.push_str(raw);
                spec_text.push('\n');
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
            match word {
                "kind" => {
                    kind = Some(match rest {
                        "run" => FailureKind::Run,
                        "verify" => FailureKind::Verify,
                        _ => return Err(err("unknown failure kind")),
                    });
                }
                "reason" => reason = rest.to_string(),
                "allow-deadlock" => allow_deadlock = true,
                "fault-drops" => {
                    budget.max_drops = rest.parse().map_err(|_| err("bad drop count"))?;
                    has_budget = true;
                }
                "fault-dups" => {
                    budget.max_duplicates = rest.parse().map_err(|_| err("bad dup count"))?;
                    has_budget = true;
                }
                "fault-crashes" => {
                    for w in rest.split_whitespace() {
                        let n: u32 = w.parse().map_err(|_| err("bad crash node"))?;
                        budget.crashes.push(NodeId(n));
                    }
                    has_budget = true;
                }
                "fault-recovers" => {
                    for w in rest.split_whitespace() {
                        let n: u32 = w.parse().map_err(|_| err("bad recover node"))?;
                        budget.recovers.push(NodeId(n));
                    }
                    has_budget = true;
                }
                "trace" => {
                    for w in rest.split_whitespace() {
                        trace.push(w.parse().map_err(|_| err("bad trace step"))?);
                    }
                }
                "disk" => {
                    let (proc, hex) = rest.split_once(' ').ok_or_else(|| err("bad disk line"))?;
                    let proc: u32 = proc.parse().map_err(|_| err("bad disk proc"))?;
                    let hex = hex.trim();
                    if hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(err("bad disk hex"));
                    }
                    let bytes = (0..hex.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
                        .collect();
                    disks.push((proc, bytes));
                }
                _ => {
                    // The spec begins at its `mode` line.
                    in_spec = true;
                    spec_text.push_str(raw);
                    spec_text.push('\n');
                }
            }
        }
        Ok(Repro {
            kind: kind.ok_or("missing `kind` line")?,
            reason,
            allow_deadlock,
            budget: has_budget.then_some(budget),
            trace,
            disks,
            spec: ProgSpec::parse(&spec_text)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loc, ReadLabel};
    use mc_proto::Mode;

    /// The acceptance program: a PRAM store chain whose middle update
    /// may be dropped, producing a Definition 3 violation when the
    /// reader observes the flag but not the dropped write.
    fn dropped_update_spec() -> ProgSpec {
        ProgSpec::new(Mode::Pram)
            .proc(vec![
                SpecOp::Write { loc: Loc(0), value: 1 },
                SpecOp::Write { loc: Loc(0), value: 2 },
                SpecOp::Write { loc: Loc(1), value: 1 },
            ])
            .proc(vec![
                SpecOp::Await { loc: Loc(1), value: 1 },
                SpecOp::Read { loc: Loc(0), label: ReadLabel::Pram },
            ])
    }

    fn minimize_options() -> ExploreOptions {
        ExploreOptions::new().allow_deadlock(true).max_runs(50_000)
    }

    #[test]
    fn finds_and_minimizes_a_fault_violation() {
        let budget = FaultBudget::new().drops(1);
        let repro = find_and_minimize(&dropped_update_spec(), Some(&budget), &minimize_options())
            .expect("a drop violates PRAM consistency");
        assert_eq!(repro.kind, FailureKind::Verify);
        assert!(repro.replay(), "the minimized artifact must still fail: {}", repro.to_text());
        // Minimization must not grow the program.
        assert!(repro.spec.len() <= dropped_update_spec().len());
        assert!(!repro.reason.is_empty());
    }

    #[test]
    fn artifact_round_trips_and_replays() {
        let budget = FaultBudget::new().drops(1);
        let repro = find_and_minimize(&dropped_update_spec(), Some(&budget), &minimize_options())
            .expect("violation found");
        let text = repro.to_text();
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert!(back.replay(), "parsed artifact replays deterministically");
        assert!(!back.replay_message().is_empty());
    }

    #[test]
    fn correct_programs_yield_no_repro() {
        let spec = ProgSpec::new(Mode::Causal)
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }]);
        assert!(find_and_minimize(&spec, None, &ExploreOptions::new()).is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Repro::parse("kind banana\nmode pram\nproc 0").is_err());
        assert!(Repro::parse("mode pram\nproc 0").is_err(), "missing kind");
        assert!(Repro::parse("kind verify\ntrace x\nmode pram\nproc 0").is_err());
        assert!(Repro::parse("kind verify\nfault-drops many\nmode pram\nproc 0").is_err());
        assert!(Repro::parse("kind verify\nfault-recovers x\nmode pram\nproc 0").is_err());
        assert!(Repro::parse("kind verify\ndisk 0 zz\nmode pram\nproc 0").is_err());
        assert!(Repro::parse("kind verify\ndisk 0 abc\nmode pram\nproc 0").is_err(), "odd hex");
    }

    #[test]
    fn recovery_artifact_round_trips_and_replays() {
        // A recovery repro carries three extra ingredients: the
        // crash-recover budget, the spec's durability cadence, and the
        // pre-crash durable disk image the reborn node recovers from.
        // The program deadlocks (awaits a value nobody writes), so the
        // Run failure reproduces under any replayed decision prefix.
        let mut disk = mc_proto::MemDisk::new();
        disk.append(&mc_proto::WalRecord::Incarnation { incarnation: 1 }.encode());
        disk.sync();
        let repro = Repro {
            kind: FailureKind::Run,
            reason: "deadlock: process 0 awaits a value never written".to_string(),
            allow_deadlock: false,
            budget: Some(FaultBudget::new().crash_recover_of(NodeId(0))),
            trace: Vec::new(),
            disks: vec![(0, disk.image())],
            spec: ProgSpec::new(Mode::Pram)
                .durable(2)
                .proc(vec![SpecOp::Await { loc: Loc(0), value: 1 }]),
        };
        let text = repro.to_text();
        assert!(text.contains("fault-recovers 0"), "{text}");
        assert!(text.contains("durability 2"), "{text}");
        assert!(text.contains("disk 0 "), "{text}");
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back, repro);
        assert!(back.replay(), "the recovery repro reproduces: {}", back.replay_message());
    }

    #[test]
    fn malformed_disk_image_fails_the_replay_cleanly() {
        let repro = Repro {
            kind: FailureKind::Run,
            reason: String::new(),
            allow_deadlock: false,
            budget: None,
            trace: Vec::new(),
            disks: vec![(0, vec![0x7f, 0x00])],
            spec: ProgSpec::new(Mode::Pram)
                .durable(2)
                .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }]),
        };
        assert!(repro.replay_message().contains("malformed"));
    }
}
