//! `mc-check` — check a history trace file against the paper's
//! consistency definitions.
//!
//! ```text
//! USAGE: mc-check <trace-file> [options]
//!   --mixed      judge reads by their labels (Definition 4, default)
//!   --pram       judge every read as a PRAM read (Definition 3)
//!   --causal     judge every read as a causal read (Definition 2)
//!   --sc         exact sequential-consistency search (Definition 1)
//!   --theorem1   check Theorem 1's premises (commutativity + causal)
//!   --stats      print history statistics
//!   --dot        print the causality graph in Graphviz format
//!   --replay     treat <file> as a repro artifact produced by
//!                exploration and re-execute it deterministically
//! ```
//!
//! The trace format is documented in `mixed_consistency::trace`; recorded
//! histories serialize to it via `trace::to_text`. Repro artifacts are
//! documented in `mixed_consistency::repro`. Exit status 1 means a
//! violation was found (or, under `--replay`, that the recorded failure
//! reproduced).

use std::io::Write as _;
use std::process::ExitCode;

use mixed_consistency::model::{trace, viz};
use mixed_consistency::{check, commute, sc, History, Repro};

/// Prints to stdout ignoring broken pipes (`mc-check … | head` must not
/// panic).
macro_rules! out {
    ($($arg:tt)*) => {{
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, $($arg)*);
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mc-check <trace-file> \
         [--mixed|--pram|--causal|--sc|--theorem1|--stats|--dot|--replay]..."
    );
    ExitCode::from(2)
}

/// Re-executes a repro artifact; exit 1 when the recorded failure
/// reproduces, 0 when it no longer does.
fn replay(path: &str, text: &str) -> ExitCode {
    let repro = match Repro::parse(text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mc-check: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if repro.replay() {
        out!("replay     REPRODUCED\n{}", repro.replay_message());
        ExitCode::from(1)
    } else {
        out!("replay     not reproduced ({})", repro.replay_message());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let flags: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    if let Some(bad) = flags.iter().find(|f| {
        !matches!(
            **f,
            "--mixed"
                | "--pram"
                | "--causal"
                | "--sc"
                | "--theorem1"
                | "--stats"
                | "--dot"
                | "--replay"
        )
    }) {
        eprintln!("unknown option {bad}");
        return usage();
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mc-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if flags.contains(&"--replay") {
        return replay(path, &text);
    }
    let history: History = match trace::parse(&text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mc-check: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    // With no flags, run the three definition checkers; any explicit flag
    // selects exactly what was asked (so `--dot | dot -Tsvg` stays clean).
    let run_all = flags.is_empty();
    let mut failed = false;
    let mut judge = |name: &str, result: Result<(), String>| match result {
        Ok(()) => out!("{name:<10} ok"),
        Err(e) => {
            out!("{name:<10} VIOLATION\n{e}");
            failed = true;
        }
    };

    if run_all || flags.contains(&"--mixed") {
        judge("mixed", check::check_mixed(&history).map(|_| ()).map_err(|e| e.to_string()));
    }
    if run_all || flags.contains(&"--pram") {
        judge("pram", check::check_pram(&history).map(|_| ()).map_err(|e| e.to_string()));
    }
    if run_all || flags.contains(&"--causal") {
        judge("causal", check::check_causal(&history).map(|_| ()).map_err(|e| e.to_string()));
    }
    if flags.contains(&"--sc") {
        match sc::check_sequential(&history) {
            Ok(sc::ScVerdict::SequentiallyConsistent(_)) => judge("sc", Ok(())),
            Ok(sc::ScVerdict::Unknown) => {
                out!("{:<10} unknown (budget exhausted)", "sc")
            }
            Ok(sc::ScVerdict::NotSequentiallyConsistent) => {
                judge("sc", Err("no serialization is sequential".to_string()))
            }
            Err(e) => judge("sc", Err(e.to_string())),
        }
    }
    if flags.contains(&"--theorem1") {
        match commute::check_theorem1(&history) {
            Ok(outcome) if outcome.applies() => {
                out!("{:<10} premises hold (history is SC)", "theorem1")
            }
            Ok(_) => out!("{:<10} premises do not apply", "theorem1"),
            Err(e) => judge("theorem1", Err(e.to_string())),
        }
    }
    if flags.contains(&"--stats") {
        match viz::stats(&history) {
            Ok(s) => out!("{s}"),
            Err(e) => judge("stats", Err(e.to_string())),
        }
    }
    if flags.contains(&"--dot") {
        match viz::to_dot(&history) {
            Ok(d) => {
                let mut stdout = std::io::stdout().lock();
                let _ = write!(stdout, "{d}");
            }
            Err(e) => judge("dot", Err(e.to_string())),
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
