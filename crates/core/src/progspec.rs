//! Serializable program specifications.
//!
//! Exploration and counterexample minimization need programs as *data*:
//! a [`ProgSpec`] describes the per-process operation lists of a closed
//! program, can be shrunk structurally (dropping operations, lock pairs,
//! barrier rounds), rebuilt into a runnable [`System`], and round-tripped
//! through a line-oriented text format — which is how `mc-check --replay`
//! reconstructs a failing run from a repro artifact.

use std::fmt::Write as _;

use mc_proto::{LockPropagation, Mode};

use crate::explore::racing_config;
use crate::system::{Ctx, System};
use crate::{BarrierId, Loc, LockId, LockMode, ReadLabel};

/// One operation of a [`ProgSpec`] process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecOp {
    /// `ctx.write(loc, value)`.
    Write {
        /// Target location.
        loc: Loc,
        /// Written value.
        value: i64,
    },
    /// `ctx.add(loc, delta)` (commutative counter increment).
    Add {
        /// Target location.
        loc: Loc,
        /// The delta.
        delta: i64,
    },
    /// `ctx.read(loc, label)`, result discarded (the recorded history
    /// keeps the observed value for the checkers).
    Read {
        /// Read location.
        loc: Loc,
        /// Consistency label of the read.
        label: ReadLabel,
    },
    /// `ctx.lock(lock, mode)`.
    Lock {
        /// The lock object.
        lock: LockId,
        /// Read or write mode.
        mode: LockMode,
    },
    /// `ctx.unlock(lock, mode)`.
    Unlock {
        /// The lock object.
        lock: LockId,
        /// Read or write mode.
        mode: LockMode,
    },
    /// `ctx.barrier_on(barrier)`.
    Barrier {
        /// The barrier object.
        barrier: BarrierId,
    },
    /// `ctx.await_eq(loc, value)`.
    Await {
        /// Awaited location.
        loc: Loc,
        /// Value to wait for.
        value: i64,
    },
}

/// A closed, serializable program: memory mode, lock propagation
/// variant, and one operation list per process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgSpec {
    /// The memory mode the program runs on.
    pub mode: Mode,
    /// The lock propagation variant.
    pub lock_propagation: LockPropagation,
    /// Per-replica durability: `Some(n)` enables the WAL with a snapshot
    /// every `n` records (and the session layer, which recovery's epoch
    /// fencing rides on).
    pub durability: Option<u32>,
    /// Per-process lattice assignment: `Some(ms)` judges (and runs)
    /// process `i` under `ms[i]` instead of the single [`Mode`]. Length
    /// must equal the process count once processes are appended.
    pub models: Option<Vec<mc_model::ProcModel>>,
    /// Sharded partial replication: `Some(n)` partitions the address
    /// space into `n` shards (`loc % n`) and multicasts updates only to
    /// a shard's subscribers. Interest sets default to each process's
    /// footprint (the shards of the locations its operations touch) and
    /// can be overridden per process via [`ProgSpec::interest`].
    pub shards: Option<usize>,
    /// Explicit per-process interest overrides, sorted by process id.
    /// A process with an override subscribes statically to exactly
    /// those shards; the subscribe-on-first-touch fallback is enabled
    /// so accesses outside it block-and-subscribe instead of faulting.
    pub interest: Vec<(usize, Vec<usize>)>,
    /// Per-process operation lists (process ids follow index order).
    pub procs: Vec<Vec<SpecOp>>,
}

impl ProgSpec {
    /// Creates an empty spec on `mode` with the default (lazy) lock
    /// propagation.
    pub fn new(mode: Mode) -> Self {
        ProgSpec {
            mode,
            lock_propagation: LockPropagation::Lazy,
            durability: None,
            models: None,
            shards: None,
            interest: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// Enables durable replicas: WAL plus a snapshot every
    /// `snapshot_every` records.
    pub fn durable(mut self, snapshot_every: u32) -> Self {
        self.durability = Some(snapshot_every);
        self
    }

    /// Assigns one lattice point per process. The assignment overrides
    /// the `mode` substrate (which is re-derived from the models) and
    /// routes verification through the declarative validator.
    pub fn models(mut self, models: Vec<mc_model::ProcModel>) -> Self {
        self.models = Some(models);
        self
    }

    /// Partitions the address space into `nshards` shards with
    /// footprint-derived interest sets (see [`ProgSpec::shards`]).
    pub fn sharded(mut self, nshards: usize) -> Self {
        self.shards = Some(nshards);
        self
    }

    /// Overrides process `proc`'s interest set (and enables the
    /// subscribe-on-first-touch fallback for accesses outside it).
    ///
    /// # Panics
    ///
    /// Panics on a second override for the same process.
    pub fn interest(mut self, proc: usize, shards: Vec<usize>) -> Self {
        assert!(
            !self.interest.iter().any(|(p, _)| *p == proc),
            "duplicate interest override for process {proc}"
        );
        self.interest.push((proc, shards));
        self.interest.sort();
        self
    }

    /// Appends a process with the given operations.
    pub fn proc(mut self, ops: Vec<SpecOp>) -> Self {
        self.procs.push(ops);
        self
    }

    /// Total operation count across processes.
    pub fn len(&self) -> usize {
        self.procs.iter().map(Vec::len).sum()
    }

    /// `true` if no process has any operation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the runnable [`System`] for this spec: recording on, racing
    /// (zero-latency, zero-cost) simulator configuration so exploration
    /// reaches every interleaving through tie-breaking.
    pub fn build_system(&self) -> System {
        let mut sys = System::new(self.procs.len(), self.mode)
            .lock_propagation(self.lock_propagation)
            .record(true)
            .sim_config(racing_config());
        if let Some(every) = self.durability {
            sys = sys.reliable(true).durability(Some(mc_proto::DurabilityPolicy::new(every)));
        }
        if let Some(models) = &self.models {
            sys = sys.models(mc_model::ModelAssignment::per_proc(models.clone()));
        }
        if let Some(nshards) = self.shards {
            // Explicit overrides may under-subscribe on purpose (to
            // exercise first-touch subscription), so their presence
            // turns the dynamic fallback on; pure footprint interest
            // covers every access statically.
            let dynamic = !self.interest.is_empty();
            let interest: Vec<Vec<usize>> = (0..self.procs.len())
                .map(|p| match self.interest.iter().find(|(q, _)| *q == p) {
                    Some((_, set)) => set.clone(),
                    None => footprint(&self.procs[p], nshards),
                })
                .collect();
            sys = sys.sharding(Some(
                mc_proto::ShardConfig::new(nshards, interest).with_dynamic(dynamic),
            ));
        }
        for ops in &self.procs {
            let ops = ops.clone();
            sys.spawn(move |ctx| run_ops(ctx, &ops));
        }
        sys
    }

    /// Renders the spec in the line-oriented text format accepted by
    /// [`ProgSpec::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mode {}", self.mode);
        let _ = writeln!(out, "locks {}", prop_name(self.lock_propagation));
        if let Some(every) = self.durability {
            let _ = writeln!(out, "durability {every}");
        }
        if let Some(models) = &self.models {
            let names: Vec<&str> = models.iter().map(mc_model::ProcModel::name).collect();
            let _ = writeln!(out, "models {}", names.join(" "));
        }
        if let Some(n) = self.shards {
            let _ = writeln!(out, "shards {n}");
        }
        for (p, set) in &self.interest {
            let rendered: Vec<String> = set.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "interest {p} {}", rendered.join(" "));
        }
        for (p, ops) in self.procs.iter().enumerate() {
            let _ = writeln!(out, "proc {p}");
            for op in ops {
                let _ = writeln!(out, "  {}", op_text(op));
            }
        }
        out
    }

    /// Parses the text format produced by [`ProgSpec::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<ProgSpec, String> {
        let mut mode = None;
        let mut prop = LockPropagation::Lazy;
        let mut durability = None;
        let mut models = None;
        let mut shards = None;
        let mut interest: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut procs: Vec<Vec<SpecOp>> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            match words[0] {
                "mode" => {
                    mode = Some(
                        parse_mode(words.get(1).copied().unwrap_or(""))
                            .ok_or_else(|| err("unknown mode"))?,
                    );
                }
                "locks" => {
                    prop = parse_prop(words.get(1).copied().unwrap_or(""))
                        .ok_or_else(|| err("unknown lock propagation"))?;
                }
                "durability" => {
                    durability = Some(
                        words
                            .get(1)
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err("bad snapshot cadence"))?,
                    );
                }
                "models" => {
                    // A second `models` line used to silently overwrite
                    // the first — last-wins hid typos in hand-edited
                    // artifacts, so duplicates are now a parse error.
                    if models.is_some() {
                        return Err(err("duplicate `models` line"));
                    }
                    let parsed: Option<Vec<mc_model::ProcModel>> =
                        words[1..].iter().map(|w| mc_model::ProcModel::named(w)).collect();
                    let parsed = parsed.ok_or_else(|| err("unknown model name"))?;
                    if parsed.is_empty() {
                        return Err(err("empty model list"));
                    }
                    models = Some(parsed);
                }
                "shards" => {
                    if shards.is_some() {
                        return Err(err("duplicate `shards` line"));
                    }
                    let n: usize = words
                        .get(1)
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad shard count"))?;
                    if n == 0 || words.len() != 2 {
                        return Err(err("bad shard count"));
                    }
                    shards = Some(n);
                }
                "interest" => {
                    let p: usize = words
                        .get(1)
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad interest process"))?;
                    if interest.iter().any(|(q, _)| *q == p) {
                        return Err(err("duplicate `interest` line for process"));
                    }
                    let set: Option<Vec<usize>> =
                        words[2..].iter().map(|w| w.parse().ok()).collect();
                    let set = set.ok_or_else(|| err("bad shard id in interest set"))?;
                    interest.push((p, set));
                }
                "proc" => {
                    let idx: usize =
                        words.get(1).and_then(|w| w.parse().ok()).ok_or_else(|| err("bad proc"))?;
                    if idx != procs.len() {
                        return Err(err("processes must appear in order"));
                    }
                    procs.push(Vec::new());
                }
                _ => {
                    let op = parse_op(&words).ok_or_else(|| err("unknown operation"))?;
                    procs.last_mut().ok_or_else(|| err("operation before any proc"))?.push(op);
                }
            }
        }
        if let Some(ms) = &models {
            if ms.len() != procs.len() {
                return Err(format!(
                    "`models` names {} processes but the program has {}",
                    ms.len(),
                    procs.len()
                ));
            }
        }
        interest.sort();
        match shards {
            Some(n) => {
                for (p, set) in &interest {
                    if *p >= procs.len() {
                        return Err(format!(
                            "`interest` names process {p} but the program has {}",
                            procs.len()
                        ));
                    }
                    if let Some(s) = set.iter().find(|s| **s >= n) {
                        return Err(format!("`interest {p}` names shard {s} of only {n}"));
                    }
                }
                let sync = procs.iter().flatten().any(|op| {
                    matches!(
                        op,
                        SpecOp::Lock { .. } | SpecOp::Unlock { .. } | SpecOp::Barrier { .. }
                    )
                });
                if sync {
                    return Err("locks and barriers are not supported with `shards`".to_string());
                }
            }
            None => {
                if !interest.is_empty() {
                    return Err("`interest` requires a `shards` line".to_string());
                }
            }
        }
        Ok(ProgSpec {
            mode: mode.ok_or("missing `mode` line")?,
            lock_propagation: prop,
            durability,
            models,
            shards,
            interest,
            procs,
        })
    }
}

/// The shards a process's operations touch — its default interest set.
fn footprint(ops: &[SpecOp], nshards: usize) -> Vec<usize> {
    let mut shards: Vec<usize> = ops
        .iter()
        .filter_map(|op| match op {
            SpecOp::Write { loc, .. }
            | SpecOp::Add { loc, .. }
            | SpecOp::Read { loc, .. }
            | SpecOp::Await { loc, .. } => Some(loc.index() % nshards),
            SpecOp::Lock { .. } | SpecOp::Unlock { .. } | SpecOp::Barrier { .. } => None,
        })
        .collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

fn run_ops(ctx: &mut Ctx<'_>, ops: &[SpecOp]) {
    for op in ops {
        match *op {
            SpecOp::Write { loc, value } => {
                ctx.write(loc, value);
            }
            SpecOp::Add { loc, delta } => {
                ctx.add(loc, delta);
            }
            SpecOp::Read { loc, label } => {
                let _ = ctx.read(loc, label);
            }
            SpecOp::Lock { lock, mode } => ctx.lock(lock, mode),
            SpecOp::Unlock { lock, mode } => ctx.unlock(lock, mode),
            SpecOp::Barrier { barrier } => ctx.barrier_on(barrier),
            SpecOp::Await { loc, value } => {
                ctx.await_eq(loc, value);
            }
        }
    }
}

fn op_text(op: &SpecOp) -> String {
    match *op {
        SpecOp::Write { loc, value } => format!("w {} {}", loc.0, value),
        SpecOp::Add { loc, delta } => format!("add {} {}", loc.0, delta),
        SpecOp::Read { loc, label } => {
            format!("r {} {}", loc.0, if label == ReadLabel::Pram { "pram" } else { "causal" })
        }
        SpecOp::Lock { lock, mode } => {
            format!("l {} {}", lock.0, if mode == LockMode::Write { "w" } else { "r" })
        }
        SpecOp::Unlock { lock, mode } => {
            format!("u {} {}", lock.0, if mode == LockMode::Write { "w" } else { "r" })
        }
        SpecOp::Barrier { barrier } => format!("b {}", barrier.0),
        SpecOp::Await { loc, value } => format!("await {} {}", loc.0, value),
    }
}

fn parse_op(words: &[&str]) -> Option<SpecOp> {
    let n1 = |i: usize| words.get(i).and_then(|w| w.parse::<u32>().ok());
    let i1 = |i: usize| words.get(i).and_then(|w| w.parse::<i64>().ok());
    Some(match words[0] {
        "w" => SpecOp::Write { loc: Loc(n1(1)?), value: i1(2)? },
        "add" => SpecOp::Add { loc: Loc(n1(1)?), delta: i1(2)? },
        "r" => SpecOp::Read {
            loc: Loc(n1(1)?),
            label: match *words.get(2)? {
                "pram" => ReadLabel::Pram,
                "causal" => ReadLabel::Causal,
                _ => return None,
            },
        },
        "l" | "u" => {
            let mode = match *words.get(2)? {
                "w" => LockMode::Write,
                "r" => LockMode::Read,
                _ => return None,
            };
            if words[0] == "l" {
                SpecOp::Lock { lock: LockId(n1(1)?), mode }
            } else {
                SpecOp::Unlock { lock: LockId(n1(1)?), mode }
            }
        }
        "b" => SpecOp::Barrier { barrier: BarrierId(n1(1)?) },
        "await" => SpecOp::Await { loc: Loc(n1(1)?), value: i1(2)? },
        _ => return None,
    })
}

fn parse_mode(s: &str) -> Option<Mode> {
    Mode::ALL.into_iter().find(|m| m.to_string() == s)
}

fn prop_name(p: LockPropagation) -> &'static str {
    match p {
        LockPropagation::Eager => "eager",
        LockPropagation::Lazy => "lazy",
        LockPropagation::DemandDriven => "demand",
    }
}

fn parse_prop(s: &str) -> Option<LockPropagation> {
    LockPropagation::ALL.into_iter().find(|&p| prop_name(p) == s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    fn sample() -> ProgSpec {
        ProgSpec::new(Mode::Mixed)
            .proc(vec![
                SpecOp::Write { loc: Loc(0), value: 1 },
                SpecOp::Lock { lock: LockId(0), mode: LockMode::Write },
                SpecOp::Add { loc: Loc(1), delta: -1 },
                SpecOp::Unlock { lock: LockId(0), mode: LockMode::Write },
                SpecOp::Barrier { barrier: BarrierId(0) },
            ])
            .proc(vec![
                SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal },
                SpecOp::Read { loc: Loc(1), label: ReadLabel::Pram },
                SpecOp::Barrier { barrier: BarrierId(0) },
            ])
    }

    #[test]
    fn text_round_trip_is_identity() {
        let spec = sample();
        let text = spec.to_text();
        let back = ProgSpec::parse(&text).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn await_round_trips() {
        let spec = ProgSpec::new(Mode::Pram)
            .proc(vec![SpecOp::Write { loc: Loc(1), value: 1 }])
            .proc(vec![
                SpecOp::Await { loc: Loc(1), value: 1 },
                SpecOp::Read { loc: Loc(0), label: ReadLabel::Pram },
            ]);
        assert_eq!(ProgSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn durability_round_trips_and_builds() {
        let spec = ProgSpec::new(Mode::Causal)
            .durable(4)
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }]);
        let text = spec.to_text();
        assert!(text.contains("durability 4"), "{text}");
        assert_eq!(ProgSpec::parse(&text).unwrap(), spec);
        // The built system actually logs: the run completes with WAL
        // activity in the metrics.
        let outcome = spec.build_system().run().unwrap();
        assert!(outcome.metrics.wal.appends > 0);
        assert_eq!(outcome.metrics.wal.lost, 0);
    }

    #[test]
    fn built_system_runs_and_records() {
        let outcome = sample().build_system().run().unwrap();
        let h = outcome.history.expect("recording enabled");
        assert_eq!(h.nprocs(), 2);
        assert_eq!(h.len(), sample().len());
        check::check_mixed(&h).unwrap();
    }

    #[test]
    fn models_round_trip_and_build() {
        let spec = ProgSpec::new(Mode::Mixed)
            .models(vec![
                mc_model::ProcModel::Fixed(mc_model::ModelSpec::SLOW),
                mc_model::ProcModel::Fixed(mc_model::ModelSpec::CAUSAL),
            ])
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }]);
        let text = spec.to_text();
        assert!(text.contains("models slow causal"), "{text}");
        assert_eq!(ProgSpec::parse(&text).unwrap(), spec);
        // The built system runs and verifies under the declarative
        // validator for the assigned lattice points.
        let outcome = spec.build_system().run().unwrap();
        outcome.verify().unwrap();
    }

    #[test]
    fn models_length_must_match_process_count() {
        let text = "mode mixed\nmodels slow\nproc 0\n  w 0 1\nproc 1\n  r 0 causal\n";
        let e = ProgSpec::parse(text).unwrap_err();
        assert!(e.contains("names 1 processes but the program has 2"), "{e}");
        assert!(ProgSpec::parse("mode mixed\nmodels frob\nproc 0\n  w 0 1\n").is_err());
    }

    #[test]
    fn duplicate_models_line_is_rejected() {
        let text = "mode mixed\nmodels slow causal\nmodels causal causal\n\
                    proc 0\n  w 0 1\nproc 1\n  r 0 causal\n";
        let e = ProgSpec::parse(text).unwrap_err();
        assert!(e.contains("duplicate `models` line"), "{e}");
    }

    #[test]
    fn shards_round_trip_and_build() {
        let spec = ProgSpec::new(Mode::Causal)
            .sharded(2)
            .proc(vec![
                SpecOp::Write { loc: Loc(0), value: 1 },
                SpecOp::Write { loc: Loc(1), value: 2 },
            ])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }]);
        let text = spec.to_text();
        assert!(text.contains("shards 2"), "{text}");
        assert_eq!(ProgSpec::parse(&text).unwrap(), spec);
        let outcome = spec.build_system().run().unwrap();
        outcome.verify().unwrap();
    }

    #[test]
    fn interest_round_trips_and_enables_first_touch() {
        // Process 1's override omits shard 1; its read of Loc(1) must
        // subscribe on first touch rather than fault.
        let spec = ProgSpec::new(Mode::Causal)
            .sharded(2)
            .interest(1, vec![0])
            .proc(vec![SpecOp::Write { loc: Loc(1), value: 7 }])
            .proc(vec![SpecOp::Read { loc: Loc(1), label: ReadLabel::Pram }]);
        let text = spec.to_text();
        assert!(text.contains("interest 1 0"), "{text}");
        assert_eq!(ProgSpec::parse(&text).unwrap(), spec);
        let outcome = spec.build_system().run().unwrap();
        outcome.verify().unwrap();
    }

    #[test]
    fn shard_stanza_garbage_is_rejected() {
        let ok = "mode causal\nshards 2\nproc 0\n  w 0 1\n";
        assert!(ProgSpec::parse(ok).is_ok());
        for (bad, msg) in [
            ("mode causal\nshards 0\nproc 0\n  w 0 1\n", "bad shard count"),
            ("mode causal\nshards x\nproc 0\n  w 0 1\n", "bad shard count"),
            ("mode causal\nshards 2\nshards 2\nproc 0\n  w 0 1\n", "duplicate `shards`"),
            ("mode causal\nshards 2\ninterest 0 9\nproc 0\n  w 0 1\n", "names shard 9"),
            ("mode causal\nshards 2\ninterest 5 0\nproc 0\n  w 0 1\n", "names process 5"),
            ("mode causal\nshards 2\ninterest 0 banana\nproc 0\n  w 0 1\n", "bad shard id"),
            (
                "mode causal\nshards 2\ninterest 0 0\ninterest 0 1\nproc 0\n  w 0 1\n",
                "duplicate `interest`",
            ),
            ("mode causal\ninterest 0 0\nproc 0\n  w 0 1\n", "requires a `shards` line"),
            ("mode causal\nshards 2\nproc 0\n  l 0 w\n  u 0 w\n", "not supported"),
        ] {
            let e = ProgSpec::parse(bad).unwrap_err();
            assert!(e.contains(msg), "{bad:?}: {e}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ProgSpec::parse("mode bogus").is_err());
        assert!(ProgSpec::parse("mode pram\nw 0 1").is_err(), "op before proc");
        assert!(ProgSpec::parse("proc 0").is_err(), "missing mode");
        assert!(ProgSpec::parse("mode pram\nproc 1").is_err(), "out-of-order proc");
        assert!(ProgSpec::parse("mode pram\nproc 0\n  frobnicate 1").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let spec = ProgSpec::parse("# hello\nmode sc\n\nproc 0\n  w 0 3\n").unwrap();
        assert_eq!(spec.mode, Mode::Sc);
        assert_eq!(spec.procs, vec![vec![SpecOp::Write { loc: Loc(0), value: 3 }]]);
    }
}
