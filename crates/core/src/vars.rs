//! Shared-variable allocation helpers.
//!
//! The model addresses memory by flat [`Loc`] indices; applications think
//! in scalars, arrays and matrices. [`VarSpace`] is a tiny bump allocator
//! mapping the latter onto the former.

use mc_model::Loc;

/// Allocator for shared-variable locations.
///
/// # Examples
///
/// ```
/// use mixed_consistency::VarSpace;
/// let mut vars = VarSpace::new();
/// let done = vars.scalar();
/// let x = vars.array(4);
/// let a = vars.matrix(4, 4);
/// assert_ne!(done, x.at(0));
/// assert_ne!(a.at(0, 1), a.at(1, 0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarSpace {
    next: u32,
}

impl VarSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        VarSpace { next: 0 }
    }

    /// Allocates a single shared variable.
    pub fn scalar(&mut self) -> Loc {
        let l = Loc(self.next);
        self.next += 1;
        l
    }

    /// Allocates a 1-dimensional array of `len` variables.
    pub fn array(&mut self, len: usize) -> VarArray {
        let base = self.next;
        self.next += len as u32;
        VarArray { base, len }
    }

    /// Allocates a row-major `rows × cols` matrix of variables.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> VarMatrix {
        let base = self.next;
        self.next += (rows * cols) as u32;
        VarMatrix { base, rows, cols }
    }

    /// The number of locations allocated so far.
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Returns `true` if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }
}

/// A contiguous run of shared variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarArray {
    base: u32,
    len: usize,
}

impl VarArray {
    /// The location of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn at(&self, i: usize) -> Loc {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Loc(self.base + i as u32)
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the element locations.
    pub fn iter(&self) -> impl Iterator<Item = Loc> + '_ {
        (0..self.len).map(|i| self.at(i))
    }
}

/// A row-major matrix of shared variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarMatrix {
    base: u32,
    rows: usize,
    cols: usize,
}

impl VarMatrix {
    /// The location of entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, i: usize, j: usize) -> Loc {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        Loc(self.base + (i * self.cols + j) as u32)
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_disjoint() {
        let mut v = VarSpace::new();
        assert!(v.is_empty());
        let a = v.scalar();
        let arr = v.array(3);
        let m = v.matrix(2, 2);
        let b = v.scalar();
        let mut all = vec![a, b];
        all.extend(arr.iter());
        all.extend((0..2).flat_map(|i| (0..2).map(move |j| m.at(i, j))));
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        assert_eq!(v.len(), 9);
    }

    #[test]
    fn matrix_is_row_major() {
        let mut v = VarSpace::new();
        let m = v.matrix(2, 3);
        assert_eq!(m.at(0, 0), Loc(0));
        assert_eq!(m.at(0, 2), Loc(2));
        assert_eq!(m.at(1, 0), Loc(3));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let mut v = VarSpace::new();
        let a = v.array(2);
        let _ = a.at(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_bounds_checked() {
        let mut v = VarSpace::new();
        let m = v.matrix(2, 2);
        let _ = m.at(0, 2);
    }

    #[test]
    fn array_iter() {
        let mut v = VarSpace::new();
        v.scalar();
        let a = v.array(2);
        let locs: Vec<Loc> = a.iter().collect();
        assert_eq!(locs, vec![Loc(1), Loc(2)]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
