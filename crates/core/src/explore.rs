//! Exhaustive schedule exploration: run a program under **every**
//! scheduler interleaving (up to a budget) and verify each execution.
//!
//! The simulator's only nondeterminism under a jitter-free latency model
//! is the kernel's tie-breaking among same-time actions. Exploration
//! replaces the random tie-breaker with a replayable decision trace and
//! enumerates the decision tree depth-first — the systematic-concurrency-
//! testing approach — so litmus-sized programs can be *proved* (within
//! the budget) to satisfy their consistency definition on every schedule,
//! not just on sampled seeds.
//!
//! # Examples
//!
//! ```
//! use mixed_consistency::{check, explore, Loc, Mode, System};
//!
//! let outcome = explore::explore(
//!     500,
//!     || {
//!         let mut sys = System::new(2, Mode::Mixed)
//!             .record(true)
//!             .sim_config(explore::racing_config());
//!         sys.spawn(|ctx| {
//!             ctx.write(Loc(0), 1);
//!             let _ = ctx.read_pram(Loc(1));
//!         });
//!         sys.spawn(|ctx| {
//!             ctx.write(Loc(1), 1);
//!             let _ = ctx.read_causal(Loc(0));
//!         });
//!         sys
//!     },
//!     |o| {
//!         let h = o.history.as_ref().expect("recording enabled");
//!         check::check_mixed(h).map(|_| ()).map_err(|e| e.to_string())
//!     },
//! )?;
//! assert!(outcome.complete, "every schedule was verified");
//! assert!(outcome.runs > 1);
//! # Ok::<(), mixed_consistency::explore::ExploreError>(())
//! ```

use std::fmt;

use mc_sim::schedule::ReplaySchedule;
use mc_sim::{DecisionTrace, SimTime};

use crate::system::{Outcome, RunError, System};

/// Summary of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Number of executions performed.
    pub runs: usize,
    /// `true` if the decision tree was exhausted (every schedule seen).
    pub complete: bool,
    /// Decision points in the longest execution.
    pub max_depth: usize,
}

/// Why an exploration stopped with an error.
#[derive(Debug)]
pub enum ExploreError {
    /// A run failed to execute (deadlock, panic, malformed history).
    Run {
        /// Which run (0-based).
        run: usize,
        /// The schedule that triggered it.
        trace: DecisionTrace,
        /// The underlying failure.
        source: RunError,
    },
    /// The verifier rejected an execution.
    Verify {
        /// Which run (0-based).
        run: usize,
        /// The schedule that triggered it.
        trace: DecisionTrace,
        /// The verifier's message.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Run { run, source, trace } => {
                write!(f, "run {run} failed ({} decisions): {source}", trace.choices.len())
            }
            ExploreError::Verify { run, message, trace } => {
                write!(f, "run {run} rejected ({} decisions): {message}", trace.choices.len())
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Explores every schedule of the program built by `make`, calling
/// `verify` on each execution's [`Outcome`]; stops early after
/// `max_runs` executions.
///
/// `make` must build the *same* program every time (same processes, same
/// operations); exploration latency jitter is forced to zero so decision
/// traces are the only nondeterminism.
///
/// # Errors
///
/// Returns the first failing run or rejected verification, with the
/// decision trace that reproduces it.
pub fn explore<M, V>(
    max_runs: usize,
    mut make: M,
    mut verify: V,
) -> Result<ExploreOutcome, ExploreError>
where
    M: FnMut() -> System,
    V: FnMut(&Outcome) -> Result<(), String>,
{
    let mut prefix: Vec<u32> = Vec::new();
    let mut runs = 0usize;
    let mut max_depth = 0usize;
    loop {
        let mut sys = make();
        // Jitter would desynchronize decision trees between runs.
        sys.zero_jitter_for_exploration();
        let (schedule, trace) = ReplaySchedule::new(prefix.clone());
        sys.set_schedule(Box::new(schedule));
        let result = sys.run();
        let trace: DecisionTrace = trace.lock().expect("trace lock").clone();
        max_depth = max_depth.max(trace.choices.len());
        let outcome = match result {
            Ok(o) => o,
            Err(source) => return Err(ExploreError::Run { run: runs, trace, source }),
        };
        if let Err(message) = verify(&outcome) {
            return Err(ExploreError::Verify { run: runs, trace, message });
        }
        runs += 1;

        match trace.last_branch_point() {
            None => return Ok(ExploreOutcome { runs, complete: true, max_depth }),
            Some(i) => {
                prefix = trace.choices[..i].to_vec();
                prefix.push(trace.choices[i] + 1);
            }
        }
        if runs >= max_runs {
            return Ok(ExploreOutcome { runs, complete: false, max_depth });
        }
    }
}

impl System {
    /// Forces a jitter-free latency model (exploration helper).
    pub(crate) fn zero_jitter_for_exploration(&mut self) {
        self.sim_cfg_mut().latency.jitter = SimTime::ZERO;
    }
}

/// A simulator configuration that maximizes schedule coverage: zero
/// latency and zero per-operation cost, so deliveries and process steps
/// *tie* in virtual time and every interleaving is reachable through
/// tie-breaking. Use with [`explore`] via
/// [`System::sim_config`](crate::System::sim_config).
pub fn racing_config() -> mc_sim::SimConfig {
    mc_sim::SimConfig {
        seed: 0,
        latency: mc_sim::LatencyModel::INSTANT,
        local_cost: SimTime::ZERO,
        faults: mc_sim::FaultPlan::default(),
        max_events: 10_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, sc, Loc, LockId, Mode, ProcId, Value};
    use mc_proto::Mode as ProtoMode;

    fn _mode_reexport_consistency(m: ProtoMode) -> Mode {
        m
    }

    #[test]
    fn exploration_is_exhaustive_on_store_buffer() {
        // Dekker on mixed memory: every schedule must be mixed consistent,
        // and at least one schedule must produce the non-SC outcome
        // (both reads 0) while others produce SC outcomes.
        let mut saw_both_zero = false;
        let mut saw_other = false;
        let outcome = explore(
            5_000,
            || {
                let mut sys = System::new(2, Mode::Mixed).record(true).sim_config(racing_config());
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    let _ = ctx.read_causal(Loc(1));
                });
                sys.spawn(|ctx| {
                    ctx.write(Loc(1), 1);
                    let _ = ctx.read_causal(Loc(0));
                });
                sys
            },
            |o| {
                let h = o.history.as_ref().unwrap();
                check::check_mixed(h).map_err(|e| e.to_string())?;
                let reads: Vec<Value> = h
                    .iter()
                    .filter_map(|(_, op)| match op.kind {
                        crate::OpKind::Read { value, .. } => Some(value),
                        _ => None,
                    })
                    .collect();
                if reads == [Value::Int(0), Value::Int(0)] {
                    saw_both_zero = true;
                } else {
                    saw_other = true;
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(outcome.complete, "tree exhausted in {} runs", outcome.runs);
        assert!(outcome.runs > 2, "multiple schedules explored: {}", outcome.runs);
        assert!(saw_both_zero, "the store-buffer outcome must be reachable");
        assert!(saw_other, "ordinary outcomes must be reachable too");
    }

    #[test]
    fn exploration_finds_every_lock_order() {
        // Two processes increment under a lock: every schedule must end
        // at 2 and be sequentially consistent.
        let outcome = explore(
            5_000,
            || {
                let mut sys = System::new(2, Mode::Causal).record(true).sim_config(racing_config());
                for _ in 0..2 {
                    sys.spawn(|ctx| {
                        ctx.with_write_lock(LockId(0), |ctx| {
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                        });
                    });
                }
                sys
            },
            |o| {
                if o.final_value(ProcId(0), Loc(0)) != Value::Int(2) {
                    return Err("lost update".into());
                }
                let h = o.history.as_ref().unwrap();
                match sc::check_sequential(h).map_err(|e| e.to_string())? {
                    sc::ScVerdict::NotSequentiallyConsistent => {
                        Err("not SC despite locking + causal reads".into())
                    }
                    _ => Ok(()),
                }
            },
        )
        .unwrap();
        assert!(outcome.complete);
        assert!(outcome.runs >= 2);
    }

    #[test]
    fn budget_stops_exploration() {
        let outcome = explore(
            3,
            || {
                let mut sys = System::new(3, Mode::Pram);
                for p in 0..3u32 {
                    sys.spawn(move |ctx| {
                        ctx.write(Loc(p), 1);
                        let _ = ctx.read_pram(Loc((p + 1) % 3));
                    });
                }
                sys
            },
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(outcome.runs, 3);
        assert!(!outcome.complete);
        assert!(outcome.max_depth > 0);
    }

    #[test]
    fn verifier_failures_carry_a_repro_trace() {
        let err = explore(
            100,
            || {
                let mut sys = System::new(1, Mode::Pram);
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 7);
                });
                sys
            },
            |_| Err("always reject".into()),
        )
        .unwrap_err();
        assert!(!err.to_string().is_empty());
        match err {
            ExploreError::Verify { run: 0, message, .. } => {
                assert_eq!(message, "always reject");
            }
            other => panic!("{other}"),
        }
    }
}
