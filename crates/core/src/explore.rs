//! Stateless model checking: run a program under **every** scheduler
//! interleaving (up to a budget) and verify each execution.
//!
//! The simulator's only nondeterminism under a jitter-free latency model
//! is the kernel's tie-breaking among same-time actions (plus, under a
//! [`FaultBudget`](mc_sim::FaultBudget), the per-message fault
//! decisions). Exploration replaces the random tie-breaker with a
//! replayable decision trace and enumerates the decision tree
//! depth-first — the systematic-concurrency-testing approach — so
//! litmus-sized programs can be *proved* (within the budget) to satisfy
//! their consistency definition on every schedule, not just on sampled
//! seeds.
//!
//! Two entry points:
//!
//! * [`explore`] — the plain depth-first enumeration (every schedule,
//!   no reduction);
//! * [`explore_with`] — the full stateless model checker:
//!   **dynamic partial-order reduction** (sleep sets + race-driven
//!   backtrack sets over the per-step conflict footprints recorded by
//!   `mc-sim`), fault-branch enumeration, parallel subtree workers,
//!   run/deadline budgets, and outcome deduplication by history hash.
//!
//! The dependency relation driving the reduction is the *conflict
//! footprint* ([`Touch`]): each kernel step records which node
//! **state** it read or wrote and which node **queues** it enqueued
//! into or drained — a syscall touches its own node's state plus the
//! queues of its send destinations; a delivery touches the
//! destination's queue and state. Two steps with disjoint footprints
//! commute. See DESIGN.md for the soundness argument.
//!
//! # Examples
//!
//! ```
//! use mixed_consistency::{check, explore, Loc, Mode, System};
//!
//! let outcome = explore::explore(
//!     500,
//!     || {
//!         let mut sys = System::new(2, Mode::Mixed)
//!             .record(true)
//!             .sim_config(explore::racing_config());
//!         sys.spawn(|ctx| {
//!             ctx.write(Loc(0), 1);
//!             let _ = ctx.read_pram(Loc(1));
//!         });
//!         sys.spawn(|ctx| {
//!             ctx.write(Loc(1), 1);
//!             let _ = ctx.read_causal(Loc(0));
//!         });
//!         sys
//!     },
//!     |o| {
//!         let h = o.history.as_ref().expect("recording enabled");
//!         check::check_mixed(h).map(|_| ()).map_err(|e| e.to_string())
//!     },
//! )?;
//! assert!(outcome.complete, "every schedule was verified");
//! assert!(outcome.runs > 1);
//! # Ok::<(), mixed_consistency::explore::ExploreError>(())
//! ```

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mc_sim::schedule::ReplaySchedule;
use mc_sim::{ActionId, DecisionTrace, SimError, SimTime, StepKind, Touch};

use crate::system::{Outcome, RunError, System};

/// Summary of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Number of executions performed (including redundant ones detected
    /// by the sleep sets).
    pub runs: usize,
    /// `true` if the decision tree was exhausted (every schedule seen).
    pub complete: bool,
    /// Decision points in the longest execution.
    pub max_depth: usize,
    /// Runs that sleep-set reduction proved redundant (their subtrees
    /// were cut; each cost exactly one execution).
    pub pruned: usize,
    /// Distinct recorded histories across all runs ([`explore_with`]
    /// only; the plain [`explore`] does not track it).
    pub unique_outcomes: usize,
}

/// Why an exploration stopped with an error.
#[derive(Debug)]
pub enum ExploreError {
    /// A run failed to execute (deadlock, panic, malformed history).
    Run {
        /// Which run (0-based).
        run: usize,
        /// The schedule that triggered it.
        trace: DecisionTrace,
        /// The underlying failure.
        source: RunError,
    },
    /// The verifier rejected an execution.
    Verify {
        /// Which run (0-based).
        run: usize,
        /// The schedule that triggered it.
        trace: DecisionTrace,
        /// The verifier's message.
        message: String,
    },
}

impl ExploreError {
    /// The decision trace that reproduces the failure.
    pub fn trace(&self) -> &DecisionTrace {
        match self {
            ExploreError::Run { trace, .. } | ExploreError::Verify { trace, .. } => trace,
        }
    }
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Run { run, source, trace } => {
                write!(f, "run {run} failed ({} decisions): {source}", trace.choices.len())
            }
            ExploreError::Verify { run, message, trace } => {
                write!(f, "run {run} rejected ({} decisions): {message}", trace.choices.len())
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Explores every schedule of the program built by `make`, calling
/// `verify` on each execution's [`Outcome`]; stops early after
/// `max_runs` executions.
///
/// This is the plain depth-first enumeration with no reduction — every
/// schedule of the decision tree is executed. Prefer [`explore_with`]
/// for anything beyond litmus-sized programs.
///
/// `make` must build the *same* program every time (same processes, same
/// operations); exploration latency jitter is forced to zero so decision
/// traces are the only nondeterminism.
///
/// # Errors
///
/// Returns the first failing run or rejected verification, with the
/// decision trace that reproduces it.
pub fn explore<M, V>(
    max_runs: usize,
    mut make: M,
    mut verify: V,
) -> Result<ExploreOutcome, ExploreError>
where
    M: FnMut() -> System,
    V: FnMut(&Outcome) -> Result<(), String>,
{
    let mut prefix: Vec<u32> = Vec::new();
    let mut runs = 0usize;
    let mut max_depth = 0usize;
    loop {
        let mut sys = make();
        // Jitter would desynchronize decision trees between runs.
        sys.zero_jitter_for_exploration();
        let (schedule, trace) = ReplaySchedule::new(prefix.clone());
        sys.set_schedule(Box::new(schedule));
        let result = sys.run();
        let trace: DecisionTrace = trace.lock().expect("trace lock").clone();
        max_depth = max_depth.max(trace.choices.len());
        let outcome = match result {
            Ok(o) => o,
            Err(source) => return Err(ExploreError::Run { run: runs, trace, source }),
        };
        if let Err(message) = verify(&outcome) {
            return Err(ExploreError::Verify { run: runs, trace, message });
        }
        runs += 1;

        match trace.last_branch_point() {
            None => {
                return Ok(ExploreOutcome {
                    runs,
                    complete: true,
                    max_depth,
                    pruned: 0,
                    unique_outcomes: 0,
                })
            }
            Some(i) => {
                prefix = trace.choices[..i].to_vec();
                prefix.push(trace.choices[i] + 1);
            }
        }
        if runs >= max_runs {
            return Ok(ExploreOutcome {
                runs,
                complete: false,
                max_depth,
                pruned: 0,
                unique_outcomes: 0,
            });
        }
    }
}

impl System {
    /// Forces a jitter-free latency model (exploration helper).
    pub(crate) fn zero_jitter_for_exploration(&mut self) {
        self.sim_cfg_mut().latency.jitter = SimTime::ZERO;
    }
}

/// A simulator configuration that maximizes schedule coverage: zero
/// latency and zero per-operation cost, so deliveries and process steps
/// *tie* in virtual time and every interleaving is reachable through
/// tie-breaking. Use with [`explore`] via
/// [`System::sim_config`](crate::System::sim_config).
pub fn racing_config() -> mc_sim::SimConfig {
    mc_sim::SimConfig {
        seed: 0,
        latency: mc_sim::LatencyModel::INSTANT,
        local_cost: SimTime::ZERO,
        faults: mc_sim::FaultPlan::default(),
        explore_faults: None,
        max_events: 10_000_000,
    }
}

/// Configuration of [`explore_with`].
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Stop (incomplete) after this many executions.
    pub max_runs: usize,
    /// Stop (incomplete) after this much wall-clock time.
    pub deadline: Option<Duration>,
    /// Apply dynamic partial-order reduction (sleep sets + race-driven
    /// backtrack sets). With `false`, the full decision tree is
    /// enumerated — useful as the ground truth the reduction is checked
    /// against.
    pub dpor: bool,
    /// Worker threads. With more than one, the candidates of the first
    /// branching decision are partitioned among workers, each exploring
    /// its subtree independently (sound: each worker starts with an
    /// empty sleep set, so cross-worker redundancy is possible but
    /// bounded to that one split point).
    pub workers: usize,
    /// Treat deadlocked runs as explored non-failures instead of
    /// errors. Useful under crash exploration, where a crash trivially
    /// starves any process awaiting the crashed node.
    pub allow_deadlock: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_runs: 100_000,
            deadline: None,
            dpor: true,
            workers: 1,
            allow_deadlock: false,
        }
    }
}

impl ExploreOptions {
    /// The default options: DPOR on, one worker, 100k-run budget.
    pub fn new() -> Self {
        ExploreOptions::default()
    }

    /// Sets the execution budget.
    pub fn max_runs(mut self, n: usize) -> Self {
        self.max_runs = n;
        self
    }

    /// Sets a wall-clock deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Enables or disables partial-order reduction.
    pub fn dpor(mut self, on: bool) -> Self {
        self.dpor = on;
        self
    }

    /// Sets the number of worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Tolerates deadlocked runs (see [`ExploreOptions::allow_deadlock`]).
    pub fn allow_deadlock(mut self, on: bool) -> Self {
        self.allow_deadlock = on;
        self
    }
}

/// Explores the schedules (and, under a fault budget, the fault
/// placements) of the program built by `make`, verifying each
/// execution — with dynamic partial-order reduction, outcome
/// deduplication, and optional parallelism per `options`.
///
/// `make` must build the *same* program every time. `verify` is called
/// once per *distinct* recorded history (identical histories are
/// deduplicated by hash), so side-effecting verifiers observe the set
/// of distinct outcomes.
///
/// # Errors
///
/// Returns the first failing run or rejected verification, with the
/// decision trace that reproduces it.
pub fn explore_with<M, V>(
    options: ExploreOptions,
    make: M,
    verify: V,
) -> Result<ExploreOutcome, ExploreError>
where
    M: Fn() -> System + Send + Sync,
    V: Fn(&Outcome) -> Result<(), String> + Send + Sync,
{
    let shared = Shared {
        make: &make,
        verify: &verify,
        options: options.clone(),
        runs: AtomicUsize::new(0),
        pruned: AtomicUsize::new(0),
        max_depth: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
        seen: Mutex::new(HashSet::new()),
        started: Instant::now(),
    };

    let mut complete = if options.workers <= 1 {
        explore_subtree(&shared, Vec::new())
    } else {
        parallel_explore(&shared)
    };

    if let Some(e) = shared.error.into_inner().expect("error lock") {
        return Err(e);
    }
    let runs = shared.runs.into_inner();
    if runs >= options.max_runs {
        complete = false;
    }
    Ok(ExploreOutcome {
        runs,
        complete,
        max_depth: shared.max_depth.into_inner(),
        pruned: shared.pruned.into_inner(),
        unique_outcomes: shared.seen.into_inner().expect("seen lock").len(),
    })
}

struct Shared<'a> {
    make: &'a (dyn Fn() -> System + Send + Sync),
    verify: &'a (dyn Fn(&Outcome) -> Result<(), String> + Send + Sync),
    options: ExploreOptions,
    runs: AtomicUsize,
    pruned: AtomicUsize,
    max_depth: AtomicUsize,
    stop: AtomicBool,
    error: Mutex<Option<ExploreError>>,
    seen: Mutex<HashSet<u64>>,
    started: Instant,
}

impl Shared<'_> {
    fn out_of_budget(&self) -> bool {
        if self.runs.load(Ordering::Relaxed) >= self.options.max_runs {
            return true;
        }
        if let Some(d) = self.options.deadline {
            if self.started.elapsed() >= d {
                return true;
            }
        }
        false
    }

    fn fail(&self, e: ExploreError) {
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Splits the first branching decision's candidates among worker
/// threads, each exploring its pinned subtree with the sequential
/// engine.
fn parallel_explore(shared: &Shared<'_>) -> bool {
    // One probing run discovers the first branch point.
    let Some(trace) = single_run(shared, Vec::new()) else {
        return false; // the probe itself failed
    };
    let Some(split) = (0..trace.arities.len()).find(|&i| trace.arities[i] > 1) else {
        return true; // no branching at all: the single run was everything
    };
    let jobs: Vec<Vec<u32>> = (0..trace.arities[split])
        .map(|c| {
            let mut p = trace.choices[..split].to_vec();
            p.push(c);
            p
        })
        .collect();
    let queue = Mutex::new(jobs);
    let nworkers = shared.options.workers;
    let complete = AtomicBool::new(true);
    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some(pinned) = job else { return };
                if !explore_subtree(shared, pinned) {
                    complete.store(false, Ordering::Relaxed);
                }
            });
        }
    });
    complete.into_inner()
}

/// Executes exactly one run with the given decision prefix, handling
/// verification/dedup/error bookkeeping. Returns its trace, or `None`
/// if the run produced a terminal error.
fn single_run(shared: &Shared<'_>, prefix: Vec<u32>) -> Option<DecisionTrace> {
    let run_idx = shared.runs.fetch_add(1, Ordering::Relaxed);
    let mut sys = (shared.make)();
    sys.zero_jitter_for_exploration();
    let (schedule, trace) = ReplaySchedule::new(prefix);
    sys.set_schedule(Box::new(schedule));
    let result = sys.run();
    let trace: DecisionTrace = trace.lock().expect("trace lock").clone();
    shared.max_depth.fetch_max(trace.choices.len(), Ordering::Relaxed);
    match result {
        Ok(outcome) => {
            let fresh = match outcome.history.as_ref() {
                Some(h) => shared.seen.lock().expect("seen lock").insert(h.signature()),
                None => true,
            };
            if fresh {
                if let Err(message) = (shared.verify)(&outcome) {
                    shared.fail(ExploreError::Verify { run: run_idx, trace, message });
                    return None;
                }
            }
            Some(trace)
        }
        Err(RunError::Sim(SimError::Deadlock { blocked, at })) if shared.options.allow_deadlock => {
            let _ = (blocked, at); // tolerated: an explored dead end
            Some(trace)
        }
        Err(source) => {
            shared.fail(ExploreError::Run { run: run_idx, trace, source });
            None
        }
    }
}

/// One decision point of the DFS stack.
enum Frame {
    /// A scheduling decision (DPOR applies).
    Sched {
        candidates: Vec<ActionId>,
        /// Candidates scheduled for exploration (grows via race analysis).
        backtrack: Vec<bool>,
        /// Candidates whose subtrees are fully explored (or slept away).
        done: Vec<bool>,
        /// Observed execution footprint per candidate (empty = never
        /// executed from this state).
        fp: Vec<Vec<Touch>>,
        /// Sleep set at frame entry: actions fully explored in ancestor
        /// siblings, with the footprints observed at their execution.
        entry_sleep: Vec<(ActionId, Vec<Touch>)>,
        chosen: usize,
    },
    /// A fault decision (always fully enumerated).
    Fault { arity: usize, done: Vec<bool>, chosen: usize },
}

impl Frame {
    fn chosen(&self) -> usize {
        match self {
            Frame::Sched { chosen, .. } | Frame::Fault { chosen, .. } => *chosen,
        }
    }

    fn mark_chosen_done(&mut self) {
        match self {
            Frame::Sched { done, chosen, .. } | Frame::Fault { done, chosen, .. } => {
                done[*chosen] = true;
            }
        }
    }

    /// Picks the next candidate to explore, honoring backtrack, done,
    /// and sleep sets. Slept candidates are marked done without a run —
    /// that is the sleep-set pruning.
    fn next_choice(&mut self) -> Option<usize> {
        match self {
            Frame::Fault { arity, done, .. } => (0..*arity).find(|&c| !done[c]),
            Frame::Sched { candidates, backtrack, done, entry_sleep, .. } => {
                for c in 0..candidates.len() {
                    if !backtrack[c] || done[c] {
                        continue;
                    }
                    if entry_sleep.iter().any(|(a, _)| *a == candidates[c]) {
                        done[c] = true;
                        continue;
                    }
                    return Some(c);
                }
                None
            }
        }
    }

    fn set_chosen(&mut self, c: usize) {
        match self {
            Frame::Sched { chosen, .. } | Frame::Fault { chosen, .. } => *chosen = c,
        }
    }
}

fn disjoint(a: &[Touch], b: &[Touch]) -> bool {
    a.iter().all(|x| !b.contains(x))
}

/// Depth-first exploration of the subtree under the pinned decision
/// prefix. Returns `true` if the subtree was exhausted.
fn explore_subtree(shared: &Shared<'_>, pinned: Vec<u32>) -> bool {
    let base = pinned.len();
    let opts = &shared.options;
    let mut frames: Vec<Frame> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return false;
        }
        if shared.out_of_budget() {
            return false;
        }
        let mut prefix = pinned.clone();
        prefix.extend(frames.iter().map(|f| f.chosen() as u32));

        let run_idx = shared.runs.fetch_add(1, Ordering::Relaxed);
        let mut sys = (shared.make)();
        sys.zero_jitter_for_exploration();
        let (schedule, trace) = if opts.dpor {
            // Hand the schedule a sleep plan so the blind tail steers
            // *around* already-covered actions instead of running an
            // equivalent schedule and discarding it afterwards: at each
            // replayed position, the done siblings (with their observed
            // footprints) are fully explored from that state and enter
            // the online sleep set when the position's step executes.
            let mut plan: Vec<Vec<(ActionId, Vec<Touch>)>> = vec![Vec::new(); base];
            for f in &frames {
                plan.push(match f {
                    Frame::Sched { candidates, done, fp, chosen, .. } => (0..candidates.len())
                        .filter(|&c| c != *chosen && done[c] && !fp[c].is_empty())
                        .map(|c| (candidates[c], fp[c].clone()))
                        .collect(),
                    Frame::Fault { .. } => Vec::new(),
                });
            }
            ReplaySchedule::with_sleep(prefix, plan)
        } else {
            ReplaySchedule::new(prefix)
        };
        sys.set_schedule(Box::new(schedule));
        let result = sys.run();
        let trace: DecisionTrace = trace.lock().expect("trace lock").clone();
        shared.max_depth.fetch_max(trace.choices.len(), Ordering::Relaxed);

        // Classify the run.
        let outcome = match result {
            Ok(o) => Some(o),
            Err(RunError::Sim(SimError::Deadlock { .. })) if opts.allow_deadlock => None,
            Err(source) => {
                shared.fail(ExploreError::Run { run: run_idx, trace, source });
                return false;
            }
        };

        // Maintain the frame stack along this run's path, computing the
        // sleep set on the way down. A fresh frame whose blind pick is
        // asleep proves the whole run redundant: an equivalent schedule
        // was already explored, so the subtree is cut here.
        let mut sleep: Vec<(ActionId, Vec<Touch>)> = Vec::new();
        let mut redundant = false;
        for pos in base..trace.choices.len() {
            let fi = pos - base;
            let chosen = trace.choices[pos] as usize;
            match &trace.steps[pos].kind {
                StepKind::Fault { .. } => {
                    if fi >= frames.len() {
                        let arity = trace.arities[pos] as usize;
                        frames.push(Frame::Fault { arity, done: vec![false; arity], chosen });
                    }
                    // Fault decisions execute inside the enclosing
                    // scheduling step; their effect is already part of
                    // that step's footprint. The sleep set passes through.
                }
                StepKind::Sched { candidates } => {
                    let footprint = &trace.steps[pos].footprint;
                    if fi < frames.len() {
                        let Frame::Sched { fp, done, entry_sleep, candidates: cands, .. } =
                            &mut frames[fi]
                        else {
                            unreachable!("frame kind mismatch on replayed prefix")
                        };
                        fp[chosen] = footprint.clone();
                        if opts.dpor {
                            // Refresh the frame's entry sleep: siblings
                            // of *ancestor* frames finished since this
                            // frame was created, so the sleep arriving
                            // here (recomputed each run from current
                            // done-info) only grows — and `next_choice`
                            // should skip with the freshest knowledge.
                            *entry_sleep = sleep.clone();
                            // Sleep for the subtree below: inherited
                            // entries plus done siblings, minus anything
                            // dependent with this step.
                            let mut next: Vec<(ActionId, Vec<Touch>)> = Vec::new();
                            for (a, f) in entry_sleep.iter() {
                                if disjoint(f, footprint) {
                                    next.push((*a, f.clone()));
                                }
                            }
                            for c in 0..cands.len() {
                                if c != chosen
                                    && done[c]
                                    && !fp[c].is_empty()
                                    && disjoint(&fp[c], footprint)
                                {
                                    next.push((cands[c], fp[c].clone()));
                                }
                            }
                            sleep = next;
                        }
                    } else {
                        let n = candidates.len();
                        let mut backtrack = vec![!opts.dpor; n];
                        backtrack[chosen] = true;
                        // Crash and crash-recover timing is enumerated
                        // exhaustively: these steps are not
                        // schedule-equivalent to anything.
                        for (i, a) in candidates.iter().enumerate() {
                            if matches!(a, ActionId::Crash { .. } | ActionId::CrashRecover { .. }) {
                                backtrack[i] = true;
                            }
                        }
                        let mut fp = vec![Vec::new(); n];
                        fp[chosen] = footprint.clone();
                        let mut done = vec![false; n];
                        let asleep =
                            opts.dpor && sleep.iter().any(|(a, _)| *a == candidates[chosen]);
                        if asleep {
                            // Only this *action* is redundant, not the
                            // state: redirect the search to the first
                            // non-sleeping candidate (if every candidate
                            // sleeps, the state is fully covered by
                            // earlier equivalent explorations).
                            done[chosen] = true;
                            if let Some(alt) = (0..n).find(|&c| {
                                c != chosen && !sleep.iter().any(|(a, _)| *a == candidates[c])
                            }) {
                                backtrack[alt] = true;
                            }
                        }
                        frames.push(Frame::Sched {
                            candidates: candidates.clone(),
                            backtrack,
                            done,
                            fp,
                            entry_sleep: sleep.clone(),
                            chosen,
                        });
                        if asleep {
                            redundant = true;
                            break;
                        }
                        if opts.dpor {
                            sleep.retain(|(_, f)| disjoint(f, footprint));
                        }
                    }
                }
            }
        }

        if redundant {
            shared.pruned.fetch_add(1, Ordering::Relaxed);
        } else {
            // Verify (dedup-ed by history hash).
            if let Some(outcome) = outcome {
                let fresh = match outcome.history.as_ref() {
                    Some(h) => shared.seen.lock().expect("seen lock").insert(h.signature()),
                    None => true,
                };
                if fresh {
                    if let Err(message) = (shared.verify)(&outcome) {
                        shared.fail(ExploreError::Verify { run: run_idx, trace, message });
                        return false;
                    }
                }
            }
        }
        // Analyze the run's races to grow the backtrack sets. The steps
        // of a redundant run executed for real too — its races are
        // genuine, only the *outcome* is a duplicate — so skipping its
        // analysis would silently starve ancestor backtrack sets.
        if opts.dpor {
            analyze_races(&trace, base, &mut frames);
        }

        // Advance the DFS: deepest frame with an unexplored candidate.
        loop {
            let Some(frame) = frames.last_mut() else {
                return true; // tree exhausted
            };
            frame.mark_chosen_done();
            if let Some(c) = frame.next_choice() {
                frame.set_chosen(c);
                break;
            }
            frames.pop();
        }
    }
}

/// Race analysis over one run: for every pair of dependent steps not
/// already ordered through an intermediate step, schedule the later
/// step's action for exploration *before* the earlier step — the
/// race-driven backtrack-set growth of dynamic partial-order reduction.
fn analyze_races(trace: &DecisionTrace, base: usize, frames: &mut [Frame]) {
    // Scheduling positions of this run, in order.
    let positions: Vec<usize> = (base..trace.choices.len())
        .filter(|&p| matches!(trace.steps[p].kind, StepKind::Sched { .. }))
        .collect();
    let n = positions.len();
    let words = n.div_ceil(64);
    let action_of = |p: usize| -> ActionId {
        let StepKind::Sched { candidates } = &trace.steps[p].kind else { unreachable!() };
        candidates[trace.choices[p] as usize]
    };
    // hb[k] is the bitset of positions happening-before k (transitive
    // closure of footprint dependence along the run).
    let mut hb: Vec<Vec<u64>> = Vec::with_capacity(n);
    for k in 0..n {
        let fpk = &trace.steps[positions[k]].footprint;
        let preds: Vec<usize> =
            (0..k).filter(|&j| !disjoint(&trace.steps[positions[j]].footprint, fpk)).collect();
        let mut hbk = vec![0u64; words];
        for &j in &preds {
            for w in 0..words {
                hbk[w] |= hb[j][w];
            }
            hbk[j / 64] |= 1 << (j % 64);
        }
        for &j in &preds {
            // An immediate race: no intermediate dependent step orders
            // the pair already.
            let covered = preds.iter().any(|&m| m > j && (hb[m][j / 64] >> (j % 64)) & 1 == 1);
            if covered {
                continue;
            }
            let Some(Frame::Sched { candidates, backtrack, .. }) =
                frames.get_mut(positions[j] - base)
            else {
                // A redundant run's frame stack stops at the slept
                // frame; races beyond it have no frame to grow.
                continue;
            };
            let ak = action_of(positions[k]);
            if let Some(ci) = candidates.iter().position(|c| *c == ak) {
                backtrack[ci] = true;
            } else {
                // The racing action is not enabled at `j`. Its enabling
                // path can run through *any* candidate here (e.g. a
                // not-yet-queued delivery is reached by first executing
                // the sender's syscall, or by draining earlier heap-order
                // deliveries whose footprints are unrelated), so the only
                // sound move is to schedule them all — the classical
                // "add all enabled" fallback of DPOR.
                backtrack.iter_mut().for_each(|b| *b = true);
            }
        }
        hb.push(hbk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, sc, Loc, LockId, Mode, ProcId, Value};
    use mc_proto::Mode as ProtoMode;

    fn _mode_reexport_consistency(m: ProtoMode) -> Mode {
        m
    }

    fn store_buffer_system() -> System {
        let mut sys = System::new(2, Mode::Mixed).record(true).sim_config(racing_config());
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 1);
            let _ = ctx.read_causal(Loc(1));
        });
        sys.spawn(|ctx| {
            ctx.write(Loc(1), 1);
            let _ = ctx.read_causal(Loc(0));
        });
        sys
    }

    /// The read values in canonical (per-process program) order. The
    /// history records operations in execution order, which differs
    /// between equivalent interleavings — DPOR explores one
    /// representative per equivalence class, so outcomes must be
    /// compared in an interleaving-insensitive order.
    fn read_pairs(o: &Outcome) -> Vec<Value> {
        let mut reads: Vec<(crate::ProcId, Value)> = o
            .history
            .as_ref()
            .unwrap()
            .iter()
            .filter_map(|(_, op)| match op.kind {
                crate::OpKind::Read { value, .. } => Some((op.proc, value)),
                _ => None,
            })
            .collect();
        reads.sort_by_key(|&(p, _)| p);
        reads.into_iter().map(|(_, v)| v).collect()
    }

    #[test]
    fn exploration_is_exhaustive_on_store_buffer() {
        // Dekker on mixed memory: every schedule must be mixed consistent,
        // and at least one schedule must produce the non-SC outcome
        // (both reads 0) while others produce SC outcomes.
        let mut saw_both_zero = false;
        let mut saw_other = false;
        let outcome = explore(5_000, store_buffer_system, |o| {
            let h = o.history.as_ref().unwrap();
            check::check_mixed(h).map_err(|e| e.to_string())?;
            if read_pairs(o) == [Value::Int(0), Value::Int(0)] {
                saw_both_zero = true;
            } else {
                saw_other = true;
            }
            Ok(())
        })
        .unwrap();
        assert!(outcome.complete, "tree exhausted in {} runs", outcome.runs);
        assert!(outcome.runs > 2, "multiple schedules explored: {}", outcome.runs);
        assert!(saw_both_zero, "the store-buffer outcome must be reachable");
        assert!(saw_other, "ordinary outcomes must be reachable too");
    }

    #[test]
    fn exploration_finds_every_lock_order() {
        // Two processes increment under a lock: every schedule must end
        // at 2 and be sequentially consistent.
        let outcome = explore(
            5_000,
            || {
                let mut sys = System::new(2, Mode::Causal).record(true).sim_config(racing_config());
                for _ in 0..2 {
                    sys.spawn(|ctx| {
                        ctx.with_write_lock(LockId(0), |ctx| {
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                        });
                    });
                }
                sys
            },
            |o| {
                if o.final_value(ProcId(0), Loc(0)) != Value::Int(2) {
                    return Err("lost update".into());
                }
                let h = o.history.as_ref().unwrap();
                match sc::check_sequential(h).map_err(|e| e.to_string())? {
                    sc::ScVerdict::NotSequentiallyConsistent => {
                        Err("not SC despite locking + causal reads".into())
                    }
                    _ => Ok(()),
                }
            },
        )
        .unwrap();
        assert!(outcome.complete);
        assert!(outcome.runs >= 2);
    }

    #[test]
    fn budget_stops_exploration() {
        let outcome = explore(
            3,
            || {
                let mut sys = System::new(3, Mode::Pram);
                for p in 0..3u32 {
                    sys.spawn(move |ctx| {
                        ctx.write(Loc(p), 1);
                        let _ = ctx.read_pram(Loc((p + 1) % 3));
                    });
                }
                sys
            },
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(outcome.runs, 3);
        assert!(!outcome.complete);
        assert!(outcome.max_depth > 0);
    }

    #[test]
    fn verifier_failures_carry_a_repro_trace() {
        let err = explore(
            100,
            || {
                let mut sys = System::new(1, Mode::Pram);
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 7);
                });
                sys
            },
            |_| Err("always reject".into()),
        )
        .unwrap_err();
        assert!(!err.to_string().is_empty());
        match err {
            ExploreError::Verify { run: 0, message, .. } => {
                assert_eq!(message, "always reject");
            }
            other => panic!("{other}"),
        }
    }

    /// The distinct read-value outcomes of the store-buffer program
    /// under the given options.
    fn store_buffer_outcomes(options: ExploreOptions) -> (ExploreOutcome, Vec<Vec<Value>>) {
        let seen = Mutex::new(Vec::new());
        let out = explore_with(options, store_buffer_system, |o| {
            check::check_mixed(o.history.as_ref().unwrap()).map_err(|e| e.to_string())?;
            let mut g = seen.lock().unwrap();
            let pair = read_pairs(o);
            if !g.contains(&pair) {
                g.push(pair);
            }
            Ok(())
        })
        .unwrap();
        let mut v = seen.into_inner().unwrap();
        v.sort_by_key(|pair| format!("{pair:?}"));
        (out, v)
    }

    #[test]
    fn dpor_preserves_store_buffer_outcomes_with_fewer_runs() {
        let (naive, naive_set) = store_buffer_outcomes(ExploreOptions::new().dpor(false));
        let (dpor, dpor_set) = store_buffer_outcomes(ExploreOptions::new());
        assert!(naive.complete && dpor.complete);
        assert_eq!(naive_set, dpor_set, "reduction must not lose outcomes");
        assert!(
            dpor.runs < naive.runs,
            "DPOR ({} runs) must beat naive DFS ({} runs)",
            dpor.runs,
            naive.runs
        );
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        let (seq, seq_set) = store_buffer_outcomes(ExploreOptions::new());
        let (par, par_set) = store_buffer_outcomes(ExploreOptions::new().workers(4));
        assert!(seq.complete && par.complete);
        assert_eq!(seq_set, par_set);
        assert_eq!(seq.unique_outcomes, par.unique_outcomes);
    }

    #[test]
    fn deadline_cuts_exploration_short() {
        let out = explore_with(
            ExploreOptions::new().deadline(Duration::ZERO).dpor(false),
            store_buffer_system,
            |_| Ok(()),
        )
        .unwrap();
        assert!(!out.complete);
    }

    #[test]
    fn fault_budget_drops_are_enumerated_and_found() {
        // P0 writes x=1, x=2, then raises a flag; P1 awaits the flag and
        // PRAM-reads x. With one explored drop, some branch loses the
        // x=2 update: P1 then reads x=1 *after* having observed the
        // flag write that follows x=2 in P0's order — a Definition 3
        // violation the checker must catch. Branches that drop the flag
        // update instead deadlock P1, which is tolerated.
        let err = explore_with(
            ExploreOptions::new().allow_deadlock(true).max_runs(50_000),
            || {
                let mut sys = System::new(2, Mode::Pram)
                    .record(true)
                    .sim_config(racing_config())
                    .explore_faults(mc_sim::FaultBudget::new().drops(1));
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    ctx.write(Loc(0), 2);
                    ctx.write(Loc(1), 1);
                });
                sys.spawn(|ctx| {
                    ctx.await_eq(Loc(1), 1);
                    let _ = ctx.read_pram(Loc(0));
                });
                sys
            },
            |o| o.verify().map_err(|e| e.to_string()),
        )
        .unwrap_err();
        match err {
            ExploreError::Verify { trace, .. } => {
                assert!(
                    trace.steps.iter().any(|s| matches!(s.kind, StepKind::Fault { .. })),
                    "the repro trace records the fault decision"
                );
            }
            other => panic!("expected a verification failure, got {other}"),
        }
    }

    #[test]
    fn crash_exploration_enumerates_crash_timing() {
        // A single process writes twice; node 1 (the reader's replica)
        // may crash at any step. All runs either complete or deadlock
        // (tolerated); the exploration must branch over crash timings.
        let out = explore_with(
            ExploreOptions::new().allow_deadlock(true),
            || {
                let mut sys = System::new(2, Mode::Pram)
                    .record(true)
                    .sim_config(racing_config())
                    .explore_faults(mc_sim::FaultBudget::new().crash_of(mc_sim::NodeId(1)));
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    ctx.write(Loc(0), 2);
                });
                sys.spawn(|ctx| {
                    let _ = ctx.read_pram(Loc(0));
                });
                sys
            },
            |_| Ok(()),
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.runs > 2, "crash timings must branch: {} runs", out.runs);
    }

    #[test]
    fn crash_recover_exploration_never_loses_acked_writes() {
        // The headline durability property: with a WAL (append-before-ack)
        // and crash-recovery enabled, *no acknowledged write is ever lost*,
        // no matter where the crash lands. Node 0 writes x=1, x=2, then a
        // flag; node 1 awaits the flag and causally reads x. The budget
        // lets node 0 crash-and-recover at every explored step — including
        // between the WAL append and the broadcast, between coalesced
        // batches, and after partial acks. Every branch that completes
        // must show the full write history intact on the reborn node and
        // x=2 at the reader (the flag causally follows x=2, so a lost
        // acked write would surface as a stale read or a checker failure).
        let out = explore_with(
            ExploreOptions::new().allow_deadlock(true).max_runs(50_000),
            || {
                let mut sys = System::new(2, Mode::Causal)
                    .record(true)
                    .sim_config(racing_config())
                    .reliable(true)
                    .durability(Some(mc_proto::DurabilityPolicy::new(2)))
                    .explore_faults(mc_sim::FaultBudget::new().crash_recover_of(mc_sim::NodeId(0)));
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    ctx.write(Loc(0), 2);
                    ctx.write(Loc(1), 1);
                });
                sys.spawn(|ctx| {
                    ctx.await_eq(Loc(1), 1);
                    let _ = ctx.read_causal(Loc(0));
                });
                sys
            },
            |o| {
                o.verify().map_err(|e| e.to_string())?;
                let writer = o.dsm().replica(ProcId(0));
                if writer.applied[ProcId(0)] != 3 {
                    return Err(format!(
                        "acked writes lost across recovery: writer replayed {} of 3",
                        writer.applied[ProcId(0)]
                    ));
                }
                if o.final_value(ProcId(1), Loc(0)) != Value::Int(2) {
                    return Err(format!(
                        "reader converged to {:?}, expected Int(2)",
                        o.final_value(ProcId(1), Loc(0))
                    ));
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.runs > 2, "recovery timings must branch: {} runs", out.runs);
    }

    #[test]
    fn group_commit_crash_exploration_never_regresses_observed_reads() {
        // The group-commit bugfix litmus: under group commit an ingest
        // (or own write) is staged, not synced — the fsync happens at
        // the next externalization point. A local read that returns a
        // value IS such a point ([`Dsm::observe_sync`]): once the
        // program has seen x=1, a crash of the reader must not
        // un-happen it, or the surviving program would watch its own
        // history regress. The budget crashes the reader at every
        // explored step — including between its first and second read,
        // the exact interleaving that lost the observed value before
        // the fix. Every completing branch must verify (causal + RYW)
        // and show both reads = 1.
        let out = explore_with(
            ExploreOptions::new().allow_deadlock(true).max_runs(50_000),
            || {
                let mut sys = System::new(2, Mode::Causal)
                    .record(true)
                    .sim_config(racing_config())
                    .reliable(true)
                    .durability(Some(mc_proto::DurabilityPolicy::new(64).with_group_commit(true)))
                    .explore_faults(mc_sim::FaultBudget::new().crash_recover_of(mc_sim::NodeId(1)));
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    ctx.write(Loc(1), 1);
                });
                sys.spawn(|ctx| {
                    ctx.await_eq(Loc(1), 1);
                    let first = ctx.read_causal(Loc(0));
                    let second = ctx.read_causal(Loc(0));
                    assert_eq!(first, Value::Int(1), "flag write causally carries x=1");
                    assert_eq!(second, Value::Int(1), "observed value regressed across crash");
                });
                sys
            },
            |o| o.verify().map_err(|e| e.to_string()),
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.runs > 2, "crash timings must branch: {} runs", out.runs);
    }

    #[test]
    fn group_commit_crash_exploration_never_loses_externalized_writes() {
        // Writer-side group commit: the fsync rides the outgoing
        // broadcast ([`Dsm::send`]'s externalization barrier), so by
        // the time any peer can see a write it is durable, and a crash
        // of the *writer* at any explored step must replay every acked
        // write — same shape as the per-write-sync headline test, but
        // with the sync deferred.
        let out = explore_with(
            ExploreOptions::new().allow_deadlock(true).max_runs(50_000),
            || {
                let mut sys = System::new(2, Mode::Causal)
                    .record(true)
                    .sim_config(racing_config())
                    .reliable(true)
                    .durability(Some(mc_proto::DurabilityPolicy::new(64).with_group_commit(true)))
                    .explore_faults(mc_sim::FaultBudget::new().crash_recover_of(mc_sim::NodeId(0)));
                sys.spawn(|ctx| {
                    ctx.write(Loc(0), 1);
                    ctx.write(Loc(0), 2);
                    ctx.write(Loc(1), 1);
                });
                sys.spawn(|ctx| {
                    ctx.await_eq(Loc(1), 1);
                    let _ = ctx.read_causal(Loc(0));
                });
                sys
            },
            |o| {
                o.verify().map_err(|e| e.to_string())?;
                let writer = o.dsm().replica(ProcId(0));
                if writer.applied[ProcId(0)] != 3 {
                    return Err(format!(
                        "externalized writes lost across recovery: writer replayed {} of 3",
                        writer.applied[ProcId(0)]
                    ));
                }
                if o.final_value(ProcId(1), Loc(0)) != Value::Int(2) {
                    return Err(format!(
                        "reader converged to {:?}, expected Int(2)",
                        o.final_value(ProcId(1), Loc(0))
                    ));
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.runs > 2, "recovery timings must branch: {} runs", out.runs);
    }

    #[test]
    fn group_commit_amortizes_fsyncs() {
        // The point of deferring the sync: one fsync call covers every
        // record staged since the last externalization. On the same
        // program, per-write durability pays one call per own-write
        // record; group commit must pay strictly fewer calls while
        // making the same records durable (none lost, none staged at
        // exit — the conservation law is checked by the kernel).
        fn fsyncs(group_commit: bool) -> (u64, u64) {
            let mut sys = System::new(2, Mode::Causal)
                .record(true)
                .durability(Some(
                    mc_proto::DurabilityPolicy::new(1024).with_group_commit(group_commit),
                ))
                .batching(Some(mc_proto::BatchPolicy::default()));
            sys.spawn(|ctx| {
                for i in 0..8 {
                    ctx.write(Loc(0), i);
                }
                ctx.write(Loc(1), 1);
            });
            sys.spawn(|ctx| {
                ctx.await_eq(Loc(1), 1);
            });
            let o = sys.run().unwrap();
            assert_eq!(o.metrics.wal.lost, 0);
            (o.metrics.wal.fsyncs, o.metrics.wal.appends)
        }
        let (per_write, appends) = fsyncs(false);
        let (grouped, grouped_appends) = fsyncs(true);
        assert_eq!(appends, grouped_appends, "same program, same log records");
        assert!(
            grouped < per_write,
            "group commit must amortize fsync calls: {grouped} grouped vs {per_write} per-write"
        );
    }

    #[test]
    fn batched_and_unbatched_crash_recovery_converge_identically() {
        // Satellite litmus: a crash can land between coalescing a batch
        // and flushing it. Whatever the batching policy, the *final*
        // convergence outcomes reachable across all explored crash
        // points must be identical — batching may reorder intermediate
        // visibility (batches apply atomically) but must never change
        // what the cluster settles on after recovery.
        use std::collections::BTreeSet;

        fn outcome_set(batch: Option<mc_proto::BatchPolicy>) -> BTreeSet<(i64, i64, i64, i64)> {
            let set = Mutex::new(BTreeSet::new());
            let out = explore_with(
                ExploreOptions::new().allow_deadlock(true).max_runs(50_000),
                move || {
                    let mut sys = System::new(2, Mode::Causal)
                        .record(true)
                        .sim_config(racing_config())
                        .reliable(true)
                        .batching(batch)
                        .durability(Some(mc_proto::DurabilityPolicy::new(2)))
                        .explore_faults(
                            mc_sim::FaultBudget::new().crash_recover_of(mc_sim::NodeId(1)),
                        );
                    sys.spawn(|ctx| {
                        ctx.write(Loc(0), 7);
                        ctx.write(Loc(1), 8);
                    });
                    sys.spawn(|ctx| {
                        ctx.await_eq(Loc(1), 8);
                    });
                    sys
                },
                |o| {
                    let val = |p: u32, l: u32| {
                        o.final_value(ProcId(p), Loc(l)).as_i64().expect("int values only")
                    };
                    set.lock().unwrap().insert((val(0, 0), val(0, 1), val(1, 0), val(1, 1)));
                    o.verify().map_err(|e| e.to_string())
                },
            )
            .unwrap();
            assert!(out.complete);
            set.into_inner().unwrap()
        }

        let unbatched = outcome_set(None);
        let batched = outcome_set(Some(mc_proto::BatchPolicy::immediate()));
        assert!(
            unbatched.contains(&(7, 8, 7, 8)),
            "full convergence must be reachable: {unbatched:?}"
        );
        assert_eq!(
            unbatched, batched,
            "batched recovery must settle on the same outcome set as unbatched"
        );
    }
}
