//! Table-driven coverage of `mc-check`'s documented exit-code contract:
//! 0 = clean (or replay not reproduced), 1 = violation found (or replay
//! reproduced), 2 = malformed input / usage error. Both the checker mode
//! and `--replay` mode are exercised, including an artifact truncated
//! mid-write (the spec section cut off), which must be rejected as
//! malformed rather than silently replayed as a shorter program.

use std::process::Command;

use mixed_consistency::model::{litmus, trace};
use mixed_consistency::repro::FailureKind;
use mixed_consistency::{Loc, Mode, ModelSpec, ProcModel, ProgSpec, ReadLabel, Repro, SpecOp};

/// A well-formed replay artifact for a correct program: parses cleanly,
/// does not reproduce any failure.
fn passing_artifact() -> String {
    Repro {
        kind: FailureKind::Verify,
        reason: "synthetic".to_string(),
        allow_deadlock: false,
        budget: None,
        trace: Vec::new(),
        disks: Vec::new(),
        spec: ProgSpec::new(Mode::Causal)
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }]),
    }
    .to_text()
}

/// A lattice-parameterized replay artifact: the spec pins each process
/// to a named lattice point (`models causal slow`), so the replay is
/// verified by the declarative lattice validator under exactly that
/// assignment. The program is consistent, so the failure is not
/// reproduced.
fn lattice_artifact() -> String {
    Repro {
        kind: FailureKind::Verify,
        reason: "synthetic lattice case".to_string(),
        allow_deadlock: false,
        budget: None,
        trace: Vec::new(),
        disks: Vec::new(),
        spec: ProgSpec::new(Mode::Mixed)
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }])
            .models(vec![ProcModel::Fixed(ModelSpec::CAUSAL), ProcModel::Fixed(ModelSpec::SLOW)]),
    }
    .to_text()
}

/// A sharded replay artifact: the spec partitions the address space
/// (`shards 2`) with an explicit interest override, so the replay runs
/// the partial-replication protocol and is judged per shard. The
/// program is consistent, so the failure is not reproduced.
fn sharded_artifact() -> String {
    Repro {
        kind: FailureKind::Verify,
        reason: "synthetic sharded case".to_string(),
        allow_deadlock: false,
        budget: None,
        trace: Vec::new(),
        disks: Vec::new(),
        spec: ProgSpec::new(Mode::Causal)
            .sharded(2)
            .interest(1, vec![0])
            .proc(vec![SpecOp::Write { loc: Loc(1), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(1), label: ReadLabel::Causal }]),
    }
    .to_text()
}

/// A recovery repro: a durable single-process program that deadlocks
/// (awaits a value nobody writes), carrying a crash-recover fault budget
/// and the pre-crash durable disk image of replica 0.
fn recovery_artifact() -> String {
    let mut disk = mixed_consistency::MemDisk::new();
    disk.append(&mc_proto::WalRecord::Incarnation { incarnation: 1 }.encode());
    disk.sync();
    Repro {
        kind: FailureKind::Run,
        reason: "deadlock after recovery".to_string(),
        allow_deadlock: false,
        budget: Some(
            mixed_consistency::FaultBudget::new().crash_recover_of(mixed_consistency::NodeId(0)),
        ),
        trace: Vec::new(),
        disks: vec![(0, disk.image())],
        spec: ProgSpec::new(Mode::Pram)
            .durable(2)
            .proc(vec![SpecOp::Await { loc: Loc(0), value: 1 }]),
    }
    .to_text()
}

/// The same artifact cut off just before its spec section — what a
/// crashed writer or a truncated download leaves behind.
fn truncated_artifact() -> String {
    let full = passing_artifact();
    let spec_starts = full.find("\nmode").expect("artifact has a spec section");
    full[..spec_starts + 1].to_string()
}

struct Case {
    name: &'static str,
    /// Artifact content, written to a temp file; `None` points mc-check
    /// at a nonexistent path instead.
    content: Option<String>,
    flags: &'static [&'static str],
    expect: i32,
    /// Substring the combined stdout+stderr must contain.
    output_contains: &'static str,
}

#[test]
fn mc_check_exit_codes_cover_the_documented_contract() {
    let cases = [
        Case {
            name: "consistent history exits 0",
            content: Some(trace::to_text(&litmus::causality_chain(ReadLabel::Pram))),
            flags: &["--pram"],
            expect: 0,
            output_contains: "ok",
        },
        Case {
            name: "violating history exits 1",
            content: Some(trace::to_text(&litmus::fifo_violation())),
            flags: &["--pram"],
            expect: 1,
            output_contains: "VIOLATION",
        },
        Case {
            name: "replay of a passing artifact exits 0",
            content: Some(passing_artifact()),
            flags: &["--replay"],
            expect: 0,
            output_contains: "not reproduced",
        },
        Case {
            name: "replay of a lattice artifact exits 0",
            content: Some(lattice_artifact()),
            flags: &["--replay"],
            expect: 0,
            output_contains: "not reproduced",
        },
        Case {
            name: "lattice artifact with unknown model name exits 2",
            content: Some(lattice_artifact().replace("models causal slow", "models causal banana")),
            flags: &["--replay"],
            expect: 2,
            output_contains: "unknown model name",
        },
        Case {
            name: "lattice artifact with duplicate models line exits 2",
            content: Some(
                lattice_artifact()
                    .replace("models causal slow", "models causal slow\nmodels causal slow"),
            ),
            flags: &["--replay"],
            expect: 2,
            output_contains: "duplicate `models` line",
        },
        Case {
            name: "replay of a sharded artifact exits 0",
            content: Some(sharded_artifact()),
            flags: &["--replay"],
            expect: 0,
            output_contains: "not reproduced",
        },
        Case {
            name: "sharded artifact with bad shard count exits 2",
            content: Some(sharded_artifact().replace("shards 2", "shards banana")),
            flags: &["--replay"],
            expect: 2,
            output_contains: "bad shard count",
        },
        Case {
            name: "sharded artifact with out-of-range interest exits 2",
            content: Some(sharded_artifact().replace("interest 1 0", "interest 1 9")),
            flags: &["--replay"],
            expect: 2,
            output_contains: "names shard 9",
        },
        Case {
            name: "sharded artifact with bad interest token exits 2",
            content: Some(sharded_artifact().replace("interest 1 0", "interest 1 zap")),
            flags: &["--replay"],
            expect: 2,
            output_contains: "bad shard id",
        },
        Case {
            name: "recovery repro that reproduces exits 1",
            content: Some(recovery_artifact()),
            flags: &["--replay"],
            expect: 1,
            output_contains: "REPRODUCED",
        },
        Case {
            name: "recovery repro with garbage disk hex exits 2",
            content: Some(recovery_artifact().replace("disk 0 ", "disk 0 zz")),
            flags: &["--replay"],
            expect: 2,
            output_contains: "bad disk hex",
        },
        Case {
            name: "garbage artifact exits 2",
            content: Some("kind banana\nmode pram\nproc 0\n".to_string()),
            flags: &["--replay"],
            expect: 2,
            output_contains: "unknown failure kind",
        },
        Case {
            name: "truncated artifact exits 2",
            content: Some(truncated_artifact()),
            flags: &["--replay"],
            expect: 2,
            output_contains: "",
        },
        Case {
            name: "garbage history exits 2",
            content: Some("procs banana\n".to_string()),
            flags: &[],
            expect: 2,
            output_contains: "",
        },
        Case {
            name: "unreadable file exits 2",
            content: None,
            flags: &["--replay"],
            expect: 2,
            output_contains: "cannot read",
        },
        Case {
            name: "unknown flag exits 2",
            content: Some(passing_artifact()),
            flags: &["--frobnicate"],
            expect: 2,
            output_contains: "usage",
        },
    ];

    for (i, case) in cases.iter().enumerate() {
        let path = std::env::temp_dir().join(format!("mc-exitcode-{}-{i}", std::process::id()));
        match &case.content {
            Some(text) => std::fs::write(&path, text).expect("write artifact"),
            None => {
                let _ = std::fs::remove_file(&path);
            }
        }
        let out = Command::new(env!("CARGO_BIN_EXE_mc-check"))
            .arg(&path)
            .args(case.flags)
            .output()
            .expect("run mc-check");
        let combined = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.status.code(),
            Some(case.expect),
            "{}: expected exit {}, got {:?}\noutput: {combined}",
            case.name,
            case.expect,
            out.status.code()
        );
        assert!(
            combined.contains(case.output_contains),
            "{}: output missing {:?}: {combined}",
            case.name,
            case.output_contains
        );
        let _ = std::fs::remove_file(&path);
    }
}
