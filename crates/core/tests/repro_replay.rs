//! End-to-end acceptance test for the counterexample pipeline: a seeded
//! fault-plan violation is explored, minimized into a repro artifact,
//! and the artifact must replay deterministically through the real
//! `mc-check --replay` binary with the documented exit codes (0 = not
//! reproduced, 1 = reproduced, 2 = malformed input).

use std::path::PathBuf;
use std::process::{Command, Output};

use mixed_consistency::explore::ExploreOptions;
use mixed_consistency::repro::{find_and_minimize, FailureKind};
use mixed_consistency::{FaultBudget, Loc, Mode, ProgSpec, ReadLabel, Repro, SpecOp};

/// A PRAM store chain whose middle update may be dropped: the reader
/// observes the flag but misses the dropped write — a Definition 3
/// violation reachable only through fault nondeterminism.
fn dropped_update_spec() -> ProgSpec {
    ProgSpec::new(Mode::Pram)
        .proc(vec![
            SpecOp::Write { loc: Loc(0), value: 1 },
            SpecOp::Write { loc: Loc(0), value: 2 },
            SpecOp::Write { loc: Loc(1), value: 1 },
        ])
        .proc(vec![
            SpecOp::Await { loc: Loc(1), value: 1 },
            SpecOp::Read { loc: Loc(0), label: ReadLabel::Pram },
        ])
}

fn write_artifact(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mc-repro-{}-{name}", std::process::id()));
    std::fs::write(&path, text).expect("write artifact");
    path
}

fn mc_check_replay(path: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mc-check"))
        .arg(path)
        .arg("--replay")
        .output()
        .expect("run mc-check")
}

#[test]
fn minimized_fault_violation_reproduces_through_mc_check() {
    let budget = FaultBudget::new().drops(1);
    let options = ExploreOptions::new().allow_deadlock(true).max_runs(50_000);
    let repro = find_and_minimize(&dropped_update_spec(), Some(&budget), &options)
        .expect("a dropped update violates PRAM consistency");
    assert_eq!(repro.kind, FailureKind::Verify);

    let path = write_artifact("violation.txt", &repro.to_text());
    let first = mc_check_replay(&path);
    assert_eq!(
        first.status.code(),
        Some(1),
        "reproduced failures exit 1\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(String::from_utf8_lossy(&first.stdout).contains("REPRODUCED"));

    // Determinism: a second replay of the same artifact behaves
    // identically, byte for byte.
    let second = mc_check_replay(&path);
    assert_eq!(second.status.code(), Some(1));
    assert_eq!(first.stdout, second.stdout);
    let _ = std::fs::remove_file(path);
}

#[test]
fn passing_artifact_exits_zero() {
    // A correct program under the same format: the recorded failure no
    // longer reproduces, so replay reports success.
    let repro = Repro {
        kind: FailureKind::Verify,
        reason: "synthetic".to_string(),
        allow_deadlock: false,
        budget: None,
        trace: Vec::new(),
        disks: Vec::new(),
        spec: ProgSpec::new(Mode::Causal)
            .proc(vec![SpecOp::Write { loc: Loc(0), value: 1 }])
            .proc(vec![SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal }]),
    };
    let path = write_artifact("passing.txt", &repro.to_text());
    let out = mc_check_replay(&path);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not reproduced"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn malformed_artifact_exits_two() {
    let path = write_artifact("garbage.txt", "kind banana\nmode pram\nproc 0\n");
    let out = mc_check_replay(&path);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(path);
}
