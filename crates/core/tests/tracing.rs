//! Cross-layer test of the structured tracing pipeline: a faulty
//! session-layer run traced through the public `System` API must yield
//! vclock-annotated message spans, fault instants, and retransmission
//! spans — deterministically, byte-for-byte across reruns — while an
//! untraced run of the same program keeps identical metrics and no trace.

use mixed_consistency::{FaultPlan, Loc, Mode, Outcome, RunError, System, Value};

fn traced_run(trace: bool) -> Result<Outcome, RunError> {
    let plan = FaultPlan::new().drop_rate(0.2).duplicate_rate(0.1);
    let mut sys = System::new(3, Mode::Causal).seed(13).trace(trace).faults(plan).reliable(true);
    sys.spawn(|ctx| {
        for v in 1..=8i64 {
            ctx.write(Loc(0), v);
        }
        ctx.write(Loc(1), 1);
    });
    for _ in 0..2 {
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), 1);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(8));
        });
    }
    sys.run()
}

#[test]
fn traced_faulty_run_exports_vclock_spans_deterministically() {
    let outcome = traced_run(true).expect("session layer masks the faults");
    let trace = outcome.trace.as_ref().expect("tracing enabled");

    let vclock_spans = trace
        .events()
        .filter(|ev| ev.args.iter().any(|(k, v)| *k == "vclock" && v.starts_with('⟨')))
        .count();
    let retransmits = trace.events().filter(|ev| ev.name == "retransmit").count();
    let faults = trace.events().filter(|ev| ev.cat == "fault").count();
    assert!(vclock_spans > 0, "causal update spans carry vector timestamps");
    assert!(retransmits > 0, "dropped updates must be retransmitted");
    assert!(faults as u64 >= outcome.metrics.faults.dropped, "every drop is traced");
    assert!(outcome.metrics.rto_hist.count() > 0, "retransmissions feed the RTO histogram");
    assert!(outcome.metrics.delivery_hist.count() > 0);

    // Same seed, same program → the exported artifacts are byte-identical.
    let again = traced_run(true).expect("deterministic");
    let tr2 = again.trace.as_ref().expect("tracing enabled");
    assert_eq!(trace.to_jsonl(), tr2.to_jsonl());
    assert_eq!(trace.to_chrome_trace(), tr2.to_chrome_trace());

    // Tracing off: no trace, identical simulation.
    let quiet = traced_run(false).expect("identical run");
    assert!(quiet.trace.is_none());
    assert_eq!(quiet.metrics.finish_time, outcome.metrics.finish_time);
    assert_eq!(quiet.metrics.messages, outcome.metrics.messages);
    assert_eq!(quiet.metrics.delivered, outcome.metrics.delivered);
}
