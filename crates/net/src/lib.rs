//! # mc-net — the mixed-consistency protocols over real TCP
//!
//! The third executor of the reproduction, completing the ladder:
//! deterministic simulation (`mc-sim`), real threads over channels
//! (`mc-live`), and — here — real processes over an async TCP runtime.
//! **The protocol state machines and the node mains are the same
//! code**: `mc-net` plugs a [`TcpTransport`] into `mc-live`'s
//! [`Transport`](mc_live::Transport) seam and feeds decoded frames into
//! the identical `run_proc_node`/`run_manager_node` loops, so a green
//! run here demonstrates the protocols survive genuine networking —
//! partial writes, reconnects, kernel buffering — not just genuine
//! concurrency.
//!
//! The wire format is `mc_proto::wire`: length-prefixed binary frames
//! whose encoded size is, byte for byte, the `Msg::wire_bytes` the
//! analytical model charges. The hot paths are zero-copy in steady
//! state — frames encode into per-link reusable arenas and decode as
//! views of per-connection receive buffers (see `transport`).
//!
//! ```no_run
//! use mc_model::{check, Loc, Value};
//! use mc_net::NetSystem;
//! use mc_proto::Mode;
//!
//! let mut sys = NetSystem::new(2, Mode::Mixed).record(true);
//! sys.spawn(|ctx| {
//!     ctx.write(Loc(0), 42);
//!     ctx.write(Loc(1), 1);
//! });
//! sys.spawn(|ctx| {
//!     ctx.await_eq(Loc(1), Value::Int(1));
//!     assert_eq!(ctx.read_pram(Loc(0)), Value::Int(42));
//! });
//! let outcome = sys.run().expect("cluster runs");
//! check::check_mixed(&outcome.history.unwrap()).expect("TCP, still mixed consistent");
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod transport;
pub mod workload;

pub use cluster::{run_cluster_node, NetSystem, NodeOpts, NodeOutcome};
pub use transport::{bind_reusable, spawn_listener, Inbound, TcpTransport, TcpTransportBuilder};
pub use workload::Workload;
