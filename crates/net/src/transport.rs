//! The TCP transport: async writer/reader tasks beneath the
//! transport-agnostic node mains of `mc-live`.
//!
//! # Topology
//!
//! One TCP connection per *directed* link: the sending side dials, the
//! receiving side accepts. A freshly dialled connection opens with a
//! [`Control::Hello`] frame naming the sending node; every protocol
//! frame after it is attributed to that node (the session layer needs
//! the link identity for its per-link sequence numbers).
//!
//! # Zero-copy hot path
//!
//! Each link owns an *encode arena* (a [`BytesMut`]): `deliver` encodes
//! the frame there and splits it off as a [`Bytes`] view — no copy, no
//! fresh allocation. The frame travels through a bounded queue to the
//! link's writer task; once written and dropped, the arena's next
//! `reserve` reclaims the region in place (`bytes::pool_stats` counts
//! the reuses). The reader side mirrors it: one receive buffer per
//! connection, socket reads land in its spare capacity, and
//! [`next_frame`] carves complete frames off the front as views.
//!
//! # Reconnection and fencing
//!
//! A writer whose connection breaks redials with exponential backoff,
//! re-sends `Hello`, and retries the frame the failure interrupted (a
//! torn partial frame dies with the old connection — each connection is
//! a fresh framing context). A frame the peer received twice this way
//! is deduplicated by the session layer's sequence numbers, and a
//! *reborn* peer (crash + restart) is fenced by the session epochs that
//! `run_proc_node` derives from the replica incarnation — the same
//! machinery the lossy in-process executor exercises.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::Sender;
use mc_live::{NodeId, Transport, Wire};
use mc_proto::wire::{decode_frame, encode_control, encode_frame, next_frame, Control, Frame};
use mc_proto::Msg;
use tokio::net::{TcpListener, TcpStream};
use tokio::runtime::Handle;
use tokio::sync::mpsc;

fn trace() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("MC_NET_TRACE").is_some())
}

/// Outstanding frames per directed link before `deliver` blocks the
/// sending protocol thread — the backpressure point.
pub const SEND_QUEUE: usize = 1024;
/// Initial redial backoff; doubles per failed attempt.
const BACKOFF_MIN: Duration = Duration::from_millis(1);
/// Backoff ceiling — a restarted peer is redialled at least this often.
const BACKOFF_MAX: Duration = Duration::from_millis(50);
/// Spare receive capacity kept ahead of each socket read, and the
/// initial encode-arena capacity.
const BUF_CHUNK: usize = 64 * 1024;

/// One directed link: the shared encode arena and the queue to the
/// writer task that owns the socket.
struct Link {
    arena: Mutex<BytesMut>,
    tx: mpsc::Sender<Bytes>,
}

impl Link {
    /// Encodes one frame into the arena and queues it, blocking when
    /// the writer is `SEND_QUEUE` frames behind. Returns `false` only
    /// if the writer task is gone (transport torn down).
    fn push(&self, encode: impl FnOnce(&mut BytesMut)) -> bool {
        let frame = {
            let mut arena = self.arena.lock().expect("arena healthy");
            debug_assert!(arena.is_empty(), "arena fully split between frames");
            encode(&mut arena);
            let len = arena.len();
            arena.split_to(len)
        };
        self.tx.blocking_send(frame).is_ok()
    }
}

/// Builder for a [`TcpTransport`]: declare every outgoing link (a
/// writer task is spawned per link) and every locally-hosted node's
/// inbox, then freeze.
pub struct TcpTransportBuilder {
    nnodes: usize,
    links: Vec<Option<Link>>,
    local: Vec<Option<Sender<Wire>>>,
}

impl TcpTransportBuilder {
    /// A transport over a topology of `nnodes` nodes with no links yet.
    pub fn new(nnodes: usize) -> TcpTransportBuilder {
        TcpTransportBuilder {
            nnodes,
            links: (0..nnodes * nnodes).map(|_| None).collect(),
            local: (0..nnodes).map(|_| None).collect(),
        }
    }

    /// Adds the directed link `from -> to`, dialled to `addr` by a
    /// writer task on `handle`'s runtime.
    pub fn link(&mut self, from: NodeId, to: NodeId, addr: SocketAddr, handle: &Handle) {
        assert_ne!(from, to, "nodes do not dial themselves");
        let (tx, rx) = mpsc::channel(SEND_QUEUE);
        handle.spawn(write_link(from as u32, addr, rx));
        self.links[from * self.nnodes + to] =
            Some(Link { arena: Mutex::new(BytesMut::with_capacity(BUF_CHUNK)), tx });
    }

    /// Registers the inbox of a node hosted in this process: the
    /// shutdown control plane bypasses TCP for it.
    pub fn local(&mut self, node: NodeId, inbox: Sender<Wire>) {
        self.local[node] = Some(inbox);
    }

    /// Freezes the topology.
    pub fn build(self) -> TcpTransport {
        TcpTransport { nnodes: self.nnodes, links: self.links, local: self.local }
    }
}

/// [`Transport`] over per-link TCP connections. In-process clusters
/// populate the full link mesh; a multi-process cluster node populates
/// only its own outgoing row.
pub struct TcpTransport {
    nnodes: usize,
    links: Vec<Option<Link>>,
    local: Vec<Option<Sender<Wire>>>,
}

impl TcpTransport {
    fn link(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.links[from * self.nnodes + to].as_ref()
    }

    /// Sends a control frame on the `from -> to` link (coordination:
    /// `Done` upstream to the coordinator, `Shutdown` downstream from
    /// it). Returns `false` if no such link exists.
    pub fn send_control(&self, from: NodeId, to: NodeId, ctrl: Control) -> bool {
        match self.link(from, to) {
            Some(l) => l.push(|b| encode_control(b, &ctrl)),
            None => false,
        }
    }

    /// `true` once every outbound queue from `from` has been fully
    /// drained by its writer task. Dropping the runtime before this
    /// holds can discard queued frames — a coordinator that broadcasts
    /// `Shutdown` and immediately tears down strands its peers waiting
    /// for a frame that never reached a socket.
    pub fn outbound_quiesced(&self, from: NodeId) -> bool {
        (0..self.nnodes).all(|to| match self.link(from, to) {
            Some(l) => l.tx.capacity() == l.tx.max_capacity(),
            None => true,
        })
    }
}

impl Transport for TcpTransport {
    fn deliver(&self, from: NodeId, to: NodeId, msg: Msg) -> bool {
        if let Some(l) = self.link(from, to) {
            return l.push(|b| encode_frame(b, &msg));
        }
        // No TCP link: the destination must be hosted here.
        match &self.local[to] {
            Some(tx) => tx.send(Wire::Proto { from, msg }).is_ok(),
            None => false,
        }
    }

    fn shutdown(&self, to: NodeId) {
        if let Some(tx) = &self.local[to] {
            let _ = tx.send(Wire::Shutdown);
            return;
        }
        // Remote node: any link we own toward it carries the control
        // frame (a cluster node owns exactly one row of links).
        for from in 0..self.nnodes {
            if let Some(l) = self.link(from, to) {
                l.push(|b| encode_control(b, &Control::Shutdown));
                return;
            }
        }
    }
}

/// The writer task of one directed link: dial (with backoff), announce
/// `Hello`, then drain the frame queue into the socket, redialling on
/// any error with the interrupted frame carried over.
async fn write_link(me: u32, addr: SocketAddr, mut rx: mpsc::Receiver<Bytes>) {
    let mut pending: Option<Bytes> = None;
    let mut hello = BytesMut::with_capacity(64);
    loop {
        let mut backoff = BACKOFF_MIN;
        let mut stream = loop {
            match TcpStream::connect(addr).await {
                Ok(s) => break s,
                Err(_) => {
                    tokio::time::sleep(backoff).await;
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        };
        let _ = stream.set_nodelay(true);
        encode_control(&mut hello, &Control::Hello { node: me });
        let greeting = {
            let len = hello.len();
            hello.split_to(len)
        };
        if stream.write_all(&greeting).await.is_err() {
            if trace() {
                eprintln!("NETTRACE write_link {me}->{addr}: greeting failed, redial");
            }
            continue;
        }
        if trace() {
            eprintln!("NETTRACE write_link {me}->{addr}: connected");
        }
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => match rx.recv().await {
                    Some(f) => f,
                    None => return,
                },
            };
            if stream.write_all(&frame).await.is_err() {
                if trace() {
                    eprintln!("NETTRACE write_link {me}->{addr}: write failed, redial");
                }
                // The torn suffix dies with this connection; resend the
                // whole frame after redialling. The duplicate the peer
                // may see is absorbed by session sequencing.
                pending = Some(frame);
                break;
            }
        }
    }
}

/// Where a listener delivers what its connections carry: protocol
/// frames into the hosted node's inbox, `Done` control events to the
/// hosting coordinator, plus a count of enqueued protocol messages (the
/// in-process coordinator's quiescence signal).
#[derive(Clone)]
pub struct Inbound {
    /// The hosted node's inbox.
    pub inbox: Sender<Wire>,
    /// Control events (`Done`) surfaced to the coordinator.
    pub events: Sender<Control>,
    /// Protocol messages enqueued so far across this listener's
    /// connections.
    pub delivered: Arc<AtomicU64>,
}

/// Spawns the accept loop for one node's listening socket on `handle`'s
/// runtime; each accepted connection gets its own reader task.
pub fn spawn_listener(listener: std::net::TcpListener, inbound: Inbound, handle: &Handle) {
    let handle2 = handle.clone();
    handle.spawn(async move {
        let Ok(listener) = TcpListener::from_std(listener) else { return };
        loop {
            match listener.accept().await {
                Ok((stream, _)) => {
                    handle2.spawn(read_link(stream, inbound.clone()));
                }
                Err(_) => return,
            }
        }
    });
}

/// The reader task of one accepted connection: socket reads land in the
/// spare capacity of a single receive buffer, complete frames are carved
/// off the front as views and decoded straight into inbox entries.
async fn read_link(mut stream: TcpStream, inbound: Inbound) {
    let _ = stream.set_nodelay(true);
    let mut buf = BytesMut::with_capacity(BUF_CHUNK);
    // The dialler's Hello names the sending node; a protocol frame
    // before it is a framing error and drops the connection.
    let mut from: Option<NodeId> = None;
    loop {
        buf.reserve(BUF_CHUNK);
        let n = match stream.read(buf.spare_mut()).await {
            Ok(0) | Err(_) => {
                if trace() {
                    eprintln!("NETTRACE read_link from={from:?}: socket closed");
                }
                return;
            }
            Ok(n) => n,
        };
        buf.advance_written(n);
        while let Some(body) = next_frame(&mut buf) {
            match decode_frame(&body) {
                Ok(Frame::Msg(msg)) => {
                    let Some(f) = from else { return };
                    if inbound.inbox.send(Wire::Proto { from: f, msg }).is_err() {
                        // Node exited (shutdown); the link is done.
                        return;
                    }
                    inbound.delivered.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Frame::Control(Control::Hello { node })) => from = Some(node as usize),
                Ok(Frame::Control(Control::Shutdown)) => {
                    let _ = inbound.inbox.send(Wire::Shutdown);
                }
                Ok(Frame::Control(done @ Control::Done { .. })) => {
                    let _ = inbound.events.send(done);
                }
                Err(e) => {
                    eprintln!("mc-net: dropping connection on undecodable frame: {e}");
                    return;
                }
            }
        }
    }
}

/// Binds a loopback listener on `port` with `SO_REUSEADDR`, so a node
/// reborn after `kill -9` can reclaim its address while the dead
/// incarnation's connections linger in `TIME_WAIT`. (`std` exposes no
/// socket options pre-bind, hence the raw calls.)
///
/// # Errors
///
/// Any failing socket call, as an `io::Error`.
#[cfg(unix)]
pub fn bind_reusable(port: u16) -> std::io::Result<std::net::TcpListener> {
    use std::os::fd::{FromRawFd, RawFd};

    // Minimal FFI: libc is not a workspace dependency.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    unsafe {
        let fd: RawFd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let guard = |fd: RawFd, r: i32| {
            if r < 0 {
                let e = std::io::Error::last_os_error();
                close(fd);
                Err(e)
            } else {
                Ok(())
            }
        };
        let one: u32 = 1;
        guard(fd, setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4))?;
        let addr = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: u32::from_be_bytes([127, 0, 0, 1]).to_be(),
            sin_zero: [0; 8],
        };
        guard(fd, bind(fd, &addr, std::mem::size_of::<SockaddrIn>() as u32))?;
        guard(fd, listen(fd, 128))?;
        Ok(std::net::TcpListener::from_raw_fd(fd))
    }
}

/// Fallback without the `SO_REUSEADDR` fast-rebind (non-unix).
#[cfg(not(unix))]
pub fn bind_reusable(port: u16) -> std::io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind(("127.0.0.1", port))
}
