//! Canonical cluster workloads, shared by the `mc-cluster` binary, the
//! kill-smoke harness, and the saturation benchmarks.
//!
//! Every workload body *awaits the convergence it claims* before
//! returning: the coordinator broadcasts shutdown once all bodies have
//! finished, so anything a body did not wait for is not guaranteed to
//! have arrived anywhere.

use mc_live::LiveCtx;
use mc_model::{Loc, Value};

/// A named per-process program over `nprocs` processes.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// Each process writes `writes` increasing values to its own
    /// location, then awaits its ring successor's last value — the same
    /// shape as the benchmark suite's ring workload.
    Ring {
        /// Writes per process.
        writes: u32,
    },
    /// Each process writes `writes` increasing values to its own
    /// location, then awaits *every* peer's last value (all-to-all
    /// convergence — the shape the kill-smoke harness storms with).
    Storm {
        /// Writes per process.
        writes: u32,
    },
}

impl Workload {
    /// Parses `ring:N` / `storm:N`.
    ///
    /// # Errors
    ///
    /// A usage string for anything else.
    pub fn parse(s: &str) -> Result<Workload, String> {
        let (name, n) = s.split_once(':').ok_or("workload must be NAME:WRITES")?;
        let writes: u32 = n.parse().map_err(|_| format!("bad write count {n:?}"))?;
        match name {
            "ring" => Ok(Workload::Ring { writes }),
            "storm" => Ok(Workload::Storm { writes }),
            other => Err(format!("unknown workload {other:?} (ring|storm)")),
        }
    }

    /// The body process `p` of `nprocs` runs.
    pub fn body(self, p: u32, nprocs: usize) -> impl FnOnce(&mut LiveCtx) + Send + 'static {
        move |ctx: &mut LiveCtx| match self {
            Workload::Ring { writes } => {
                for i in 1..=writes {
                    ctx.write(Loc(p), i as i64);
                }
                let next = (p + 1) % nprocs as u32;
                ctx.await_eq(Loc(next), Value::Int(writes as i64));
            }
            Workload::Storm { writes } => {
                for i in 1..=writes {
                    ctx.write(Loc(p), i as i64);
                }
                for q in 0..nprocs as u32 {
                    if q != p {
                        ctx.await_eq(Loc(q), Value::Int(writes as i64));
                    }
                }
            }
        }
    }
}
