//! Cluster assembly: the same node mains as the threaded executor,
//! wired over TCP.
//!
//! Two shapes share all the plumbing:
//!
//! - [`NetSystem`] — an *in-process* cluster: every node is a thread of
//!   this process, but every protocol message crosses a real loopback
//!   TCP connection (port-0 listeners, full link mesh). This is the
//!   drop-in TCP twin of `mc_live::LiveSystem` — same builder surface,
//!   same [`LiveOutcome`] — used by the litmus tests and the saturation
//!   benchmarks.
//! - [`run_cluster_node`] — *one node of a multi-process* cluster: used
//!   by the `mc-cluster` binary, where every node is its own OS process
//!   listening on `base_port + node`. Node 0 doubles as the
//!   coordinator: peers report `Done` control frames to it, and it
//!   broadcasts `Shutdown` once every process has finished.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use mc_live::{
    run_manager_node, run_proc_node, LiveCtx, LiveError, LiveOutcome, Net, NodeConfig, Wire,
};
use mc_model::{HistoryBuilder, ProcId};
use mc_proto::wire::Control;
use mc_proto::{BatchPolicy, DsmConfig, DurabilityPolicy, Manager, Mode, Replica, ShardConfig};
use tokio::runtime::{Handle, Runtime};

use crate::transport::{spawn_listener, Inbound, TcpTransportBuilder};
use mc_live::WalCounters;

/// How long a settled in-process cluster may take to drain its last
/// in-flight frames before shutdown proceeds anyway.
const QUIESCE_LIMIT: Duration = Duration::from_secs(10);
/// Multi-process grace between the last `Done` and the `Shutdown`
/// broadcast (covers acks still in flight; data convergence is enforced
/// by the workloads' awaits before they signal done).
const SHUTDOWN_GRACE: Duration = Duration::from_millis(50);

/// Builder for an in-process TCP cluster. Mirrors the
/// `mc_live::LiveSystem` surface; `run` produces the same
/// [`LiveOutcome`], so everything downstream (history checking, final
/// values, counters) is interchangeable between the two executors.
pub struct NetSystem {
    cfg: DsmConfig,
    record: bool,
    timeout: Duration,
    durability_dir: Option<PathBuf>,
    workers: usize,
    #[allow(clippy::type_complexity)]
    procs: Vec<Box<dyn FnOnce(&mut LiveCtx) + Send + 'static>>,
}

impl NetSystem {
    /// A cluster of `nprocs` processes on memory `mode`.
    pub fn new(nprocs: usize, mode: Mode) -> NetSystem {
        NetSystem {
            cfg: DsmConfig::new(nprocs, mode),
            record: false,
            timeout: Duration::from_secs(10),
            durability_dir: None,
            workers: 4,
            procs: Vec::new(),
        }
    }

    /// Enables the reliable-delivery session layer on every node.
    pub fn reliable(mut self, reliable: bool) -> Self {
        self.cfg.reliable = reliable;
        self
    }

    /// Enables (or disables) batched update propagation.
    pub fn batching(mut self, batch: Option<BatchPolicy>) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Interest-based sharding, as in `LiveSystem::sharding`.
    pub fn sharding(mut self, sharding: Option<ShardConfig>) -> Self {
        self.cfg = self.cfg.with_sharding(sharding);
        self
    }

    /// Presizes every replica's store.
    pub fn locations(mut self, locations: usize) -> Self {
        self.cfg.locations = locations;
        self
    }

    /// Assigns one consistency-lattice point per process.
    pub fn models(mut self, models: mc_model::ModelAssignment) -> Self {
        self.cfg = self.cfg.with_models(models);
        self
    }

    /// Distributes managers over `shards` nodes.
    pub fn manager_shards(mut self, shards: usize) -> Self {
        self.cfg = self.cfg.with_manager_shards(shards);
        self
    }

    /// Enables durable replicas under `dir` (see
    /// `LiveSystem::durability`).
    pub fn durability(mut self, policy: DurabilityPolicy, dir: impl Into<PathBuf>) -> Self {
        self.cfg.durability = Some(policy);
        self.durability_dir = Some(dir.into());
        self
    }

    /// Enables history recording.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Sets the blocked-operation timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sizes the async runtime's worker pool (default 4).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Adds the next process.
    pub fn spawn<F>(&mut self, f: F) -> ProcId
    where
        F: FnOnce(&mut LiveCtx) + Send + 'static,
    {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Box::new(f));
        id
    }

    /// Runs all processes to completion, every message over loopback
    /// TCP.
    ///
    /// # Errors
    ///
    /// [`LiveError::ProcPanicked`] if any process panicked (including
    /// blocked-operation timeouts); [`LiveError::Malformed`] if the
    /// recorded history fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the spawned-process count does not match the
    /// configuration, or if loopback sockets cannot be bound.
    pub fn run(mut self) -> Result<LiveOutcome, LiveError> {
        assert_eq!(
            self.procs.len(),
            self.cfg.nprocs,
            "spawned {} processes but configured {}",
            self.procs.len(),
            self.cfg.nprocs
        );
        let cfg = self.cfg.clone();
        let nnodes = cfg.nnodes();
        let start = Instant::now();
        let rt = Runtime::with_workers(self.workers);
        let handle = rt.handle().clone();

        // One inbox and one port-0 loopback listener per node.
        let mut inbox_tx: Vec<Sender<Wire>> = Vec::with_capacity(nnodes);
        let mut inbox_rx: Vec<Receiver<Wire>> = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            let (tx, rx) = unbounded();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let delivered = Arc::new(AtomicU64::new(0));
        // Done travels on a local channel in-process; the listeners
        // still need an events sink for protocol completeness.
        let (ev_tx, _ev_rx) = unbounded::<Control>();
        let mut addrs = Vec::with_capacity(nnodes);
        for tx in &inbox_tx {
            let listener =
                std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
            addrs.push(listener.local_addr().expect("listener address"));
            let inbound =
                Inbound { inbox: tx.clone(), events: ev_tx.clone(), delivered: delivered.clone() };
            spawn_listener(listener, inbound, &handle);
        }

        // Full mesh: every ordered pair is its own dialled connection.
        let mut b = TcpTransportBuilder::new(nnodes);
        for (from, tx) in inbox_tx.iter().enumerate() {
            for (to, addr) in addrs.iter().enumerate() {
                if from != to {
                    b.link(from, to, *addr, &handle);
                }
            }
            b.local(from, tx.clone());
        }
        let net = Net::new(Arc::new(b.build()));
        let recorder = self.record.then(|| Arc::new(Mutex::new(HistoryBuilder::new(cfg.nprocs))));
        let walc = Arc::new(WalCounters::default());

        // Manager shard threads (the last nodes), then process threads —
        // the exact mains the threaded executor runs.
        let mut manager_handles = Vec::new();
        let mut rx_iter = inbox_rx.into_iter();
        let mut proc_rx: Vec<Receiver<Wire>> = Vec::new();
        for _ in 0..cfg.nprocs {
            proc_rx.push(rx_iter.next().expect("inbox per node"));
        }
        for (shard, rx) in rx_iter.enumerate() {
            let net = net.clone();
            let cfg = cfg.clone();
            let node = cfg.nprocs + shard;
            manager_handles.push(std::thread::spawn(move || run_manager_node(rx, net, cfg, node)));
        }
        let (done_tx, done_rx) = unbounded::<u32>();
        let mut proc_handles = Vec::new();
        for (i, f) in self.procs.drain(..).enumerate() {
            let rx = proc_rx.remove(0);
            let opts = NodeConfig {
                proc: ProcId(i as u32),
                cfg: cfg.clone(),
                timeout: self.timeout,
                durability_dir: self.durability_dir.clone(),
            };
            let net = net.clone();
            let recorder = recorder.clone();
            let done_tx = done_tx.clone();
            let walc = walc.clone();
            proc_handles.push(std::thread::spawn(move || {
                run_proc_node(opts, rx, net, walc, recorder, f, move || {
                    let _ = done_tx.send(i as u32);
                })
            }));
        }
        drop(done_tx);

        let mut finished = 0usize;
        while finished < proc_handles.len() {
            match done_rx.recv() {
                Ok(_) => finished += 1,
                Err(_) => break,
            }
        }
        // Unlike the in-process channels (where the coordinator's
        // Shutdown enqueues strictly after all data), the direct-inbox
        // shutdown could overtake frames still inside the TCP stack —
        // wait for every sent frame to reach its destination inbox
        // first. Acks generated while draining keep both counters
        // moving; they settle together.
        let quiesce_deadline = Instant::now() + QUIESCE_LIMIT;
        loop {
            let sent = net.messages();
            if delivered.load(Ordering::SeqCst) >= sent && net.messages() == sent {
                break;
            }
            if Instant::now() > quiesce_deadline {
                break; // proceed; any real loss surfaces in the checks
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        net.begin_shutdown(nnodes);

        let mut replicas = Vec::new();
        for (i, h) in proc_handles.into_iter().enumerate() {
            match h.join() {
                Ok(replica) => replicas.push(replica),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    return Err(LiveError::ProcPanicked { proc: ProcId(i as u32), message });
                }
            }
        }
        let mut managers: Vec<Manager> = manager_handles
            .into_iter()
            .map(|h| h.join().expect("manager threads do not panic"))
            .collect();
        let history = match recorder {
            None => None,
            Some(rec) => {
                let builder = Arc::try_unwrap(rec)
                    .expect("all recorder handles dropped")
                    .into_inner()
                    .expect("recorder healthy");
                Some(builder.build().map_err(LiveError::Malformed)?)
            }
        };
        let outcome = LiveOutcome::from_parts(
            history,
            walc.stats(),
            net.messages(),
            net.bytes(),
            start.elapsed(),
            replicas,
            managers.remove(0),
            cfg.mode,
        );
        drop(rt);
        Ok(outcome)
    }
}

/// Everything one node of a multi-process cluster needs to come up.
pub struct NodeOpts {
    /// This node's id (process nodes first, manager nodes after).
    pub node: mc_live::NodeId,
    /// The shared protocol configuration (identical across processes).
    pub cfg: DsmConfig,
    /// Node `i` listens on `127.0.0.1:base_port + i`.
    pub base_port: u16,
    /// Blocked-operation timeout.
    pub timeout: Duration,
    /// Durability root, as in `LiveSystem::durability`.
    pub durability_dir: Option<PathBuf>,
}

/// What a cluster node reports when it exits cleanly.
pub struct NodeOutcome {
    /// The final replica state (process nodes only).
    pub replica: Option<Replica>,
    /// The final manager state (manager nodes only).
    pub manager: Option<Manager>,
    /// Protocol messages this node sent.
    pub messages: u64,
    /// Modeled wire bytes this node sent.
    pub bytes: u64,
}

/// Runs one node of a multi-process cluster to completion on the
/// calling thread (plus the async I/O runtime and, on node 0, the
/// coordinator).
///
/// Node 0 is the coordinator: every process node reports a
/// [`Control::Done`] frame to it when its program body finishes, and it
/// broadcasts [`Control::Shutdown`] once all have. Workload bodies are
/// responsible for awaiting whatever convergence they intend to claim —
/// exactly the discipline the threaded executor's programs follow.
pub fn run_cluster_node(
    opts: NodeOpts,
    body: impl FnOnce(&mut LiveCtx) + Send + 'static,
) -> NodeOutcome {
    let NodeOpts { node, cfg, base_port, timeout, durability_dir } = opts;
    let nnodes = cfg.nnodes();
    assert!(node < nnodes, "node {node} out of range for {nnodes} nodes");
    let rt = Runtime::with_workers(2);
    let handle: Handle = rt.handle().clone();

    let (inbox_tx, inbox_rx) = unbounded::<Wire>();
    let (ev_tx, ev_rx) = unbounded::<Control>();
    let delivered = Arc::new(AtomicU64::new(0));
    let listener = crate::transport::bind_reusable(base_port + node as u16).unwrap_or_else(|e| {
        panic!("node {node}: cannot bind port {}: {e}", base_port + node as u16)
    });
    spawn_listener(
        listener,
        Inbound { inbox: inbox_tx.clone(), events: ev_tx.clone(), delivered },
        &handle,
    );

    let mut b = TcpTransportBuilder::new(nnodes);
    for to in 0..nnodes {
        if to != node {
            let addr = std::net::SocketAddr::from(([127, 0, 0, 1], base_port + to as u16));
            b.link(node, to, addr, &handle);
        }
    }
    b.local(node, inbox_tx.clone());
    let transport = Arc::new(b.build());
    let net = Net::new(transport.clone());
    let walc = Arc::new(WalCounters::default());

    if node >= cfg.nprocs {
        // Manager shard: serve until the coordinator's Shutdown frame.
        let manager = run_manager_node(inbox_rx, net.clone(), cfg, node);
        let out = NodeOutcome {
            replica: None,
            manager: Some(manager),
            messages: net.messages(),
            bytes: net.bytes(),
        };
        drop(rt);
        return out;
    }

    let opts = NodeConfig { proc: ProcId(node as u32), cfg: cfg.clone(), timeout, durability_dir };
    let replica = if node == 0 {
        // Coordinator: the protocol node runs on its own thread while
        // this thread collects Done reports and broadcasts Shutdown.
        let ev_tx = ev_tx.clone();
        let proc_handle = {
            let net = net.clone();
            let walc = walc.clone();
            std::thread::spawn(move || {
                run_proc_node(opts, inbox_rx, net, walc, None, body, move || {
                    let _ = ev_tx.send(Control::Done { proc: 0 });
                })
            })
        };
        let mut done = vec![false; cfg.nprocs];
        let mut remaining = cfg.nprocs;
        while remaining > 0 {
            match ev_rx.recv().expect("events channel healthy") {
                Control::Done { proc } => {
                    let p = proc as usize;
                    if !done[p] {
                        done[p] = true;
                        remaining -= 1;
                    }
                }
                Control::Hello { .. } | Control::Shutdown => {}
            }
        }
        std::thread::sleep(SHUTDOWN_GRACE);
        for to in 1..nnodes {
            transport.send_control(0, to, Control::Shutdown);
        }
        let _ = inbox_tx.send(Wire::Shutdown);
        // The runtime is dropped on return, which abandons queued
        // frames — hold the teardown until the writer tasks have
        // drained the Shutdown broadcast to the sockets, or every
        // other node waits forever for a frame that never left.
        let drain_deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !transport.outbound_quiesced(0) && std::time::Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(SHUTDOWN_GRACE);
        match proc_handle.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    } else {
        let done_transport = transport.clone();
        let me = node;
        run_proc_node(opts, inbox_rx, net.clone(), walc, None, body, move || {
            done_transport.send_control(me, 0, Control::Done { proc: me as u32 });
        })
    };
    let out = NodeOutcome {
        replica: Some(replica),
        manager: None,
        messages: net.messages(),
        bytes: net.bytes(),
    };
    drop(rt);
    out
}
