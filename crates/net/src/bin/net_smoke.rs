//! Kill-9 smoke test for the TCP runtime: one process of a live
//! multi-process cluster is SIGKILLed mid-write-storm and restarted,
//! while its peers keep running.
//!
//! This is the network twin of `mc-live`'s `recovery_smoke`, and it
//! exercises the one thing that harness cannot: *survivors* riding out
//! a peer's death — reconnect-with-backoff on the dead links, session
//! retransmission into the void, and the survivor-side epoch reset once
//! the reborn incarnation's `RecoverReq` arrives. The parent asserts:
//!
//! 1. the victim's on-disk state at the moment of death satisfies the
//!    WAL valid-prefix invariant, and some writes were durably acked;
//! 2. the restarted cluster re-converges: every process (the reborn
//!    victim included) runs to completion and exits cleanly, which
//!    requires every peer to observe every final value;
//! 3. no acked write was lost: the reborn victim's final own-write
//!    count covers the durable prefix plus the full re-run storm.
//!
//! The whole cycle runs under a hard wall-clock deadline — a hang (lost
//! frame, stuck epoch, dead reconnect) fails loudly rather than wedging
//! CI. Exit 0 and a final `NET SMOKE PASS` on success.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mc_live::LiveCtx;
use mc_model::{Loc, ProcId, Value};
use mc_net::{run_cluster_node, NodeOpts};
use mc_proto::{
    decode_wal, DsmConfig, DurabilityPolicy, FileDisk, Mode, Replica, Snapshot, WalTail,
};

const NPROCS: usize = 3;
/// The victim's storm: long enough (every write fsyncs) that SIGKILL
/// lands mid-storm.
const VICTIM_WRITES: u32 = 8_000;
/// The survivors finish their writes quickly and then block awaiting
/// the victim's final value — across its death and rebirth.
const PEER_WRITES: u32 = 200;
const VICTIM: usize = 1;
/// Hard deadline for the whole cycle.
const DEADLINE: Duration = Duration::from_secs(120);

/// Victim storm progress, read by the trace watchdog.
static PROGRESS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn cluster_cfg() -> DsmConfig {
    let mut cfg = DsmConfig::new(NPROCS, Mode::Causal);
    cfg.reliable = true;
    cfg.durability = Some(DurabilityPolicy::new(64));
    cfg
}

fn writes_of(p: u32) -> u32 {
    if p as usize == VICTIM {
        VICTIM_WRITES
    } else {
        PEER_WRITES
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--node") => {
            let node: usize = args[1].parse().expect("--node I");
            let port: u16 = args[3].parse().expect("--port P");
            let dir = PathBuf::from(&args[5]);
            child(node, port, &dir);
        }
        Some(_) => {
            eprintln!("usage: net_smoke [--node I --port P --dir D]");
            std::process::exit(2);
        }
        None => parent(),
    }
}

/// One cluster node: the storm body for process nodes, the manager main
/// for the rest. The victim announces `storming` once its first writes
/// are durably acked, so the parent never kills an idle cluster.
fn child(node: usize, port: u16, dir: &Path) {
    let cfg = cluster_cfg();
    let opts = NodeOpts {
        node,
        cfg,
        base_port: port,
        timeout: Duration::from_secs(60),
        durability_dir: Some(dir.to_path_buf()),
    };
    if node == VICTIM && std::env::var_os("MC_NET_TRACE").is_some() {
        std::thread::spawn(|| loop {
            std::thread::sleep(Duration::from_secs(10));
            eprintln!(
                "NETTRACE victim: storm progress {}",
                PROGRESS.load(std::sync::atomic::Ordering::Relaxed)
            );
        });
    }
    let out = run_cluster_node(opts, move |ctx: &mut LiveCtx| {
        let p = node as u32;
        for i in 1..=writes_of(p) {
            ctx.write(Loc(p), i as i64);
            if node == VICTIM {
                PROGRESS.store(i as u64, std::sync::atomic::Ordering::Relaxed);
            }
            if node == VICTIM && i == 20 {
                println!("storming");
            }
        }
        for q in 0..NPROCS as u32 {
            if q != p {
                ctx.await_eq(Loc(q), Value::Int(writes_of(q) as i64));
            }
        }
    });
    if let Some(r) = &out.replica {
        println!("node {node} applied-own={} incarnation={}", r.applied[r.proc], r.incarnation);
    }
    std::process::exit(0);
}

fn spawn_node(exe: &Path, node: usize, port: u16, dir: &Path, piped: bool) -> Child {
    let mut cmd = Command::new(exe);
    cmd.arg("--node")
        .arg(node.to_string())
        .arg("--port")
        .arg(port.to_string())
        .arg("--dir")
        .arg(dir)
        .stdout(if piped { Stdio::piped() } else { Stdio::inherit() })
        .stderr(Stdio::inherit());
    cmd.spawn().unwrap_or_else(|e| panic!("spawn node {node}: {e}"))
}

/// Waits for `child` under the shared deadline; on overrun every child
/// is killed and the smoke test fails.
fn wait_deadline(label: &str, child: &mut Child, deadline: Instant, all: &mut [&mut Child]) {
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "{label} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                eprintln!("net_smoke: deadline blown waiting for {label} — killing cluster");
                let _ = child.kill();
                for c in all.iter_mut() {
                    let _ = c.kill();
                }
                std::process::exit(1);
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn parent() {
    let deadline = Instant::now() + DEADLINE;
    let dir = std::env::temp_dir().join(format!("mc-net-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    // Below the kernel's ephemeral range (32768+): a redialling peer's
    // outbound source port must never steal a listener's address.
    let port = 21000 + (std::process::id() % 10000) as u16;
    let exe = std::env::current_exe().expect("own executable path");
    let nnodes = cluster_cfg().nnodes();

    let mut others: Vec<Child> = Vec::new();
    let mut victim = None;
    for node in 0..nnodes {
        if node == VICTIM {
            victim = Some(spawn_node(&exe, node, port, &dir, true));
        } else {
            others.push(spawn_node(&exe, node, port, &dir, false));
        }
    }
    let mut victim = victim.expect("victim spawned");

    // Kill only once the victim's storm is provably touching disk.
    let mut lines = std::io::BufReader::new(victim.stdout.take().expect("piped stdout")).lines();
    let greeting = lines.next().expect("victim greeting").expect("read greeting");
    assert_eq!(greeting.trim(), "storming", "unexpected victim greeting: {greeting:?}");
    std::thread::sleep(Duration::from_millis(150));
    victim.kill().expect("SIGKILL the victim");
    let status = victim.wait().expect("reap victim");
    println!("victim killed mid-storm ({status})");

    // The valid-prefix invariant at the moment of death, and the count
    // of durably acked own writes the rebirth must preserve.
    let rdir = dir.join(format!("replica-{VICTIM}"));
    let (snap_bytes, wal) = FileDisk::load(&rdir).expect("load victim replica dir");
    let mut replica = match &snap_bytes {
        Some(bytes) => {
            let snap = Snapshot::decode(bytes).expect("victim snapshot must decode");
            Replica::from_snapshot(ProcId(VICTIM as u32), NPROCS, &snap)
        }
        None => Replica::new(ProcId(VICTIM as u32), NPROCS),
    };
    let (records, tail) = decode_wal(&wal);
    match tail {
        WalTail::Clean => {}
        WalTail::Torn { at } => println!("victim: torn tail at byte {at} (tolerated)"),
        WalTail::Corrupt { at } => {
            eprintln!("victim: corrupt WAL frame at byte {at} — valid-prefix broken");
            std::process::exit(1);
        }
    }
    for rec in records {
        replica.replay_record(rec, Mode::Causal);
    }
    let durable_own = replica.applied[ProcId(VICTIM as u32)];
    println!("victim durable-own-writes={durable_own}");
    assert!(durable_own > 0, "the storm never made it to disk — smoke test proves nothing");

    // Rebirth: same node id, same port (SO_REUSEADDR reclaims it), same
    // replica directory. The survivors have been retransmitting into the
    // void this whole time.
    let mut reborn = spawn_node(&exe, VICTIM, port, &dir, true);
    {
        let mut refs: Vec<&mut Child> = others.iter_mut().collect();
        wait_deadline("reborn victim", &mut reborn, deadline, &mut refs);
    }
    let out = reborn.stdout.take().expect("piped stdout");
    let mut applied_own = None;
    let mut incarnation = None;
    for line in std::io::BufReader::new(out).lines() {
        let line = line.expect("read reborn output");
        println!("reborn: {line}");
        if let Some(rest) = line.strip_prefix(&format!("node {VICTIM} applied-own=")) {
            let (a, inc) = rest.split_once(" incarnation=").expect("report format");
            applied_own = Some(a.parse::<u32>().expect("applied count"));
            incarnation = Some(inc.parse::<u32>().expect("incarnation"));
        }
    }
    let applied_own = applied_own.expect("reborn victim reported applied-own");
    let incarnation = incarnation.expect("reborn victim reported incarnation");

    let mut rest = std::mem::take(&mut others);
    for (i, c) in rest.iter_mut().enumerate() {
        let mut refs: Vec<&mut Child> = Vec::new();
        wait_deadline(&format!("survivor {i}"), c, deadline, &mut refs);
    }
    drop(rest);

    assert!(incarnation >= 1, "rebirth must bump the incarnation (got {incarnation})");
    assert!(
        applied_own >= durable_own + VICTIM_WRITES,
        "acked writes lost across rebirth: {durable_own} durable + {VICTIM_WRITES} re-run \
         > {applied_own} applied"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("NET SMOKE PASS");
}
