//! `mc-cluster` — spawn and join a multi-process mixed-consistency
//! cluster over loopback TCP.
//!
//! Parent mode (the default) re-executes itself once per node — process
//! nodes first, manager nodes after — waits for all of them, and fails
//! if any child does. Each child runs one node via
//! [`mc_net::run_cluster_node`]; node 0 doubles as the coordinator
//! (`Done` frames in, `Shutdown` broadcast out).
//!
//! ```text
//! mc-cluster --procs 3 --mode causal --workload ring:1000
//! mc-cluster --procs 2 --spec prog.spec
//! mc-cluster --procs 3 --workload storm:500 --durable /tmp/dir --port 47000
//! ```
//!
//! Workloads come either from `--workload ring:N|storm:N` or from
//! `--spec FILE` — a `ProgSpec` text file (the same format `mc-check
//! --replay` consumes), whose per-process operation lists are run
//! against the live context. Exit code 0 means every node ran to
//! completion and shut down cleanly.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use mc_live::LiveCtx;
use mc_net::{run_cluster_node, NodeOpts, Workload};
use mc_proto::{DsmConfig, DurabilityPolicy, Mode};
use mixed_consistency::{ProgSpec, SpecOp};

/// Everything both parent and children need to agree on, parsed from
/// the shared command line.
struct Opts {
    node: Option<usize>,
    procs: usize,
    mode: Mode,
    workload: Option<Workload>,
    spec: Option<PathBuf>,
    port: u16,
    reliable: bool,
    durable: Option<PathBuf>,
    timeout: Duration,
}

fn usage() -> ! {
    eprintln!(
        "usage: mc-cluster --procs N [--mode pram|causal|mixed|sc] \
         (--workload ring:K|storm:K | --spec FILE) [--port BASE] \
         [--raw] [--durable DIR] [--timeout SECS] [--node I]"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        node: None,
        procs: 0,
        mode: Mode::Causal,
        workload: None,
        spec: None,
        port: 0,
        reliable: true,
        durable: None,
        timeout: Duration::from_secs(30),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match a.as_str() {
            "--node" => o.node = Some(val().parse().unwrap_or_else(|_| usage())),
            "--procs" => o.procs = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val().as_str() {
                    "pram" => Mode::Pram,
                    "causal" => Mode::Causal,
                    "mixed" => Mode::Mixed,
                    "sc" => Mode::Sc,
                    _ => usage(),
                }
            }
            "--workload" => match Workload::parse(&val()) {
                Ok(w) => o.workload = Some(w),
                Err(e) => {
                    eprintln!("mc-cluster: {e}");
                    usage();
                }
            },
            "--spec" => o.spec = Some(PathBuf::from(val())),
            "--port" => o.port = val().parse().unwrap_or_else(|_| usage()),
            "--raw" => o.reliable = false,
            "--durable" => o.durable = Some(PathBuf::from(val())),
            "--timeout" => {
                o.timeout = Duration::from_secs(val().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    o
}

/// The cluster config both sides derive identically from the options.
fn config(o: &Opts, spec: Option<&ProgSpec>) -> DsmConfig {
    let mut cfg = DsmConfig::new(o.procs, o.mode);
    cfg.reliable = o.reliable;
    if let Some(spec) = spec {
        cfg.mode = spec.mode;
        cfg.lock_propagation = spec.lock_propagation;
        if let Some(models) = &spec.models {
            cfg = cfg.with_models(mc_model::ModelAssignment::per_proc(models.clone()));
        }
        assert!(spec.shards.is_none(), "mc-cluster does not support sharded specs yet");
    }
    if o.durable.is_some() {
        cfg.durability = Some(DurabilityPolicy::new(64));
        cfg.reliable = true;
    }
    cfg
}

fn load_spec(o: &Opts) -> Option<ProgSpec> {
    let path = o.spec.as_ref()?;
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read spec {path:?}: {e}"));
    let spec = ProgSpec::parse(&text).unwrap_or_else(|e| panic!("bad spec {path:?}: {e}"));
    Some(spec)
}

/// Runs one `ProgSpec` process against the live context (the live twin
/// of the exploration runner's op dispatch).
fn run_spec_ops(ctx: &mut LiveCtx, ops: &[SpecOp]) {
    for op in ops {
        match *op {
            SpecOp::Write { loc, value } => {
                ctx.write(loc, value);
            }
            SpecOp::Add { loc, delta } => {
                ctx.add(loc, delta);
            }
            SpecOp::Read { loc, label } => {
                let _ = ctx.read(loc, label);
            }
            SpecOp::Lock { lock, mode } => ctx.lock(lock, mode),
            SpecOp::Unlock { lock, mode } => ctx.unlock(lock, mode),
            SpecOp::Barrier { barrier } => ctx.barrier_on(barrier),
            SpecOp::Await { loc, value } => {
                ctx.await_eq(loc, value);
            }
        }
    }
}

fn child(o: &Opts) -> ! {
    let node = o.node.expect("child needs --node");
    let spec = load_spec(o);
    let cfg = config(o, spec.as_ref());
    let nprocs = cfg.nprocs;
    let opts = NodeOpts {
        node,
        cfg,
        base_port: o.port,
        timeout: o.timeout,
        durability_dir: o.durable.clone(),
    };
    let workload = o.workload;
    let out = run_cluster_node(opts, move |ctx| {
        if let Some(spec) = spec {
            run_spec_ops(ctx, &spec.procs[node]);
        } else if let Some(w) = workload {
            (w.body(node as u32, nprocs))(ctx);
        }
    });
    println!("node {node} done: messages={} bytes={}", out.messages, out.bytes);
    if let Some(r) = &out.replica {
        println!("node {node} applied-own={} incarnation={}", r.applied[r.proc], r.incarnation);
    }
    std::process::exit(0);
}

fn parent(o: &Opts) -> ! {
    if o.procs == 0 || (o.workload.is_none() && o.spec.is_none()) {
        usage();
    }
    let spec = load_spec(o);
    if let Some(spec) = &spec {
        assert_eq!(spec.procs.len(), o.procs, "--procs must match the spec's process count");
    }
    let cfg = config(o, spec.as_ref());
    let nnodes = cfg.nnodes();
    let base_port = if o.port != 0 {
        o.port
    } else {
        // Derive a base port from the pid so concurrent clusters on one
        // machine do not collide — below the kernel's ephemeral range
        // (32768+) so no outbound source port can steal a listener's
        // address.
        21000 + (std::process::id() % 10000) as u16
    };
    let exe = std::env::current_exe().expect("own executable path");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut children = Vec::new();
    for node in 0..nnodes {
        let mut cmd = Command::new(&exe);
        cmd.args(&args)
            .arg("--node")
            .arg(node.to_string())
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit());
        if o.port == 0 {
            cmd.arg("--port").arg(base_port.to_string());
        }
        children.push((node, cmd.spawn().expect("spawn cluster node")));
    }
    let mut failed = false;
    for (node, mut c) in children {
        let status = c.wait().expect("reap cluster node");
        if !status.success() {
            eprintln!("mc-cluster: node {node} failed ({status})");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("mc-cluster: all {nnodes} nodes done");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);
    if o.node.is_some() {
        child(&o);
    } else {
        parent(&o);
    }
}
