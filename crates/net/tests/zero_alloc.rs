//! Pins the zero-copy claims of the wire hot path.
//!
//! Two angles on the same invariant — a message travelling the TCP
//! transport costs no per-message heap traffic in steady state:
//!
//! 1. A counting global allocator wraps the system allocator and the
//!    encode → frame-split → decode → drop cycle runs 10 000 times
//!    against a reused arena. After warm-up the loop must perform
//!    **zero** allocations: encoding writes into reclaimed arena
//!    capacity, the frame is a refcounted view, and decoding a dense
//!    frame borrows from the receive buffer.
//! 2. A real two-process loopback cluster pushes a 10 000-write storm
//!    and the buffer pool's global counters must show reuse dominating
//!    allocation — the per-peer arenas and receive buffers recycle
//!    their regions instead of growing the heap.
//!
//! Both tests read process-global counters, so they serialize on one
//! mutex rather than trusting the harness's thread scheduling.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::{pool_stats, BytesMut};
use mc_model::{Loc, ProcId, Value, WriteId};
use mc_net::NetSystem;
use mc_proto::wire::{decode_frame, encode_frame, Frame, FRAME_HEADER};
use mc_proto::{Mode, Msg, UpdatePayload};

/// Counts allocations without changing them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Serializes the tests: both read process-global counters.
static SERIAL: Mutex<()> = Mutex::new(());

/// One transport send/receive cycle, exactly as `Link::push` and the
/// reader loop perform it: encode into the arena, split the frame off
/// as a view, decode the body in place, drop the view.
fn cycle(arena: &mut BytesMut, msg: &Msg) {
    encode_frame(arena, msg);
    let len = arena.len();
    let frame = arena.split_to(len);
    match decode_frame(&frame[FRAME_HEADER..]).expect("self-encoded frame decodes") {
        Frame::Msg(Msg::Update {
            writer,
            loc,
            payload: UpdatePayload::Set(Value::Int(v)),
            deps: None,
        }) => {
            assert_eq!(writer, WriteId::new(ProcId(0), 7));
            assert_eq!(loc, Loc(3));
            assert_eq!(v, 42);
        }
        _ => panic!("round trip changed the frame"),
    }
    drop(frame);
}

#[test]
fn steady_state_wire_cycle_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap();
    let msg = Msg::Update {
        writer: WriteId::new(ProcId(0), 7),
        loc: Loc(3),
        payload: UpdatePayload::Set(Value::Int(42)),
        deps: None,
    };
    let mut arena = BytesMut::with_capacity(4096);
    // Warm-up: let the arena reach its steady footprint.
    for _ in 0..64 {
        cycle(&mut arena, &msg);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        cycle(&mut arena, &msg);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "the encode/decode hot path must not touch the allocator in steady state"
    );
}

#[test]
fn tcp_storm_reuses_pool_buffers() {
    let _guard = SERIAL.lock().unwrap();
    let (allocs0, reuses0) = pool_stats();
    let mut sys = NetSystem::new(2, Mode::Causal);
    sys.spawn(|ctx| {
        for i in 1..=10_000 {
            ctx.write(Loc(0), i);
        }
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(0), Value::Int(10_000));
    });
    sys.run().expect("storm cluster runs");
    let (allocs1, reuses1) = pool_stats();
    let allocs = allocs1 - allocs0;
    let reuses = reuses1 - reuses0;
    // Most frames never touch the pool at all: split_to carves views
    // out of the current region and reserve only acts when a region
    // fills. Per-message allocation would show up as thousands of
    // fresh regions here; the actual cost is a handful of arenas and
    // receive buffers plus rare migrations, amortized to ~zero per
    // message — and when a region does cycle, reclaim beats malloc.
    assert!(
        allocs <= 100,
        "a 10k-op TCP run must not allocate per message: {allocs} fresh regions"
    );
    // How often reclaim wins over migration is timing-dependent (a
    // region migrates when a frame is still in flight at reserve
    // time), so only the reclaim path's engagement is pinned, not a
    // ratio.
    assert!(reuses > 0, "the reclaim path never engaged over a 10k-op TCP run");
}
