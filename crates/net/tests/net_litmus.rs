//! Litmus-shaped programs on real multi-node TCP clusters, judged by
//! the formal checkers — the classic shapes (store buffer, IRIW, WRC)
//! run as live programs over loopback sockets, with every recorded
//! history replayed through `check_model`/`check_*`. Genuine kernel
//! scheduling and genuine networking; same definitions as the
//! simulator's exhaustive litmus matrix.

use std::sync::{Arc, Mutex};

use mc_model::spec::{check_model, ModelAssignment, ModelSpec};
use mc_model::{check, Loc, ReadLabel, Value};
use mc_net::NetSystem;
use mc_proto::Mode;

const REPS: usize = 5;

/// Store buffer (the paper's Fig. 1 shape): each process writes its own
/// flag then reads the other's. Under PRAM and causal consistency both
/// processes may read 0 — every interleaving the sockets produce must
/// still check.
#[test]
fn store_buffer_over_tcp() {
    for mode in [Mode::Pram, Mode::Causal] {
        for _ in 0..REPS {
            let mut sys = NetSystem::new(2, mode).record(true);
            for p in 0..2u32 {
                sys.spawn(move |ctx| {
                    ctx.write(Loc(p), 1);
                    let _ = ctx.read(Loc(1 - p), ReadLabel::Pram);
                });
            }
            let outcome = sys.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            let h = outcome.history.expect("recorded");
            check::check_pram(&h).unwrap_or_else(|e| panic!("{mode}: {e}"));
            if mode == Mode::Causal {
                check::check_causal(&h).unwrap_or_else(|e| panic!("{mode}: {e}"));
            }
        }
    }
}

/// IRIW: two writers to independent locations, two readers scanning in
/// opposite orders. Causal consistency admits the split (readers
/// disagreeing on the write order); the recorded histories must check
/// under the causal spec regardless of which interleaving the network
/// produced.
#[test]
fn iriw_over_tcp_checks_causal() {
    for _ in 0..REPS {
        let mut sys = NetSystem::new(4, Mode::Causal).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 1);
        });
        sys.spawn(|ctx| {
            ctx.write(Loc(1), 1);
        });
        for (a, b) in [(0u32, 1u32), (1, 0)] {
            sys.spawn(move |ctx| {
                let _ = ctx.read(Loc(a), ReadLabel::Causal);
                let _ = ctx.read(Loc(b), ReadLabel::Causal);
            });
        }
        let outcome = sys.run().expect("cluster runs");
        let h = outcome.history.expect("recorded");
        check_model(&h, &ModelAssignment::uniform(4, ModelSpec::CAUSAL))
            .unwrap_or_else(|e| panic!("IRIW history must satisfy causal: {e}"));
    }
}

/// IRIW under sequential consistency: with every process SC, the two
/// readers must *agree* on the write order — the server serializes. The
/// serialization check (`total_store_order`) judges the history.
#[test]
fn iriw_over_tcp_serializes_under_sc() {
    for _ in 0..REPS {
        let mut sys = NetSystem::new(4, Mode::Sc).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 1);
        });
        sys.spawn(|ctx| {
            ctx.write(Loc(1), 1);
        });
        for (a, b) in [(0u32, 1u32), (1, 0)] {
            sys.spawn(move |ctx| {
                let _ = ctx.read(Loc(a), ReadLabel::Causal);
                let _ = ctx.read(Loc(b), ReadLabel::Causal);
            });
        }
        let outcome = sys.run().expect("cluster runs");
        let h = outcome.history.expect("recorded");
        check_model(&h, &ModelAssignment::uniform(4, ModelSpec::SC))
            .unwrap_or_else(|e| panic!("SC cluster must serialize IRIW over TCP: {e}"));
    }
}

/// WRC (write-read causality): p1 observes p0's write before writing its
/// own flag; p2 observes the flag and must then observe the original
/// write — causal transitivity across two real sockets. The strongest
/// assertion here is on the *value*: a causal read may never return the
/// stale 0.
#[test]
fn wrc_transitivity_over_tcp() {
    for _ in 0..REPS {
        let mut sys = NetSystem::new(3, Mode::Causal).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 42);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(0), Value::Int(42));
            ctx.write(Loc(1), 1);
        });
        let seen = Arc::new(Mutex::new(Value::Int(0)));
        let seen2 = seen.clone();
        sys.spawn(move |ctx| {
            ctx.await_eq(Loc(1), Value::Int(1));
            *seen2.lock().unwrap() = ctx.read_causal(Loc(0));
        });
        let outcome = sys.run().expect("cluster runs");
        assert_eq!(
            *seen.lock().unwrap(),
            Value::Int(42),
            "causal transitivity broken across TCP hops"
        );
        let h = outcome.history.expect("recorded");
        check::check_causal(&h).expect("WRC history must check causal");
    }
}

/// The same WRC shape under Definition 4 (mixed): the final read carries
/// the causal label and is judged causal; the history must satisfy the
/// mixed model end to end.
#[test]
fn wrc_over_tcp_mixed_model() {
    for _ in 0..REPS {
        let mut sys = NetSystem::new(3, Mode::Mixed).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 42);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(0), Value::Int(42));
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), Value::Int(1));
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42));
        });
        let outcome = sys.run().expect("cluster runs");
        let h = outcome.history.expect("recorded");
        check::check_mixed(&h).expect("mixed model over TCP");
        check_model(&h, &ModelAssignment::mixed(3))
            .unwrap_or_else(|e| panic!("lattice judgement over TCP: {e}"));
    }
}
