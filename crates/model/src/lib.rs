//! # mc-model — the formal model of mixed consistency
//!
//! An executable rendering of the memory model from *Agrawal, Choy, Leong,
//! Singh: "Mixed Consistency: A Model for Parallel Programming", PODC 1994*.
//!
//! The crate provides:
//!
//! * the vocabulary of the model — [`Op`]s, [`Value`]s, identifier newtypes,
//!   and [`History`] with its well-formedness conditions (Section 3 of the
//!   paper);
//! * the **causality relation** `;` and its per-process restrictions
//!   `;i,C` (for causal reads) and `;i,P` (the transitive-reduction-based
//!   PRAM relation) — see [`Causality`];
//! * **consistency checkers** for Definition 2 (causal reads), Definition 3
//!   (PRAM reads), Definition 4 (mixed consistency), and Definition 1
//!   (sequential consistency, exact search) — see [`check`] and [`sc`];
//! * the **ordering-property lattice**: consistency models as data
//!   ([`ModelSpec`]), per-process assignments ([`ModelAssignment`]), and
//!   the declarative validator [`spec::check_model`] that subsumes the
//!   per-definition checkers and adds slow memory, weak ordering, and
//!   processor consistency — see [`spec`];
//! * the **programming conditions** of Section 4: Definition 5
//!   commutativity, the Theorem 1 sufficient condition for sequential
//!   consistency, and the Corollary 1/2 entry-consistency and
//!   PRAM-consistency program checkers — see [`commute`] and [`programs`];
//! * a library of **litmus histories** including the Figure 1
//!   lock-and-barrier example — see [`litmus`].
//!
//! # Quick example
//!
//! The classic causality litmus: `p0` writes `x`, `p1` reads it and then
//! writes `y`, `p2` reads the new `y` but the *old* `x`. That history is
//! PRAM but not causal:
//!
//! ```
//! use mc_model::{HistoryBuilder, Loc, ProcId, ReadLabel, Value, check};
//!
//! let mut b = HistoryBuilder::new(3);
//! b.push_write(ProcId(0), Loc(0), Value::Int(1));                       // w0(x)1
//! b.push_read(ProcId(1), Loc(0), ReadLabel::Pram, Value::Int(1));       // r1(x)1
//! b.push_write(ProcId(1), Loc(1), Value::Int(2));                       // w1(y)2
//! b.push_read(ProcId(2), Loc(1), ReadLabel::Pram, Value::Int(2));       // r2(y)2
//! b.push_read(ProcId(2), Loc(0), ReadLabel::Pram, Value::Int(0));       // r2(x)0 !
//! let h = b.build()?;
//!
//! assert!(check::check_pram(&h).is_ok());      // allowed under PRAM
//! assert!(check::check_causal(&h).is_err());   // forbidden under causal memory
//! # Ok::<(), mc_model::MalformedHistory>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod causality;
pub mod check;
pub mod commute;
pub mod graph;
mod history;
mod ids;
pub mod litmus;
mod op;
pub mod programs;
pub mod sc;
pub mod spec;
pub mod trace;
mod value;
mod vclock;
pub mod viz;

pub use causality::Causality;
pub use history::{BarrierRoundOps, History, HistoryBuilder, LockEpoch, MalformedHistory};
pub use ids::{BarrierId, BarrierRound, Loc, LockId, OpId, ProcId, WriteId};
pub use op::{Edge, LockMode, Op, OpKind, ReadLabel};
pub use spec::{ModelAssignment, ModelSpec, OrderScope, ProcModel, SyncScope};
pub use value::Value;
pub use vclock::VClock;
