//! Commutativity (Definition 5) and the Theorem 1 sufficient condition for
//! sequential consistency.
//!
//! Theorem 1 of the paper: *a history is sequentially consistent if every
//! pair of operations not related by `;` commutes and every read is a
//! causal read*. The commutativity notion (Definition 5) is semantic — two
//! operations commute if appending them to any sequential history in either
//! order yields equivalent sequential histories — but it is decidable
//! syntactically for the operation vocabulary of the model, which is what
//! [`ops_commute`] implements:
//!
//! * operations on different objects commute;
//! * reads commute with reads, and with writes of the *same* value;
//! * writes commute iff they store the same value; commutative updates
//!   always commute with each other (that is their purpose);
//! * operations that are never simultaneously enabled (two write-locks on
//!   one object, an unlock with a conflicting lock) commute vacuously;
//! * awaits behave like reads of their awaited value.

use std::fmt;

use crate::causality::{Causality, CausalityError};
use crate::check::{self, CheckError};
use crate::history::History;
use crate::ids::OpId;
use crate::op::{LockMode, OpKind};

/// Decides Definition 5 commutativity for two operations.
///
/// The decision follows the case analysis in the module documentation; it
/// is exact for the model's operation vocabulary.
pub fn ops_commute(h: &History, a: OpId, b: OpId) -> bool {
    use OpKind::*;
    let (ka, kb) = (&h.op(a).kind, &h.op(b).kind);

    // Different objects always commute (and lock objects are disjoint from
    // memory locations).
    match (ka.loc(), kb.loc()) {
        (Some(la), Some(lb)) if la != lb => return true,
        _ => {}
    }
    match (ka.lock(), kb.lock()) {
        (Some(la), Some(lb)) if la != lb => return true,
        _ => {}
    }

    match (ka, kb) {
        // ---- memory / memory on the same location -------------------------------
        (Read { value: va, .. }, Read { value: vb, .. }) => {
            // Both enabled only if memory holds both values: va == vb, and
            // then they commute; otherwise vacuously.
            let _ = (va, vb);
            true
        }
        (Read { value: vr, .. }, Write { value: vw, .. })
        | (Write { value: vw, .. }, Read { value: vr, .. }) => vr == vw,
        (Write { value: va, .. }, Write { value: vb, .. }) => va == vb,
        (Update { .. }, Update { .. }) => true,
        (Update { delta, .. }, Read { .. }) | (Read { .. }, Update { delta, .. }) => {
            delta.is_zero_delta()
        }
        (Update { .. }, Write { .. }) | (Write { .. }, Update { .. }) => false,

        // ---- awaits act like reads of their value --------------------------------
        (Await { value: vr, .. }, Write { value: vw, .. })
        | (Write { value: vw, .. }, Await { value: vr, .. }) => vr == vw,
        (Await { .. }, Update { delta, .. }) | (Update { delta, .. }, Await { .. }) => {
            delta.is_zero_delta()
        }
        (Await { .. }, Await { .. })
        | (Await { .. }, Read { .. })
        | (Read { .. }, Await { .. }) => true,

        // ---- lock / lock on the same object --------------------------------------
        (Lock { mode: ma, .. }, Lock { mode: mb, .. }) => {
            // Two read-locks commute; any pair involving a write lock is
            // either never co-enabled (write vs write: both enabled only
            // when free, but the second grant is then illegal => they do
            // NOT commute) — per Definition 5 h;wl;wl' is not a sequential
            // history, so the pair fails.
            matches!((ma, mb), (LockMode::Read, LockMode::Read))
        }
        (Lock { mode: LockMode::Read, .. }, Unlock { mode: LockMode::Read, .. })
        | (Unlock { mode: LockMode::Read, .. }, Lock { mode: LockMode::Read, .. }) => {
            // rl_p and ru_q can be co-enabled and the final reader set is
            // the same in either order.
            true
        }
        (Lock { .. }, Unlock { .. }) | (Unlock { .. }, Lock { .. }) => {
            // A write lock is enabled only when the object is free, while
            // an unlock is enabled only while it is held — never
            // co-enabled, so vacuously commuting. Same for read lock vs
            // write unlock.
            true
        }
        (Unlock { .. }, Unlock { .. }) => true,

        // ---- barriers are state-neutral ------------------------------------------
        (Barrier { .. }, _) | (_, Barrier { .. }) => true,

        // ---- remaining object-disjoint combinations -------------------------------
        _ => true,
    }
}

/// A pair of `;`-unrelated operations that fail Definition 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonCommutingPair {
    /// First operation.
    pub a: OpId,
    /// Second operation.
    pub b: OpId,
}

impl fmt::Display for NonCommutingPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}) do not commute", self.a, self.b)
    }
}

/// The outcome of checking Theorem 1's premises on a history.
#[derive(Clone, Debug, PartialEq)]
pub enum Theorem1Outcome {
    /// Both premises hold: the history is sequentially consistent.
    Applies,
    /// At least one premise fails; the theorem is silent (the history may
    /// or may not be SC).
    NotApplicable {
        /// Concurrent pairs failing Definition 5.
        non_commuting: Vec<NonCommutingPair>,
        /// Reads failing Definition 2, if any.
        causal_violations: Option<CheckError>,
    },
}

impl Theorem1Outcome {
    /// Returns `true` if the theorem's premises hold.
    pub fn applies(&self) -> bool {
        matches!(self, Theorem1Outcome::Applies)
    }
}

/// Checks the premises of **Theorem 1**: every pair of operations not
/// related by `;` commutes, and every read is a causal read.
///
/// When the result [`applies`](Theorem1Outcome::applies), the history is
/// guaranteed sequentially consistent without running the exponential
/// search of [`crate::sc::check_sequential`].
///
/// # Errors
///
/// Returns a [`CausalityError`] if `;` is cyclic.
pub fn check_theorem1(h: &History) -> Result<Theorem1Outcome, CausalityError> {
    let causality = Causality::new(h)?;
    let mut non_commuting = Vec::new();
    let n = h.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (OpId(i as u32), OpId(j as u32));
            if causality.concurrent(a, b) && !ops_commute(h, a, b) {
                non_commuting.push(NonCommutingPair { a, b });
            }
        }
    }
    let causal_violations = check::check_causal(h).err();
    if non_commuting.is_empty() && causal_violations.is_none() {
        Ok(Theorem1Outcome::Applies)
    } else {
        Ok(Theorem1Outcome::NotApplicable { non_commuting, causal_violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{Loc, LockId, ProcId};
    use crate::op::ReadLabel;
    use crate::sc::{check_sequential, ScVerdict};
    use crate::value::Value;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn different_locations_commute() {
        let mut b = HistoryBuilder::new(2);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (w1, _) = b.push_write(p(1), Loc(1), Value::Int(2));
        let h = b.build().unwrap();
        assert!(ops_commute(&h, w0, w1));
    }

    #[test]
    fn conflicting_writes_do_not_commute() {
        let mut b = HistoryBuilder::new(2);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (w1, _) = b.push_write(p(1), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        assert!(!ops_commute(&h, w0, w1));
    }

    #[test]
    fn same_value_writes_commute() {
        let mut b = HistoryBuilder::new(2);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(7));
        let (w1, _) = b.push_write(p(1), Loc(0), Value::Int(7));
        let h = b.build().unwrap();
        assert!(ops_commute(&h, w0, w1));
    }

    #[test]
    fn read_vs_conflicting_write() {
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let r = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let r0 = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        // Read of the written value commutes with the write...
        assert!(ops_commute(&h, w, r));
        // ...and reads always commute with reads.
        assert!(ops_commute(&h, r, r0));
    }

    #[test]
    fn updates_commute_with_updates_but_not_reads() {
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(0), Value::Int(5));
        let (u0, _) = b.push_update(p(0), Loc(0), -1);
        let (u1, _) = b.push_update(p(1), Loc(0), -1);
        let r = b.push_read(p(0), Loc(0), ReadLabel::Causal, Value::Int(3));
        let h = b.build().unwrap();
        assert!(ops_commute(&h, u0, u1));
        assert!(!ops_commute(&h, u1, r));
    }

    #[test]
    fn lock_commutativity_rules() {
        use crate::op::LockMode::{Read as R, Write as W};
        let mut b = HistoryBuilder::new(4);
        let l = LockId(0);
        let rl0 = b.push_lock(p(0), l, R);
        let rl1 = b.push_lock(p(1), l, R);
        let ru0 = b.push_unlock(p(0), l, R);
        let ru1 = b.push_unlock(p(1), l, R);
        let wl = b.push_lock(p(2), l, W);
        let wu = b.push_unlock(p(2), l, W);
        let wl2 = b.push_lock(p(3), l, W);
        let wu2 = b.push_unlock(p(3), l, W);
        let h = b.build().unwrap();
        assert!(ops_commute(&h, rl0, rl1));
        assert!(ops_commute(&h, rl0, ru1));
        assert!(ops_commute(&h, ru0, ru1));
        assert!(!ops_commute(&h, wl, wl2), "two write locks fail Definition 5");
        assert!(!ops_commute(&h, wl, rl0), "write lock vs read lock fails");
        assert!(ops_commute(&h, wl, wu2), "lock vs unlock never co-enabled");
        assert!(ops_commute(&h, wu, wu2));
    }

    #[test]
    fn theorem1_applies_to_disjoint_writers() {
        // Each process owns its own location: everything commutes, reads
        // are causal, so the history is SC by Theorem 1 — confirmed by the
        // exact checker.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(1), Value::Int(2));
        b.push_read(p(0), Loc(1), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert!(check_theorem1(&h).unwrap().applies());
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn theorem1_rejects_concurrent_conflicting_writes() {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        let outcome = check_theorem1(&h).unwrap();
        let Theorem1Outcome::NotApplicable { non_commuting, causal_violations } = outcome else {
            panic!("expected NotApplicable");
        };
        assert_eq!(non_commuting.len(), 1);
        assert!(causal_violations.is_none());
        assert!(!non_commuting[0].to_string().is_empty());
    }

    #[test]
    fn theorem1_rejects_non_causal_reads() {
        // Stale read after a barrier: commutativity fine (barrier-related
        // ops are ;-ordered), but the read is not causal.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_barrier(p(0), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_barrier(p(1), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        let h = b.build().unwrap();
        let outcome = check_theorem1(&h).unwrap();
        let Theorem1Outcome::NotApplicable { causal_violations, .. } = outcome else {
            panic!("expected NotApplicable");
        };
        assert!(causal_violations.is_some());
    }

    #[test]
    fn theorem1_is_sound_vs_exact_checker() {
        // Theorem 1 is a *sufficient* condition: wherever it applies, the
        // exact checker must agree. Locked handoff example:
        use crate::op::LockMode::Write as W;
        let mut b = HistoryBuilder::new(2);
        let l = LockId(0);
        b.push_lock(p(0), l, W);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_unlock(p(0), l, W);
        b.push_lock(p(1), l, W);
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        b.push_unlock(p(1), l, W);
        let h = b.build().unwrap();
        assert!(check_theorem1(&h).unwrap().applies());
        assert!(check_sequential(&h).unwrap().is_sc(), "Theorem 1 must imply SC");
        match check_sequential(&h).unwrap() {
            ScVerdict::SequentiallyConsistent(_) => {}
            v => panic!("{v:?}"),
        }
    }
}
