//! Operations: the vocabulary of histories.
//!
//! Section 3 of the paper: processes issue *memory operations* (reads and
//! writes, extensible to operations on abstract data types) and
//! *synchronization operations* (read/write locks, barriers, awaits). Every
//! operation is modeled by an invocation/response event pair; this module
//! represents the *completed* operation with both halves merged, which is
//! all the consistency definitions need (we consider only complete,
//! well-formed histories, as does the paper).

use std::fmt;

use crate::ids::{BarrierId, BarrierRound, Loc, LockId, OpId, ProcId, WriteId};
use crate::value::Value;

/// The consistency label carried by a read operation.
///
/// Memory operations in the mixed model "consist of writes, and reads that
/// are labeled either as PRAM or Causal" (Section 3.2). The label selects
/// which of Definition 2 (causal read) or Definition 3 (PRAM read) the read
/// must satisfy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReadLabel {
    /// The read must be a PRAM read (Definition 3).
    Pram,
    /// The read must be a causal read (Definition 2).
    Causal,
}

impl fmt::Display for ReadLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadLabel::Pram => write!(f, "pram"),
            ReadLabel::Causal => write!(f, "causal"),
        }
    }
}

/// The mode of a lock operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// A shared (read) lock: `rl` / `ru`.
    Read,
    /// An exclusive (write) lock: `wl` / `wu`.
    Write,
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Read => write!(f, "r"),
            LockMode::Write => write!(f, "w"),
        }
    }
}

/// The kind and payload of an operation.
#[derive(Clone, PartialEq, Debug)]
pub enum OpKind {
    /// A labeled read `r_i(x)v` that returned `value`, reading from
    /// `writer` (`None` means the writer is resolved at
    /// [`HistoryBuilder::build`](crate::HistoryBuilder::build) time by
    /// matching unique write values).
    Read {
        /// Location read.
        loc: Loc,
        /// Consistency label of the read.
        label: ReadLabel,
        /// Value returned.
        value: Value,
        /// Identity of the write read from, if recorded by the runtime.
        writer: Option<WriteId>,
    },
    /// A write `w_i(x)v`.
    Write {
        /// Location written.
        loc: Loc,
        /// Value stored.
        value: Value,
        /// Unique identity of this write.
        id: WriteId,
    },
    /// A commutative increment on a counter object (the read/write/decrement
    /// abstract-data-type extension of Section 5.3). Participates in the
    /// causality relation exactly like a write. Deltas are integer or
    /// float [`Value`]s (the paper's Cholesky optimization decrements
    /// float matrix entries).
    Update {
        /// Location (counter) updated.
        loc: Loc,
        /// Signed delta applied.
        delta: Value,
        /// Unique identity of this update (shares the write namespace).
        id: WriteId,
    },
    /// A lock acquisition `rl(ℓ)` / `wl(ℓ)`.
    Lock {
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// A lock release `ru(ℓ)` / `wu(ℓ)`.
    Unlock {
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// A barrier operation `b^k_j` on barrier object `barrier`.
    Barrier {
        /// Barrier object.
        barrier: BarrierId,
        /// Round index `k` within that object.
        round: BarrierRound,
    },
    /// An `await(x = v)` operation that unblocked after observing `value`.
    ///
    /// `writers` records the set of writes/updates whose application
    /// produced the observed value: for a plain write it is the single
    /// matching write `w_j(x)v` (Section 3.1.3); for a counter object it is
    /// every update applied at the observing replica when the condition
    /// became true.
    Await {
        /// Location observed.
        loc: Loc,
        /// Value awaited (and observed).
        value: Value,
        /// Writes synchronized-with (`w ↦await a` sources).
        writers: Vec<WriteId>,
    },
}

impl OpKind {
    /// The memory location this operation touches, if any.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            OpKind::Read { loc, .. }
            | OpKind::Write { loc, .. }
            | OpKind::Update { loc, .. }
            | OpKind::Await { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// The lock object this operation touches, if any.
    pub fn lock(&self) -> Option<LockId> {
        match self {
            OpKind::Lock { lock, .. } | OpKind::Unlock { lock, .. } => Some(*lock),
            _ => None,
        }
    }

    /// Returns `true` for synchronization operations (locks, barriers,
    /// awaits).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            OpKind::Lock { .. }
                | OpKind::Unlock { .. }
                | OpKind::Barrier { .. }
                | OpKind::Await { .. }
        )
    }

    /// Returns `true` for write-like memory operations (writes and
    /// commutative updates).
    pub fn is_write_like(&self) -> bool {
        matches!(self, OpKind::Write { .. } | OpKind::Update { .. })
    }

    /// Returns `true` for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self, OpKind::Read { .. })
    }

    /// The write identity produced by this operation, if it is write-like.
    pub fn write_id(&self) -> Option<WriteId> {
        match self {
            OpKind::Write { id, .. } | OpKind::Update { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A completed operation in a history: an issuing process plus its kind.
#[derive(Clone, PartialEq, Debug)]
pub struct Op {
    /// The process that issued the operation.
    pub proc: ProcId,
    /// Kind and payload.
    pub kind: OpKind,
}

impl Op {
    /// Creates a new operation record.
    pub fn new(proc: ProcId, kind: OpKind) -> Self {
        Op { proc, kind }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.proc;
        match &self.kind {
            OpKind::Read { loc, label, value, .. } => {
                write!(f, "r_{p}({loc}){value} [{label}]")
            }
            OpKind::Write { loc, value, .. } => write!(f, "w_{p}({loc}){value}"),
            OpKind::Update { loc, delta, .. } => {
                write!(f, "u_{p}({loc})+={delta}")
            }
            OpKind::Lock { lock, mode } => write!(f, "{mode}l_{p}({lock})"),
            OpKind::Unlock { lock, mode } => write!(f, "{mode}u_{p}({lock})"),
            OpKind::Barrier { barrier, round } => {
                write!(f, "b^{}_{p}({barrier})", round.0)
            }
            OpKind::Await { loc, value, .. } => {
                write!(f, "await_{p}({loc}={value})")
            }
        }
    }
}

/// A convenience alias for an edge between two operations.
pub type Edge = (OpId, OpId);

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(p: u32, s: u32) -> WriteId {
        WriteId::new(ProcId(p), s)
    }

    #[test]
    fn kind_classification() {
        let r = OpKind::Read {
            loc: Loc(0),
            label: ReadLabel::Pram,
            value: Value::Int(1),
            writer: None,
        };
        let w = OpKind::Write { loc: Loc(0), value: Value::Int(1), id: wid(0, 1) };
        let u = OpKind::Update { loc: Loc(1), delta: Value::Int(-1), id: wid(0, 2) };
        let l = OpKind::Lock { lock: LockId(0), mode: LockMode::Write };
        let b = OpKind::Barrier { barrier: BarrierId(0), round: BarrierRound(0) };
        let a = OpKind::Await { loc: Loc(0), value: Value::Int(0), writers: vec![] };

        assert!(r.is_read() && !r.is_write_like() && !r.is_sync());
        assert!(w.is_write_like() && !w.is_read());
        assert!(u.is_write_like());
        assert!(l.is_sync() && b.is_sync() && a.is_sync());
        assert_eq!(w.write_id(), Some(wid(0, 1)));
        assert_eq!(r.write_id(), None);
        assert_eq!(r.loc(), Some(Loc(0)));
        assert_eq!(l.loc(), None);
        assert_eq!(l.lock(), Some(LockId(0)));
        assert_eq!(r.lock(), None);
        assert_eq!(a.loc(), Some(Loc(0)));
    }

    #[test]
    fn display_matches_paper_notation() {
        let op = Op::new(
            ProcId(2),
            OpKind::Read {
                loc: Loc(1),
                label: ReadLabel::Causal,
                value: Value::Int(3),
                writer: None,
            },
        );
        assert_eq!(op.to_string(), "r_p2(x1)3 [causal]");

        let w =
            Op::new(ProcId(1), OpKind::Write { loc: Loc(2), value: Value::Int(4), id: wid(1, 1) });
        assert_eq!(w.to_string(), "w_p1(x2)4");

        let wl = Op::new(ProcId(0), OpKind::Lock { lock: LockId(3), mode: LockMode::Write });
        assert_eq!(wl.to_string(), "wl_p0(l3)");
        let ru = Op::new(ProcId(0), OpKind::Unlock { lock: LockId(3), mode: LockMode::Read });
        assert_eq!(ru.to_string(), "ru_p0(l3)");

        let b =
            Op::new(ProcId(4), OpKind::Barrier { barrier: BarrierId(0), round: BarrierRound(7) });
        assert_eq!(b.to_string(), "b^7_p4(b0)");

        let u = Op::new(
            ProcId(0),
            OpKind::Update { loc: Loc(9), delta: Value::Int(-1), id: wid(0, 3) },
        );
        assert_eq!(u.to_string(), "u_p0(x9)+=-1");

        let a = Op::new(
            ProcId(1),
            OpKind::Await { loc: Loc(0), value: Value::Int(0), writers: vec![] },
        );
        assert_eq!(a.to_string(), "await_p1(x0=0)");
    }
}
