//! A library of canonical litmus histories.
//!
//! These small, hand-built histories pin down the boundaries between the
//! consistency conditions of the paper and are used by the examples, the
//! benchmark harness and the cross-crate tests. Each function documents
//! which checkers accept and reject it.

use crate::history::{History, HistoryBuilder};
use crate::ids::{BarrierId, BarrierRound, Loc, LockId, OpId, ProcId};
use crate::op::{LockMode, ReadLabel};
use crate::value::Value;

fn p(i: u32) -> ProcId {
    ProcId(i)
}

/// The causality chain litmus (Section 2's motivation for causal memory):
///
/// ```text
/// p0: w(x)1
/// p1: r(x)1; w(y)2
/// p2: r(y)2; r(x)0        <- stale x
/// ```
///
/// *PRAM* accepts it (p2 has no direct interaction with p0); *causal
/// memory* rejects it (w(x)1 ; w(y)2 ; r(y)2 ; r(x)0 transitively).
/// Reads carry `label`.
pub fn causality_chain(label: ReadLabel) -> History {
    let mut b = HistoryBuilder::new(3);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.push_write(p(1), Loc(1), Value::Int(2));
    b.push_read(p(2), Loc(1), label, Value::Int(2));
    b.push_read(p(2), Loc(0), label, Value::Int(0));
    b.build().expect("litmus history is well-formed")
}

/// The store-buffer (Dekker) litmus:
///
/// ```text
/// p0: w(x)1; r(y)0
/// p1: w(y)1; r(x)0
/// ```
///
/// Both reads returning 0 is *causal* (and PRAM) but **not** sequentially
/// consistent.
pub fn store_buffer() -> History {
    let mut b = HistoryBuilder::new(2);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_read(p(0), Loc(1), ReadLabel::Causal, Value::Int(0));
    b.push_write(p(1), Loc(1), Value::Int(1));
    b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(0));
    b.build().expect("litmus history is well-formed")
}

/// Two observers disagreeing on the order of concurrent writes:
///
/// ```text
/// p0: w(x)1          p1: w(x)2
/// p2: r(x)1; r(x)2   p3: r(x)2; r(x)1
/// ```
///
/// *Causal* (concurrent writes may be observed in different orders) but
/// **not** sequentially consistent.
pub fn write_order_disagreement() -> History {
    let mut b = HistoryBuilder::new(4);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_write(p(1), Loc(0), Value::Int(2));
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(2));
    b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(2));
    b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.build().expect("litmus history is well-formed")
}

/// IRIW — independent reads of independent writes:
///
/// ```text
/// p0: w(x)1          p1: w(y)1
/// p2: r(x)1; r(y)0   p3: r(y)1; r(x)0
/// ```
///
/// The observers disagree on the order of two *causally independent*
/// writes. *PRAM*, *causal*, and *mixed* all accept it (concurrent
/// writes may be observed in either order); sequential consistency
/// rejects it — this is the classic boundary showing that causal memory
/// does not totally order independent writes.
pub fn iriw() -> History {
    let mut b = HistoryBuilder::new(4);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_write(p(1), Loc(1), Value::Int(1));
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.push_read(p(2), Loc(1), ReadLabel::Causal, Value::Int(0));
    b.push_read(p(3), Loc(1), ReadLabel::Causal, Value::Int(1));
    b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(0));
    b.build().expect("litmus history is well-formed")
}

/// WRC — write-to-read causality:
///
/// ```text
/// p0: w(x)1
/// p1: r(x)1; w(y)1
/// p2: r(y)1; r(x)0       <- stale x
/// ```
///
/// `p1` observes `w(x)1` before producing `w(y)1`, so the writes are
/// causally ordered through the read; `p2` sees the effect but not the
/// cause. *PRAM* accepts it (`p2` has no direct interaction with `p0`);
/// *causal memory* rejects it. The checker used by *mixed* follows
/// `label`: `ReadLabel::Pram` reads make the history acceptable,
/// `ReadLabel::Causal` reads make it a violation. Same boundary as
/// [`causality_chain`], in the canonical message-passing shape.
pub fn wrc(label: ReadLabel) -> History {
    let mut b = HistoryBuilder::new(3);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.push_write(p(1), Loc(1), Value::Int(1));
    b.push_read(p(2), Loc(1), label, Value::Int(1));
    b.push_read(p(2), Loc(0), label, Value::Int(0));
    b.build().expect("litmus history is well-formed")
}

/// 2+2W — two writers, two locations, opposite program orders:
///
/// ```text
/// p0: w(x)1; w(y)2   p1: w(y)1; w(x)2
/// p2: r(x)2; r(x)1   p3: r(y)2; r(y)1
/// ```
///
/// Each observer sees one location's writes in the order `2` then `1`.
/// Any single serialization would need
/// `w(y)1 < w(x)2 < w(x)1 < w(y)2 < w(y)1` — a cycle — so sequential
/// consistency rejects it; *PRAM*, *causal*, and *mixed* accept it
/// (each observer's view respects program order and causality; the
/// write-write order is only constrained per observer).
pub fn two_plus_two_w() -> History {
    let mut b = HistoryBuilder::new(4);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_write(p(0), Loc(1), Value::Int(2));
    b.push_write(p(1), Loc(1), Value::Int(1));
    b.push_write(p(1), Loc(0), Value::Int(2));
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(2));
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
    b.push_read(p(3), Loc(1), ReadLabel::Causal, Value::Int(2));
    b.push_read(p(3), Loc(1), ReadLabel::Causal, Value::Int(1));
    b.build().expect("litmus history is well-formed")
}

/// A FIFO (per-writer order) violation:
///
/// ```text
/// p0: w(x)1; w(x)2
/// p1: r(x)2; r(x)1
/// ```
///
/// Rejected even by *PRAM*.
pub fn fifo_violation() -> History {
    let mut b = HistoryBuilder::new(2);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_write(p(0), Loc(0), Value::Int(2));
    b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(2));
    b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(1));
    b.build().expect("litmus history is well-formed")
}

/// A three-way lock handoff where only the *transitive* critical-section
/// predecessor wrote the data:
///
/// ```text
/// p0: wl; w(x)1; wu
/// p1: wl; w(y)2; wu      <- touches only y
/// p2: wl; r(x)0; wu      <- stale x
/// ```
///
/// *PRAM* accepts it (a PRAM read in a critical section observes only the
/// immediately preceding holder — Section 6); *causal memory* rejects it.
pub fn lock_transitive_chain() -> History {
    use LockMode::Write as W;
    let l = LockId(0);
    let mut b = HistoryBuilder::new(3);
    b.push_lock(p(0), l, W);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_unlock(p(0), l, W);
    b.push_lock(p(1), l, W);
    b.push_write(p(1), Loc(1), Value::Int(2));
    b.push_unlock(p(1), l, W);
    b.push_lock(p(2), l, W);
    b.push_read(p(2), Loc(0), ReadLabel::Pram, Value::Int(0));
    b.push_unlock(p(2), l, W);
    b.build().expect("litmus history is well-formed")
}

/// The operations of [`figure1`], named for assertions and pretty
/// printing.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The constructed history.
    pub history: History,
    /// `rl/ru` pairs of the first (read) epoch, one per reader process.
    pub first_readers: Vec<(OpId, OpId)>,
    /// The write lock/unlock pair.
    pub writer: (OpId, OpId),
    /// `rl/ru` pairs of the second (read) epoch.
    pub second_readers: Vec<(OpId, OpId)>,
    /// Barrier operations of the single round, one per process.
    pub barrier: Vec<OpId>,
    /// One representative operation of phase `i` (before the barrier).
    pub phase_i_op: OpId,
    /// One representative operation of phase `i+1` (after the barrier).
    pub phase_i1_op: OpId,
}

/// Reconstructs **Figure 1** of the paper: two concurrent read-locked
/// sections, a write-locked section, two more read-locked sections, and a
/// barrier separating computation phases.
///
/// The figure illustrates the lock and barrier synchronization orders:
/// read epochs are ordered around the write epoch, reader pairs within an
/// epoch stay unordered, and every phase-`i` operation precedes every
/// phase-`i+1` operation through the barrier.
pub fn figure1() -> Figure1 {
    use LockMode::{Read as R, Write as W};
    let l = LockId(0);
    let bar = BarrierId(0);
    let mut b = HistoryBuilder::new(3);

    // Phase i: two concurrent readers (p0, p1), then a writer (p2), then
    // two more readers (p0, p1) — the diagram's left-to-right order.
    let rl0 = b.push_lock(p(0), l, R);
    let rl1 = b.push_lock(p(1), l, R);
    let (w_x, _) = b.push_write(p(2), Loc(1), Value::Int(10)); // phase-i work
    let ru0 = b.push_unlock(p(0), l, R);
    let ru1 = b.push_unlock(p(1), l, R);
    let wl = b.push_lock(p(2), l, W);
    let wu = b.push_unlock(p(2), l, W);
    let rl0b = b.push_lock(p(0), l, R);
    let rl1b = b.push_lock(p(1), l, R);
    let ru0b = b.push_unlock(p(0), l, R);
    let ru1b = b.push_unlock(p(1), l, R);

    let b0 = b.push_barrier(p(0), bar, BarrierRound(0));
    let b1 = b.push_barrier(p(1), bar, BarrierRound(0));
    let b2 = b.push_barrier(p(2), bar, BarrierRound(0));

    // Phase i+1: a read that must observe phase-i work.
    let r_after = b.push_read(p(0), Loc(1), ReadLabel::Pram, Value::Int(10));

    Figure1 {
        history: b.build().expect("figure 1 history is well-formed"),
        first_readers: vec![(rl0, ru0), (rl1, ru1)],
        writer: (wl, wu),
        second_readers: vec![(rl0b, ru0b), (rl1b, ru1b)],
        barrier: vec![b0, b1, b2],
        phase_i_op: w_x,
        phase_i1_op: r_after,
    }
}

/// An entry-consistent transfer: all accesses to `x` under lock `l0`,
/// causal reads — sequentially consistent by Corollary 1.
pub fn entry_consistent_transfer() -> History {
    use LockMode::{Read as R, Write as W};
    let l = LockId(0);
    let mut b = HistoryBuilder::new(3);
    b.push_lock(p(0), l, W);
    b.push_write(p(0), Loc(0), Value::Int(100));
    b.push_unlock(p(0), l, W);
    b.push_lock(p(1), l, W);
    b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(100));
    b.push_write(p(1), Loc(0), Value::Int(50));
    b.push_unlock(p(1), l, W);
    b.push_lock(p(2), l, R);
    b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(50));
    b.push_unlock(p(2), l, R);
    b.build().expect("litmus history is well-formed")
}

/// A two-phase barrier program in the shape of Figure 2: phase 0 writes
/// per-process slots, the barrier flushes, phase 1 reads them crosswise
/// with PRAM reads — sequentially consistent by Corollary 2.
pub fn barrier_phase_program() -> History {
    let bar = BarrierId(0);
    let mut b = HistoryBuilder::new(2);
    b.push_write(p(0), Loc(0), Value::Int(1));
    b.push_write(p(1), Loc(1), Value::Int(2));
    b.push_barrier(p(0), bar, BarrierRound(0));
    b.push_barrier(p(1), bar, BarrierRound(0));
    b.push_read(p(0), Loc(1), ReadLabel::Pram, Value::Int(2));
    b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(1));
    b.build().expect("litmus history is well-formed")
}

/// The producer/consumer await idiom (Section 3.1.3): the producer writes
/// data then a flag; the consumer awaits the flag and reads the data with
/// a PRAM read — legal because `↦await` orders the flag write before the
/// await.
pub fn producer_consumer_await() -> History {
    let mut b = HistoryBuilder::new(2);
    b.push_write(p(0), Loc(0), Value::Int(42)); // data
    b.push_write(p(0), Loc(1), Value::Int(1)); // flag
    b.push_await(p(1), Loc(1), Value::Int(1));
    b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(42));
    b.build().expect("litmus history is well-formed")
}

/// The counter-object Cholesky idiom (Section 5.3): two processes
/// decrement a dependency count initialized to 2; a third awaits zero.
pub fn counter_await() -> History {
    let mut b = HistoryBuilder::new(3);
    b.set_initial(Loc(0), Value::Int(2));
    let (_, u0) = b.push_update(p(0), Loc(0), -1);
    let (_, u1) = b.push_update(p(1), Loc(0), -1);
    b.push(
        p(2),
        crate::op::OpKind::Await { loc: Loc(0), value: Value::Int(0), writers: vec![u0, u1] },
    );
    b.build().expect("litmus history is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_causal, check_mixed, check_pram};
    use crate::commute::check_theorem1;
    use crate::sc::{check_sequential, ScVerdict};
    use crate::Causality;

    #[test]
    fn causality_chain_classification() {
        let h = causality_chain(ReadLabel::Pram);
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_err());
        assert!(check_mixed(&h).is_ok(), "labeled PRAM: allowed");
        let h = causality_chain(ReadLabel::Causal);
        assert!(check_mixed(&h).is_err(), "labeled causal: rejected");
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn store_buffer_classification() {
        let h = store_buffer();
        assert!(check_causal(&h).is_ok());
        assert!(check_pram(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn write_order_disagreement_classification() {
        let h = write_order_disagreement();
        assert!(check_causal(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn iriw_classification() {
        let h = iriw();
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_ok());
        assert!(check_mixed(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn wrc_classification() {
        let h = wrc(ReadLabel::Pram);
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_err());
        assert!(check_mixed(&h).is_ok(), "labeled PRAM: allowed");
        let h = wrc(ReadLabel::Causal);
        assert!(check_mixed(&h).is_err(), "labeled causal: rejected");
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn two_plus_two_w_classification() {
        let h = two_plus_two_w();
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_ok());
        assert!(check_mixed(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn fifo_violation_classification() {
        let h = fifo_violation();
        assert!(check_pram(&h).is_err());
        assert!(check_causal(&h).is_err());
    }

    #[test]
    fn lock_chain_classification() {
        let h = lock_transitive_chain();
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_err());
        assert!(check_mixed(&h).is_ok(), "read is labeled PRAM");
    }

    #[test]
    fn figure1_synchronization_orders() {
        let fig = figure1();
        let h = &fig.history;
        let cz = Causality::new(h).unwrap();

        // Readers of one epoch are mutually unordered.
        let (rl0, _) = fig.first_readers[0];
        let (rl1, ru1) = fig.first_readers[1];
        assert!(cz.concurrent(rl0, rl1));
        assert!(cz.concurrent(rl0, ru1));

        // The write epoch is ordered after the first readers and before
        // the second.
        let (wl, wu) = fig.writer;
        assert!(cz.precedes(rl0, wl));
        assert!(cz.precedes(ru1, wl));
        let (rl0b, _) = fig.second_readers[0];
        assert!(cz.precedes(wu, rl0b));
        assert!(cz.precedes(rl0, rl0b), "epoch order is transitive");

        // Barrier separates phases: phase-i op precedes every barrier op
        // and every phase-i+1 op.
        for &b in &fig.barrier {
            assert!(cz.precedes(fig.phase_i_op, b));
        }
        assert!(cz.precedes(fig.phase_i_op, fig.phase_i1_op));
        // Barrier ops of one round stay mutually unordered.
        assert!(cz.concurrent(fig.barrier[0], fig.barrier[1]));

        // The history itself is mixed consistent.
        assert!(check_mixed(h).is_ok());
    }

    #[test]
    fn entry_consistent_transfer_is_sc() {
        let h = entry_consistent_transfer();
        assert!(check_causal(&h).is_ok());
        assert!(check_theorem1(&h).unwrap().applies());
        assert!(check_sequential(&h).unwrap().is_sc());
        let mapping = crate::programs::infer_lock_mapping(&h).unwrap().unwrap();
        crate::programs::check_entry_consistent(&h, &mapping).unwrap();
    }

    #[test]
    fn barrier_phase_program_is_sc() {
        let h = barrier_phase_program();
        assert!(check_pram(&h).is_ok());
        crate::programs::check_pram_consistent_program(&h).unwrap();
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn producer_consumer_await_is_legal() {
        let h = producer_consumer_await();
        assert!(check_pram(&h).is_ok());
        assert!(check_causal(&h).is_ok());
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn counter_await_is_legal() {
        let h = counter_await();
        assert!(check_mixed(&h).is_ok());
        assert!(check_sequential(&h).unwrap().is_sc());
    }
}
