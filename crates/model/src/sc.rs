//! Sequential consistency (Definition 1): serialization replay and an
//! exact, memoized search for a sequential serialization.
//!
//! A history is *sequentially consistent* if at least one serialization — a
//! total order on its operations respecting the causality relation `;` — is
//! a *sequential history*, i.e. every read returns the value written by the
//! most recent write in that order (Section 3.2 of the paper).
//!
//! Deciding this is NP-hard in general, so [`check_sequential`] is an exact
//! backtracking search with state memoization and an explicit budget; it is
//! intended for the litmus-sized histories used in tests. For polynomially
//! checkable *sufficient* conditions use the Theorem 1 machinery in
//! [`crate::commute`].

use std::collections::{HashMap, HashSet};

use crate::causality::{Causality, CausalityError};
use crate::history::History;
use crate::ids::{Loc, OpId};
use crate::op::OpKind;
use crate::value::Value;

/// Outcome of the sequential-consistency search.
#[derive(Clone, Debug, PartialEq)]
pub enum ScVerdict {
    /// A sequential serialization exists; the witness order is returned.
    SequentiallyConsistent(Vec<OpId>),
    /// No serialization of the history is sequential.
    NotSequentiallyConsistent,
    /// The search exhausted its state budget before deciding.
    Unknown,
}

impl ScVerdict {
    /// Returns `true` for [`ScVerdict::SequentiallyConsistent`].
    pub fn is_sc(&self) -> bool {
        matches!(self, ScVerdict::SequentiallyConsistent(_))
    }
}

/// Why replaying a serialization failed at some position.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The order is not a permutation of the history's operations.
    NotAPermutation,
    /// The order violates the causality relation at this position.
    CausalityViolated {
        /// Index in the order where the violation was detected.
        position: usize,
    },
    /// A read or await returned a value different from the current memory.
    ValueMismatch {
        /// Index in the order of the offending operation.
        position: usize,
        /// The value memory held at that point.
        expected: Value,
    },
    /// An update was applied to a non-integer value.
    UpdateOnNonInteger {
        /// Index in the order of the offending operation.
        position: usize,
    },
}

/// Replays `order` as a candidate sequential history.
///
/// Checks that the order is a permutation of the operations, respects `;`,
/// and that every read and await observes the most recent write.
///
/// # Errors
///
/// Returns the first [`ReplayError`] encountered.
pub fn replay_serialization(
    h: &History,
    causality: &Causality<'_>,
    order: &[OpId],
) -> Result<(), ReplayError> {
    if order.len() != h.len() {
        return Err(ReplayError::NotAPermutation);
    }
    let mut seen = vec![false; h.len()];
    for &o in order {
        if seen[o.index()] {
            return Err(ReplayError::NotAPermutation);
        }
        seen[o.index()] = true;
    }
    // Causality: for each pair a before b in the order, we must not have
    // b ; a. Checking all pairs is O(n^2) which is fine at litmus scale.
    let mut pos = vec![0usize; h.len()];
    for (i, &o) in order.iter().enumerate() {
        pos[o.index()] = i;
    }
    for (id, _) in h.iter() {
        for (id2, _) in h.iter() {
            if causality.precedes(id, id2) && pos[id.index()] > pos[id2.index()] {
                return Err(ReplayError::CausalityViolated { position: pos[id.index()] });
            }
        }
    }

    let mut mem: HashMap<Loc, Value> = HashMap::new();
    let read_mem =
        |mem: &HashMap<Loc, Value>, loc: Loc| mem.get(&loc).copied().unwrap_or(h.initial(loc));
    for (i, &o) in order.iter().enumerate() {
        match &h.op(o).kind {
            OpKind::Read { loc, value, .. } | OpKind::Await { loc, value, .. } => {
                let cur = read_mem(&mem, *loc);
                if cur != *value {
                    return Err(ReplayError::ValueMismatch { position: i, expected: cur });
                }
            }
            OpKind::Write { loc, value, .. } => {
                mem.insert(*loc, *value);
            }
            OpKind::Update { loc, delta, .. } => {
                let cur = read_mem(&mem, *loc);
                let Some(next) = cur.checked_add(*delta) else {
                    return Err(ReplayError::UpdateOnNonInteger { position: i });
                };
                mem.insert(*loc, next);
            }
            OpKind::Lock { .. } | OpKind::Unlock { .. } | OpKind::Barrier { .. } => {}
        }
    }
    Ok(())
}

/// Default state budget for [`check_sequential`].
pub const DEFAULT_STATE_BUDGET: usize = 2_000_000;

/// Searches for a sequential serialization of `h` with the default budget.
///
/// # Errors
///
/// Returns a [`CausalityError`] if `;` is cyclic.
pub fn check_sequential(h: &History) -> Result<ScVerdict, CausalityError> {
    check_sequential_with_budget(h, DEFAULT_STATE_BUDGET)
}

/// Searches for a sequential serialization of `h`, visiting at most
/// `max_states` distinct search states.
///
/// The search walks serializations respecting `;` and prunes any prefix in
/// which a read or await disagrees with the current memory; `(executed
/// set, memory)` pairs are memoized so equivalent prefixes are explored
/// once.
///
/// # Errors
///
/// Returns a [`CausalityError`] if `;` is cyclic.
pub fn check_sequential_with_budget(
    h: &History,
    max_states: usize,
) -> Result<ScVerdict, CausalityError> {
    let causality = Causality::new(h)?;
    let n = h.len();
    if n == 0 {
        return Ok(ScVerdict::SequentiallyConsistent(Vec::new()));
    }

    // Build the generating DAG of ; (same reachability, fewer edges).
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];
    let add = |edges: &[(OpId, OpId)], succs: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>| {
        for &(a, b) in edges {
            succs[a.index()].push(b.0);
            indeg[b.index()] += 1;
        }
    };
    add(h.po_edges(), &mut succs, &mut indeg);
    add(causality.lock_edges(), &mut succs, &mut indeg);
    add(causality.bar_edges(), &mut succs, &mut indeg);
    add(causality.await_edges(), &mut succs, &mut indeg);
    add(causality.rf_edges(), &mut succs, &mut indeg);

    let mut searcher = Searcher {
        h,
        succs,
        indeg,
        mem: HashMap::new(),
        done: vec![false; n],
        order: Vec::with_capacity(n),
        visited: HashSet::new(),
        states: 0,
        max_states,
    };
    let found = searcher.dfs();
    if found {
        Ok(ScVerdict::SequentiallyConsistent(searcher.order))
    } else if searcher.states >= searcher.max_states {
        Ok(ScVerdict::Unknown)
    } else {
        Ok(ScVerdict::NotSequentiallyConsistent)
    }
}

/// Memoization key: a bitset of completed ops plus the memory contents
/// they produced.
type StateKey = (Vec<u64>, Vec<(Loc, Value)>);

struct Searcher<'h> {
    h: &'h History,
    succs: Vec<Vec<u32>>,
    indeg: Vec<u32>,
    mem: HashMap<Loc, Value>,
    done: Vec<bool>,
    order: Vec<OpId>,
    visited: HashSet<StateKey>,
    states: usize,
    max_states: usize,
}

impl Searcher<'_> {
    fn state_key(&self) -> StateKey {
        let mut bits = vec![0u64; self.done.len().div_ceil(64)];
        for (i, &d) in self.done.iter().enumerate() {
            if d {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        let mut mem: Vec<(Loc, Value)> = self.mem.iter().map(|(&l, &v)| (l, v)).collect();
        mem.sort_by_key(|&(l, _)| l);
        (bits, mem)
    }

    fn read_mem(&self, loc: Loc) -> Value {
        self.mem.get(&loc).copied().unwrap_or(self.h.initial(loc))
    }

    /// Returns `true` once a full sequential serialization is found.
    fn dfs(&mut self) -> bool {
        if self.order.len() == self.done.len() {
            return true;
        }
        if self.states >= self.max_states {
            return false;
        }
        self.states += 1;
        if !self.visited.insert(self.state_key()) {
            return false;
        }
        let frontier: Vec<usize> =
            (0..self.done.len()).filter(|&i| !self.done[i] && self.indeg[i] == 0).collect();
        for i in frontier {
            let op = self.h.op(OpId(i as u32));
            // Value constraint and state delta.
            let undo: Option<(Loc, Option<Value>)> = match &op.kind {
                OpKind::Read { loc, value, .. } | OpKind::Await { loc, value, .. } => {
                    if self.read_mem(*loc) != *value {
                        continue;
                    }
                    None
                }
                OpKind::Write { loc, value, .. } => {
                    let prev = self.mem.insert(*loc, *value);
                    Some((*loc, prev))
                }
                OpKind::Update { loc, delta, .. } => {
                    let cur = self.read_mem(*loc);
                    let Some(next) = cur.checked_add(*delta) else {
                        continue;
                    };
                    let prev = self.mem.insert(*loc, next);
                    Some((*loc, prev))
                }
                _ => None,
            };
            self.done[i] = true;
            self.order.push(OpId(i as u32));
            for s in 0..self.succs[i].len() {
                let t = self.succs[i][s] as usize;
                self.indeg[t] -= 1;
            }

            if self.dfs() {
                return true;
            }

            for s in 0..self.succs[i].len() {
                let t = self.succs[i][s] as usize;
                self.indeg[t] += 1;
            }
            self.order.pop();
            self.done[i] = false;
            if let Some((loc, prev)) = undo {
                match prev {
                    Some(v) => {
                        self.mem.insert(loc, v);
                    }
                    None => {
                        self.mem.remove(&loc);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::ProcId;
    use crate::op::ReadLabel;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn empty_history_is_sc() {
        let h = HistoryBuilder::new(0).build().unwrap();
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn single_write_read_is_sc() {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        let verdict = check_sequential(&h).unwrap();
        let ScVerdict::SequentiallyConsistent(order) = &verdict else { panic!("{verdict:?}") };
        let causality = Causality::new(&h).unwrap();
        replay_serialization(&h, &causality, order).unwrap();
    }

    #[test]
    fn read_your_writes_out_of_order_is_not_sc() {
        // p0: w(x)1; w(x)2. p1: r(x)2; r(x)1 — no serialization works.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(0), Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn opposite_orders_of_concurrent_writes_are_not_sc() {
        // Causal but not SC: two observers disagree on the write order.
        let mut b = HistoryBuilder::new(4);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert!(crate::check::check_causal(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn dekker_litmus_all_zero_is_not_sc() {
        // w(x)1; r(y)0 || w(y)1; r(x)0 — the classic store-buffer outcome,
        // forbidden by SC, allowed by causal memory.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(0), Loc(1), ReadLabel::Causal, Value::Int(0));
        b.push_write(p(1), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(0));
        let h = b.build().unwrap();
        assert!(crate::check::check_causal(&h).is_ok());
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }

    #[test]
    fn interleaving_with_constraints_is_found() {
        // p0: w(x)1; w(y)1. p1: r(y)1; w(x)2. p2: r(x)2; r(x)... must
        // order p1's write after p0's both. A consistent outcome:
        let mut b = HistoryBuilder::new(3);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(1), ReadLabel::Causal, Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(2));
        let h = b.build().unwrap();
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn updates_serialize_like_increments() {
        // Two concurrent decrements from 2; a reader sees 0 after awaiting.
        let mut b = HistoryBuilder::new(3);
        b.set_initial(Loc(0), Value::Int(2));
        let (_, u0) = b.push_update(p(0), Loc(0), -1);
        let (_, u1) = b.push_update(p(1), Loc(0), -1);
        b.push(p(2), OpKind::Await { loc: Loc(0), value: Value::Int(0), writers: vec![u0, u1] });
        let h = b.build().unwrap();
        assert!(check_sequential(&h).unwrap().is_sc());
    }

    #[test]
    fn replay_rejects_bad_orders() {
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let r = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        let causality = Causality::new(&h).unwrap();
        // Read before write: value mismatch or causality violation.
        let err = replay_serialization(&h, &causality, &[r, w]).unwrap_err();
        assert!(matches!(err, ReplayError::CausalityViolated { .. }));
        // Wrong length.
        assert_eq!(replay_serialization(&h, &causality, &[w]), Err(ReplayError::NotAPermutation));
        // Duplicates.
        assert_eq!(
            replay_serialization(&h, &causality, &[w, w]),
            Err(ReplayError::NotAPermutation)
        );
    }

    #[test]
    fn replay_detects_value_mismatch() {
        // Two concurrent writes; a read of the first placed after the
        // second in the serialization.
        let mut b = HistoryBuilder::new(3);
        let (w1, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (w2, _) = b.push_write(p(1), Loc(0), Value::Int(2));
        let r = b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        let causality = Causality::new(&h).unwrap();
        // Reads-from makes w1 ; r, but w2 is unordered: w1, w2, r violates
        // the value constraint only.
        let err = replay_serialization(&h, &causality, &[w1, w2, r]).unwrap_err();
        assert!(matches!(err, ReplayError::ValueMismatch { position: 2, .. }));
        replay_serialization(&h, &causality, &[w2, w1, r]).unwrap();
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(1), Value::Int(1));
        b.push_read(p(0), Loc(1), ReadLabel::Causal, Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert_eq!(check_sequential_with_budget(&h, 1).unwrap(), ScVerdict::Unknown);
    }

    #[test]
    fn sc_respects_barriers() {
        // A read of a pre-barrier value placed after the barrier cannot be
        // serialized before the write.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_barrier(p(0), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_barrier(p(1), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(0));
        let h = b.build().unwrap();
        assert_eq!(check_sequential(&h).unwrap(), ScVerdict::NotSequentiallyConsistent);
    }
}
