//! Vector clocks.
//!
//! Section 6 of the paper: "Each process maintains a vector timestamp in
//! order to define the causality between operations. The timestamp is
//! updated after each write operation. Update messages for each variable
//! are broadcast along with the process vector timestamp."
//!
//! Component `i` of a clock counts the *writes of process `p_i`* known to
//! the clock's owner. The protocols in `mc-proto` gate the application of
//! updates and the completion of causal reads on clock dominance.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use crate::ids::ProcId;

/// A vector timestamp over a fixed set of processes.
///
/// # Examples
///
/// ```
/// use mc_model::{ProcId, VClock};
/// let mut a = VClock::new(3);
/// a.tick(ProcId(0));
/// let mut b = VClock::new(3);
/// b.tick(ProcId(1));
/// assert!(!a.dominates(&b));
/// b.merge(&a);
/// assert!(b.dominates(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VClock {
    counts: Vec<u32>,
}

impl VClock {
    /// Creates the zero clock over `n` processes.
    pub fn new(n: usize) -> Self {
        VClock { counts: vec![0; n] }
    }

    /// The number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if the clock covers no processes.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Increments the component of `proc` and returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn tick(&mut self, proc: ProcId) -> u32 {
        let c = &mut self.counts[proc.index()];
        *c += 1;
        *c
    }

    /// Reads the component of `proc`.
    pub fn get(&self, proc: ProcId) -> u32 {
        self.counts[proc.index()]
    }

    /// Sets the component of `proc`.
    pub fn set(&mut self, proc: ProcId, value: u32) {
        self.counts[proc.index()] = value;
    }

    /// Pointwise maximum with `other` (`self := self ⊔ other`).
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn merge(&mut self, other: &VClock) {
        assert_eq!(self.len(), other.len(), "clock length mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = (*a).max(*b);
        }
    }

    /// Returns `true` if `self ≥ other` pointwise.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn dominates(&self, other: &VClock) -> bool {
        assert_eq!(self.len(), other.len(), "clock length mismatch");
        self.counts.iter().zip(&other.counts).all(|(a, b)| a >= b)
    }

    /// The sum of all components: a scalar Lamport-style stamp that
    /// strictly increases along causality (if `a < b` causally then
    /// `a.sum() < b.sum()`), used as a last-writer-wins tie-break base.
    pub fn sum(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Compares two clocks in the causal partial order.
    ///
    /// Returns `None` for concurrent (incomparable) clocks.
    pub fn partial_cmp_causal(&self, other: &VClock) -> Option<Ordering> {
        let ge = self.dominates(other);
        let le = other.dominates(self);
        match (ge, le) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }

    /// Iterates over `(ProcId, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, u32)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| (ProcId(i as u32), c))
    }

    /// The sum of all components (total writes covered).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }
}

impl Index<ProcId> for VClock {
    type Output = u32;

    fn index(&self, proc: ProcId) -> &u32 {
        &self.counts[proc.index()]
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VClock{:?}", self.counts)
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<u32> for VClock {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        VClock { counts: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new(2);
        assert_eq!(c.get(ProcId(0)), 0);
        assert_eq!(c.tick(ProcId(0)), 1);
        assert_eq!(c.tick(ProcId(0)), 2);
        assert_eq!(c.get(ProcId(0)), 2);
        assert_eq!(c[ProcId(1)], 0);
        c.set(ProcId(1), 7);
        assert_eq!(c[ProcId(1)], 7);
        assert_eq!(c.total(), 9);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let a: VClock = [3, 0, 1].into_iter().collect();
        let mut b: VClock = [1, 5, 1].into_iter().collect();
        b.merge(&a);
        let expect: VClock = [3, 5, 1].into_iter().collect();
        assert_eq!(b, expect);
    }

    #[test]
    fn dominance_and_concurrency() {
        let a: VClock = [2, 1].into_iter().collect();
        let b: VClock = [1, 1].into_iter().collect();
        let c: VClock = [1, 2].into_iter().collect();
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Greater));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_causal(&a), Some(Ordering::Equal));
        assert_eq!(a.partial_cmp_causal(&c), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = VClock::new(2);
        let b = VClock::new(3);
        let _ = a.dominates(&b);
    }

    #[test]
    fn display_and_iter() {
        let c: VClock = [1, 0, 4].into_iter().collect();
        assert_eq!(c.to_string(), "⟨1,0,4⟩");
        let pairs: Vec<(ProcId, u32)> = c.iter().collect();
        assert_eq!(pairs, vec![(ProcId(0), 1), (ProcId(1), 0), (ProcId(2), 4)]);
        assert!(!c.is_empty());
        assert!(VClock::new(0).is_empty());
    }

    #[test]
    fn merge_laws() {
        // Commutative, associative, idempotent — checked on fixed samples
        // (the proptest suite covers random clocks).
        let a: VClock = [1, 4, 2].into_iter().collect();
        let b: VClock = [3, 0, 2].into_iter().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a);
        assert!(ab.dominates(&a) && ab.dominates(&b));
    }
}
