//! Values carried by memory operations.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A value stored in a shared memory location.
///
/// The model is value-agnostic; the applications in the paper need integers
/// (phase counters, dependency counts), floating-point numbers (matrix
/// entries, field samples) and booleans (`done` flags), so the library ships
/// a small dynamic value type covering those.
///
/// Floating-point values compare **by bit pattern** so that `Value` can be
/// `Eq + Hash` — the model requires deciding whether a read returned the
/// value of a particular write, and bitwise identity is the right notion for
/// that (a write stores exact bits; NaNs with equal bits are equal).
///
/// # Examples
///
/// ```
/// use mc_model::Value;
/// assert_eq!(Value::from(3i64), Value::Int(3));
/// assert_eq!(Value::from(1.5f64).as_f64(), Some(1.5));
/// assert_ne!(Value::F64(0.0), Value::F64(-0.0)); // bitwise comparison
/// ```
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// A signed integer.
    Int(i64),
    /// A double-precision float (compared bitwise).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The default initial value of every memory location.
    pub const INITIAL: Value = Value::Int(0);

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is an [`Value::F64`].
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the integer payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::Int`].
    pub fn expect_i64(self) -> i64 {
        self.as_i64().unwrap_or_else(|| panic!("expected Value::Int, got {self:?}"))
    }

    /// Returns the float payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::F64`].
    pub fn expect_f64(self) -> f64 {
        self.as_f64().unwrap_or_else(|| panic!("expected Value::F64, got {self:?}"))
    }

    /// Returns the boolean payload or panics with a descriptive message.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Bool`].
    pub fn expect_bool(self) -> bool {
        self.as_bool().unwrap_or_else(|| panic!("expected Value::Bool, got {self:?}"))
    }

    /// Applies a commutative increment to this value.
    ///
    /// This is the semantics of the abstract "counter object" operations of
    /// Section 5.3 of the paper (read / write / decrement): an integer
    /// delta applies to an integer payload, a float delta to a float
    /// payload. Mismatched kinds return `None`.
    pub fn checked_add_delta(self, delta: i64) -> Option<Value> {
        self.checked_add(Value::Int(delta))
    }

    /// Applies a commutative increment carried as a [`Value`].
    ///
    /// `Int + Int` and `F64 + F64` succeed; anything else returns `None`.
    /// (The paper's Cholesky optimization decrements *matrix entries*, so
    /// float counters are first-class.)
    pub fn checked_add(self, delta: Value) -> Option<Value> {
        match (self, delta) {
            (Value::Int(v), Value::Int(d)) => Some(Value::Int(v.wrapping_add(d))),
            (Value::F64(v), Value::F64(d)) => Some(Value::F64(v + d)),
            _ => None,
        }
    }

    /// Returns `true` if applying this value as a delta is a no-op.
    pub fn is_zero_delta(self) -> bool {
        matches!(self, Value::Int(0)) || matches!(self, Value::F64(d) if d == 0.0)
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::INITIAL
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::F64(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Bool(v) => {
                2u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), None);
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_i64(), None);
        assert_eq!(Value::Int(7).expect_i64(), 7);
        assert_eq!(Value::F64(1.0).expect_f64(), 1.0);
        assert!(Value::Bool(true).expect_bool());
    }

    #[test]
    #[should_panic(expected = "expected Value::Int")]
    fn expect_i64_panics_on_float() {
        Value::F64(1.0).expect_i64();
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::F64(f64::NAN), Value::F64(f64::NAN));
        assert_ne!(Value::F64(0.0), Value::F64(-0.0));
        assert_eq!(Value::F64(1.5), Value::F64(1.5));
    }

    #[test]
    fn cross_kind_inequality() {
        assert_ne!(Value::Int(0), Value::Bool(false));
        assert_ne!(Value::Int(1), Value::F64(1.0));
    }

    #[test]
    fn hashing_respects_equality() {
        let mut s = HashSet::new();
        s.insert(Value::F64(f64::NAN));
        assert!(s.contains(&Value::F64(f64::NAN)));
        s.insert(Value::Int(1));
        s.insert(Value::Int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn delta_application() {
        assert_eq!(Value::Int(5).checked_add_delta(-2), Some(Value::Int(3)));
        assert_eq!(Value::F64(1.0).checked_add_delta(1), None);
        assert_eq!(Value::Int(i64::MAX).checked_add_delta(1), Some(Value::Int(i64::MIN)));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::F64(0.5).to_string(), "0.5");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::default(), Value::INITIAL);
    }
}
