//! Identifier newtypes used throughout the model.
//!
//! Every entity that the PODC '94 model talks about — processes, memory
//! locations, lock objects, barrier rounds, operations, and writes — gets its
//! own newtype so that indices cannot be confused with one another
//! (C-NEWTYPE).

use std::fmt;

/// Identifier of a process `p_i`.
///
/// Processes are numbered densely from zero. The special
/// [`ProcId::INIT`] pseudo-process owns the implicit initial writes that give
/// every location its starting value.
///
/// # Examples
///
/// ```
/// use mc_model::ProcId;
/// let p = ProcId(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(format!("{p}"), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The pseudo-process that "performs" the initial write of every memory
    /// location before the execution starts.
    pub const INIT: ProcId = ProcId(u32::MAX);

    /// Returns the dense index of this process.
    ///
    /// # Panics
    ///
    /// Panics if called on [`ProcId::INIT`], which has no dense index.
    pub fn index(self) -> usize {
        assert!(self != ProcId::INIT, "ProcId::INIT has no dense index");
        self.0 as usize
    }

    /// Returns `true` if this is the initial-value pseudo-process.
    pub fn is_init(self) -> bool {
        self == ProcId::INIT
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_init() {
            write!(f, "p_init")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Identifier of a shared memory location `x`.
///
/// Applications typically allocate locations through a
/// [`mixed-consistency`](https://docs.rs) variable space; the model only
/// cares about identity.
///
/// # Examples
///
/// ```
/// use mc_model::Loc;
/// assert_eq!(format!("{}", Loc(7)), "x7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc(pub u32);

impl Loc {
    /// Returns the dense index of this location.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a read/write lock object `ℓ`.
///
/// Lock objects live in a namespace disjoint from memory locations
/// (Section 3 of the paper: "the lock and barrier operations access a set of
/// synchronization objects disjoint from the memory locations").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

impl LockId {
    /// Returns the dense index of this lock object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a barrier object.
///
/// A history may use several independent barrier objects (e.g. one per
/// process subgroup — the paper's parenthetical in Section 3.1.2); rounds of
/// the same object are numbered by [`BarrierRound`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierId(pub u32);

impl BarrierId {
    /// Returns the dense index of this barrier object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The round number `k` of a barrier operation `b^k_j`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierRound(pub u32);

impl BarrierRound {
    /// Returns the round as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BarrierRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Index of an operation within a [`History`](crate::History).
///
/// `OpId`s are dense indices into the history's operation table and are the
/// node identifiers of every relation the model computes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

impl OpId {
    /// Returns the dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Globally unique identity of a write operation.
///
/// The paper assumes "all write operations are associated with distinct
/// values" so that the reads-from relation is well defined. Instead of
/// restricting values we tag every write with the identity of its writer and
/// a per-writer sequence number; the runtime records, for every read, the
/// `WriteId` it returned.
///
/// `seq` is 1-based; the [`WriteId::initial`] constructor builds the identity
/// of the implicit initial write of a location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WriteId {
    /// The process that issued the write (or [`ProcId::INIT`]).
    pub proc: ProcId,
    /// 1-based per-process write sequence number. For initial writes this is
    /// the location index.
    pub seq: u32,
}

impl WriteId {
    /// Creates a new write identity.
    pub fn new(proc: ProcId, seq: u32) -> Self {
        WriteId { proc, seq }
    }

    /// The identity of the implicit initial write of location `loc`.
    pub fn initial(loc: Loc) -> Self {
        WriteId { proc: ProcId::INIT, seq: loc.0 }
    }

    /// Returns `true` if this identifies the initial value of a location.
    pub fn is_initial(self) -> bool {
        self.proc.is_init()
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_initial() {
            write!(f, "w_init(x{})", self.seq)
        } else {
            write!(f, "w[{}#{}]", self.proc, self.seq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_display_and_index() {
        assert_eq!(ProcId(0).index(), 0);
        assert_eq!(ProcId(5).to_string(), "p5");
        assert_eq!(ProcId::INIT.to_string(), "p_init");
        assert!(ProcId::INIT.is_init());
        assert!(!ProcId(3).is_init());
    }

    #[test]
    #[should_panic(expected = "no dense index")]
    fn init_proc_has_no_index() {
        let _ = ProcId::INIT.index();
    }

    #[test]
    fn write_id_initial() {
        let w = WriteId::initial(Loc(4));
        assert!(w.is_initial());
        assert_eq!(w.seq, 4);
        assert_eq!(w.to_string(), "w_init(x4)");
        let w2 = WriteId::new(ProcId(1), 9);
        assert!(!w2.is_initial());
        assert_eq!(w2.to_string(), "w[p1#9]");
    }

    #[test]
    fn id_displays() {
        assert_eq!(Loc(3).to_string(), "x3");
        assert_eq!(LockId(2).to_string(), "l2");
        assert_eq!(BarrierId(1).to_string(), "b1");
        assert_eq!(BarrierRound(6).to_string(), "k6");
        assert_eq!(OpId(8).to_string(), "o8");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Loc(1));
        s.insert(Loc(1));
        s.insert(Loc(2));
        assert_eq!(s.len(), 2);
        assert!(OpId(1) < OpId(2));
        assert!(ProcId(0) < ProcId(1));
    }
}
