//! Directed-graph utilities: bitset reachability, transitive closure and
//! transitive reduction over DAGs.
//!
//! The consistency definitions of the paper are all phrased in terms of
//! reachability queries over relations on operations (`;`, `;i,C`, `;i,P`),
//! and the PRAM construction additionally needs the *transitive reduction*
//! of the synchronization orders ("removing the transitive edges",
//! Section 3.2). Histories that checkers handle are a few thousand
//! operations, so a dense bitset representation is both the simplest and
//! the fastest choice.

use std::fmt;

/// A dense `n × n` boolean matrix backed by `u64` words.
///
/// Row `i` is the set of columns `j` with `m[i][j] = true`. Used for
/// adjacency and reachability.
///
/// # Examples
///
/// ```
/// use mc_model::graph::BitMatrix;
/// let mut m = BitMatrix::new(3);
/// m.set(0, 1);
/// assert!(m.get(0, 1));
/// assert!(!m.get(1, 0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-false `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// The dimension of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets entry `(i, j)` to true.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.bits[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`).
    ///
    /// # Panics
    ///
    /// Panics if either row index is out of bounds.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n, "index out of bounds");
        if src == dst {
            return;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        // Split the borrow manually; rows never alias because src != dst.
        for k in 0..w {
            let v = self.bits[s + k];
            self.bits[d + k] |= v;
        }
    }

    /// Iterates over the set columns of row `i` in increasing order.
    pub fn row_iter(&self, i: usize) -> RowIter<'_> {
        assert!(i < self.n, "index out of bounds");
        RowIter {
            words: &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row],
            word_idx: 0,
            current: if self.words_per_row == 0 { 0 } else { self.bits[i * self.words_per_row] },
            n: self.n,
        }
    }

    /// Counts the set bits of row `i`.
    pub fn row_count(&self, i: usize) -> usize {
        self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            write!(f, "  {i}: ")?;
            for j in self.row_iter(i) {
                write!(f, "{j} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Iterator over the set columns of a [`BitMatrix`] row.
#[derive(Debug)]
pub struct RowIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    n: usize,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let j = self.word_idx * 64 + bit;
                return if j < self.n { Some(j) } else { None };
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A directed graph on `n` nodes stored as adjacency lists.
///
/// Node identifiers are dense `usize` indices; callers translate
/// [`OpId`](crate::OpId)s. Parallel edges are tolerated (deduplicated on
/// demand).
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    adj: Vec<Vec<u32>>,
}

/// Error returned when an algorithm requires a DAG but the graph has a
/// directed cycle.
///
/// The causality relation of a history must be acyclic (Section 3: "we
/// restrict our attention to histories with acyclic causality relations");
/// a cycle indicates a corrupted or adversarial recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to lie on a cycle.
    pub node: usize,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "directed cycle through node {}", self.node)
    }
}

impl std::error::Error for CycleError {}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Digraph { adj: vec![Vec::new(); n] }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.len() && v < self.len(), "node out of bounds");
        self.adj[u].push(v as u32);
    }

    /// The successors of `u` (possibly with duplicates).
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// All edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// The number of edges (counting duplicates).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Computes a topological order of the nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &self.adj[u] {
                let v = v as usize;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if order.len() != n {
            let node = (0..n).find(|&v| indeg[v] > 0).unwrap_or(0);
            return Err(CycleError { node });
        }
        Ok(order)
    }

    /// Computes the strict transitive closure as a [`BitMatrix`]:
    /// `closure[u][v]` iff there is a path of length ≥ 1 from `u` to `v`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn transitive_closure(&self) -> Result<BitMatrix, CycleError> {
        let order = self.topo_order()?;
        let n = self.len();
        let mut reach = BitMatrix::new(n);
        // Process in reverse topological order so successors are finished.
        for &u in order.iter().rev() {
            // Collect first to avoid borrowing issues; successor lists are
            // short relative to row widths.
            for &v in &self.adj[u] {
                let v = v as usize;
                reach.or_row_into(v, u);
                reach.set(u, v);
            }
        }
        Ok(reach)
    }

    /// Computes the transitive reduction of this DAG: the unique minimal
    /// edge set with the same reachability.
    ///
    /// An edge `(u, v)` is *transitive* — and removed — iff some other
    /// successor `z` of `u` reaches `v`. This is exactly the paper's
    /// "removing the transitive edges" step used to define the PRAM
    /// synchronization orders `↦p_lock`, `↦p_bar`, `↦p_await`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn transitive_reduction(&self) -> Result<Digraph, CycleError> {
        let closure = self.transitive_closure()?;
        let mut out = Digraph::new(self.len());
        for u in 0..self.len() {
            let mut kept: Vec<usize> = Vec::new();
            let mut succs: Vec<usize> = self.adj[u].iter().map(|&v| v as usize).collect();
            succs.sort_unstable();
            succs.dedup();
            for &v in &succs {
                let transitive = succs.iter().any(|&z| z != v && z != u && closure.get(z, v));
                if !transitive {
                    kept.push(v);
                }
            }
            for v in kept {
                out.add_edge(u, v);
            }
        }
        Ok(out)
    }
}

impl FromIterator<(usize, usize)> for Digraph {
    /// Builds a graph sized to the largest mentioned node.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let edges: Vec<(usize, usize)> = iter.into_iter().collect();
        let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        let mut g = Digraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmatrix_set_get() {
        let mut m = BitMatrix::new(130);
        assert!(!m.is_empty());
        m.set(0, 0);
        m.set(0, 64);
        m.set(129, 129);
        assert!(m.get(0, 0));
        assert!(m.get(0, 64));
        assert!(m.get(129, 129));
        assert!(!m.get(0, 1));
        assert_eq!(m.row_count(0), 2);
        let cols: Vec<usize> = m.row_iter(0).collect();
        assert_eq!(cols, vec![0, 64]);
    }

    #[test]
    fn bitmatrix_or_row() {
        let mut m = BitMatrix::new(70);
        m.set(1, 5);
        m.set(1, 69);
        m.or_row_into(1, 0);
        assert!(m.get(0, 5) && m.get(0, 69));
        // Self-or is a no-op.
        m.or_row_into(0, 0);
        assert_eq!(m.row_count(0), 2);
    }

    #[test]
    fn topo_order_on_chain() {
        let g: Digraph = [(0, 1), (1, 2), (2, 3)].into_iter().collect();
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn topo_detects_cycle() {
        let g: Digraph = [(0, 1), (1, 2), (2, 0)].into_iter().collect();
        assert!(g.topo_order().is_err());
        assert!(g.transitive_closure().is_err());
        let err = g.transitive_reduction().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn closure_of_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let g: Digraph = [(0, 1), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        let c = g.transitive_closure().unwrap();
        assert!(c.get(0, 1) && c.get(0, 2) && c.get(0, 3));
        assert!(c.get(1, 3) && c.get(2, 3));
        assert!(!c.get(1, 2) && !c.get(2, 1));
        assert!(!c.get(3, 0));
        assert!(!c.get(0, 0)); // strict
    }

    #[test]
    fn closure_is_strict_on_dag() {
        let g: Digraph = [(0, 1)].into_iter().collect();
        let c = g.transitive_closure().unwrap();
        assert!(!c.get(0, 0));
        assert!(!c.get(1, 1));
    }

    #[test]
    fn reduction_removes_shortcut() {
        // 0 -> 1 -> 2 plus the transitive shortcut 0 -> 2.
        let g: Digraph = [(0, 1), (1, 2), (0, 2)].into_iter().collect();
        let r = g.transitive_reduction().unwrap();
        let edges: Vec<(usize, usize)> = r.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn reduction_keeps_diamond() {
        let g: Digraph = [(0, 1), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        let r = g.transitive_reduction().unwrap();
        assert_eq!(r.edge_count(), 4);
    }

    #[test]
    fn reduction_handles_duplicate_edges() {
        let g: Digraph = [(0, 1), (0, 1), (1, 2), (0, 2)].into_iter().collect();
        let r = g.transitive_reduction().unwrap();
        let edges: Vec<(usize, usize)> = r.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn reduction_preserves_reachability() {
        // Random-ish layered DAG; reduction must preserve the closure.
        let mut g = Digraph::new(12);
        let edges = [
            (0, 3),
            (0, 4),
            (1, 4),
            (2, 5),
            (3, 6),
            (4, 6),
            (4, 7),
            (5, 8),
            (6, 9),
            (7, 9),
            (8, 10),
            (9, 11),
            (0, 6),
            (1, 9),
            (2, 10),
            (3, 9),
            (0, 11),
        ];
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        let before = g.transitive_closure().unwrap();
        let red = g.transitive_reduction().unwrap();
        let after = red.transitive_closure().unwrap();
        for u in 0..12 {
            for v in 0..12 {
                assert_eq!(before.get(u, v), after.get(u, v), "({u},{v})");
            }
        }
        assert!(red.edge_count() < g.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        assert!(g.is_empty());
        assert!(g.topo_order().unwrap().is_empty());
        let c = g.transitive_closure().unwrap();
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn row_iter_empty_row() {
        let m = BitMatrix::new(3);
        assert_eq!(m.row_iter(2).count(), 0);
    }
}
