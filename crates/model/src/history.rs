//! Histories: the interface between programs and the memory system.
//!
//! Section 3 of the paper models an execution as a *history*
//! `H = (Op, ;)` — the completed operations of all processes plus the
//! causality relation. This module provides:
//!
//! * [`History`] — the immutable, validated operation record;
//! * [`HistoryBuilder`] — an incremental builder used both by the runtime
//!   recorder and by hand-written litmus tests;
//! * well-formedness checking per the four conditions of Section 3 (one
//!   pending invocation per object, matched unlocks, totally-ordered
//!   barriers, consistency with program order);
//! * derivation of the per-lock epoch structure that induces `↦lock`, the
//!   per-barrier rounds that induce `↦bar`, and resolution of the
//!   reads-from relation `|.`.
//!
//! Local histories are *partial orders* (the paper deliberately allows
//! concurrency within a process); the builder supports both the common
//! sequential chain ([`HistoryBuilder::push`]) and explicit partial orders
//! ([`HistoryBuilder::push_after`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::graph::Digraph;
use crate::ids::{BarrierId, BarrierRound, Loc, LockId, OpId, ProcId, WriteId};
use crate::op::{Edge, LockMode, Op, OpKind, ReadLabel};
use crate::value::Value;

/// A lock *epoch*: one exclusive holder, or a maximal group of concurrent
/// readers uninterrupted by a write lock.
///
/// The synchronization order `↦lock` of Section 3.1.1 is exactly the
/// epoch order: write epochs are totally ordered with respect to
/// everything, reader operations within one epoch are mutually unordered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEpoch {
    /// Whether this epoch is a write (exclusive) or read (shared) epoch.
    pub mode: LockMode,
    /// `(lock_op, unlock_op)` pairs of the epoch members. A write epoch has
    /// exactly one member.
    pub members: Vec<(OpId, OpId)>,
}

/// One round of a barrier object: the barrier operations `b^k_j`, one per
/// participating process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierRoundOps {
    /// The round index `k`.
    pub round: BarrierRound,
    /// The barrier operation of each participant, sorted by process.
    pub ops: Vec<OpId>,
}

/// Why a history failed validation.
///
/// The variants mirror the well-formedness conditions of Section 3 plus the
/// bookkeeping the model needs (unique write identities, resolvable
/// reads-from).
#[derive(Clone, Debug, PartialEq)]
pub enum MalformedHistory {
    /// Two write-like operations share a [`WriteId`].
    DuplicateWriteId(WriteId),
    /// A program-order edge connects operations of different processes.
    CrossProcessProgramOrder(OpId, OpId),
    /// A process's program order has a cycle.
    ProgramOrderCycle(ProcId),
    /// An unlock had no matching held lock (condition 3 of Section 3).
    UnmatchedUnlock(OpId),
    /// A lock was acquired while already held by the same process.
    ReentrantLock(OpId),
    /// A write lock was granted while the object was held.
    ConflictingLockGrant(OpId),
    /// A lock was still held when the history ended (incomplete history).
    LockHeldAtEnd(ProcId, LockId),
    /// A lock operation follows its unlock in program order, or the pair is
    /// unordered.
    LockPairDisordered(OpId, OpId),
    /// The same process appears twice in one barrier round.
    DuplicateBarrierArrival(OpId),
    /// Two rounds of the same barrier object have different participants.
    BarrierParticipantsChanged(BarrierId, BarrierRound),
    /// A process passed rounds of one barrier object out of order.
    BarrierRoundOrderViolation(OpId),
    /// A barrier operation is not totally ordered with respect to all other
    /// operations of its process (condition 4 of Section 3).
    BarrierNotTotallyOrdered(OpId),
    /// Two concurrent operations of one process touch the same object
    /// (condition 2 of Section 3: one pending invocation per object).
    ConcurrentSameObject(OpId, OpId),
    /// A read's value matches no write and is not the initial value, or the
    /// recorded writer does not exist.
    UnresolvableRead(OpId),
    /// A read's value matches several writes and no writer was recorded.
    AmbiguousRead(OpId),
    /// A read's recorded writer wrote a different value or location.
    ReadValueMismatch(OpId),
    /// An await's observed writers could not be resolved or do not produce
    /// the awaited value.
    UnresolvableAwait(OpId),
}

impl fmt::Display for MalformedHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MalformedHistory::*;
        match self {
            DuplicateWriteId(w) => write!(f, "duplicate write identity {w}"),
            CrossProcessProgramOrder(a, b) => {
                write!(f, "program-order edge {a} -> {b} crosses processes")
            }
            ProgramOrderCycle(p) => write!(f, "program order of {p} has a cycle"),
            UnmatchedUnlock(o) => write!(f, "unlock {o} has no matching lock"),
            ReentrantLock(o) => write!(f, "lock {o} acquired while already held"),
            ConflictingLockGrant(o) => {
                write!(f, "lock {o} granted while the object was held")
            }
            LockHeldAtEnd(p, l) => write!(f, "{p} still holds {l} at end of history"),
            LockPairDisordered(a, b) => {
                write!(f, "lock {a} and unlock {b} are not ordered lock-then-unlock")
            }
            DuplicateBarrierArrival(o) => {
                write!(f, "process arrived twice at one barrier round ({o})")
            }
            BarrierParticipantsChanged(b, k) => {
                write!(f, "participants of {b} changed at round {k}")
            }
            BarrierRoundOrderViolation(o) => {
                write!(f, "barrier rounds passed out of order at {o}")
            }
            BarrierNotTotallyOrdered(o) => {
                write!(f, "barrier {o} is not totally ordered within its process")
            }
            ConcurrentSameObject(a, b) => {
                write!(f, "concurrent same-object operations {a} and {b}")
            }
            UnresolvableRead(o) => write!(f, "read {o} matches no write"),
            AmbiguousRead(o) => {
                write!(f, "read {o} matches several writes; record a writer")
            }
            ReadValueMismatch(o) => {
                write!(f, "read {o} disagrees with its recorded writer")
            }
            UnresolvableAwait(o) => write!(f, "await {o} cannot be resolved"),
        }
    }
}

impl std::error::Error for MalformedHistory {}

/// A validated, complete, well-formed history.
///
/// Construct through [`HistoryBuilder`]. All derived structure (lock
/// epochs, barrier rounds, reads-from) is computed once at build time.
#[derive(Clone, Debug)]
pub struct History {
    nprocs: usize,
    ops: Vec<Op>,
    po_edges: Vec<Edge>,
    per_proc: Vec<Vec<OpId>>,
    initial: HashMap<Loc, Value>,
    lock_epochs: BTreeMap<LockId, Vec<LockEpoch>>,
    barrier_rounds: BTreeMap<BarrierId, Vec<BarrierRoundOps>>,
    writes_by_id: HashMap<WriteId, OpId>,
    /// Resolved reads-from: for every `Read` op, the write it returned
    /// (possibly [`WriteId::initial`]); `None` for non-reads.
    rf: Vec<Option<WriteId>>,
    /// Resolved await sources: for every `Await` op, the writes it
    /// synchronizes with.
    await_src: Vec<Vec<WriteId>>,
}

impl History {
    /// The number of processes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All operations, indexed by [`OpId`].
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// One operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// The (reduced) program-order edges.
    pub fn po_edges(&self) -> &[Edge] {
        &self.po_edges
    }

    /// The operations of one process, in push order.
    pub fn proc_ops(&self, proc: ProcId) -> &[OpId] {
        &self.per_proc[proc.index()]
    }

    /// The initial value of a location.
    pub fn initial(&self, loc: Loc) -> Value {
        self.initial.get(&loc).copied().unwrap_or(Value::INITIAL)
    }

    /// The lock-epoch structure per lock object, in grant order.
    pub fn lock_epochs(&self) -> &BTreeMap<LockId, Vec<LockEpoch>> {
        &self.lock_epochs
    }

    /// The barrier rounds per barrier object, in round order.
    pub fn barrier_rounds(&self) -> &BTreeMap<BarrierId, Vec<BarrierRoundOps>> {
        &self.barrier_rounds
    }

    /// The operation that produced a write identity, or `None` for initial
    /// writes.
    pub fn write_op(&self, id: WriteId) -> Option<OpId> {
        self.writes_by_id.get(&id).copied()
    }

    /// The resolved writer of a read operation.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a `Read` operation.
    pub fn reads_from(&self, read: OpId) -> WriteId {
        self.rf[read.index()].unwrap_or_else(|| panic!("{read} is not a read operation"))
    }

    /// The resolved synchronization sources of an await operation.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an `Await` operation.
    pub fn await_sources(&self, a: OpId) -> &[WriteId] {
        assert!(
            matches!(self.ops[a.index()].kind, OpKind::Await { .. }),
            "{a} is not an await operation"
        );
        &self.await_src[a.index()]
    }

    /// Iterates over the ids of all operations.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterates over `(OpId, &Op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &Op)> {
        self.ops.iter().enumerate().map(|(i, op)| (OpId(i as u32), op))
    }

    /// A hash identifying the observable content of the history: its
    /// operations rendered in canonical per-process program order. Two
    /// executions with equal signatures made the same operations
    /// observe the same values in the same per-process order —
    /// program order and reads-from resolution are derived from
    /// exactly that data, so any per-history checker verdict is
    /// identical, which is what lets exploration deduplicate
    /// verification work. Deliberately *not* the global interleaving
    /// order: equivalent interleavings of independent operations must
    /// hash alike, or partial-order reduction would count each
    /// equivalence class once per representative it happens to run.
    pub fn signature(&self) -> u64 {
        use std::fmt::Write as _;
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        let mut s = String::new();
        for per_proc in &self.per_proc {
            for &id in per_proc {
                let _ = writeln!(s, "{}", self.ops[id.index()]);
            }
            s.push('\n');
        }
        s.hash(&mut hasher);
        hasher.finish()
    }

    /// Renders the history one operation per line — useful in test
    /// failures.
    pub fn to_pretty_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (id, op) in self.iter() {
            let _ = writeln!(s, "{id}: {op}");
        }
        s
    }

    /// Projects the history onto one shard of a sharded address space.
    ///
    /// Under interest-based partial replication the address space is
    /// partitioned by `shard(loc) = loc.index() % nshards`, each shard
    /// carries its own per-shard vector clock, and the consistency
    /// guarantees of the paper are promised *per shard*: updates to a
    /// shard flow FIFO/causally among its subscribers, while accesses
    /// to distinct shards are unordered unless a causal chain through a
    /// shared shard relates them. The projection keeps exactly the
    /// operations on locations of `shard` (in program order, with their
    /// original [`WriteId`]s and recorded reads-from edges) and drops
    /// everything else, so a model checker run on the projection judges
    /// the per-shard guarantee.
    ///
    /// Synchronization operations (locks and barriers) order accesses
    /// across the whole address space and therefore have no per-shard
    /// meaning; the DSM rejects them when sharding is on, and this
    /// projection drops them.
    ///
    /// # Errors
    ///
    /// Propagates [`MalformedHistory`] from re-validation; a projection
    /// of a well-formed history is itself well-formed, so an error here
    /// indicates a bug in the caller's shard arithmetic (e.g. a
    /// recorded reads-from edge crossing shards).
    ///
    /// # Panics
    ///
    /// Panics if `nshards` is zero or `shard >= nshards`.
    pub fn project_shard(&self, nshards: usize, shard: usize) -> Result<History, MalformedHistory> {
        assert!(nshards > 0, "nshards must be positive");
        assert!(shard < nshards, "shard {shard} out of range for {nshards} shards");
        let in_shard = |loc: Loc| loc.index() % nshards == shard;
        let mut b = HistoryBuilder::new(self.nprocs);
        for (&loc, &v) in &self.initial {
            if in_shard(loc) {
                b.set_initial(loc, v);
            }
        }
        for p in 0..self.nprocs {
            for &id in self.proc_ops(ProcId(p as u32)) {
                let op = &self.ops[id.index()];
                match &op.kind {
                    OpKind::Read { loc, label, value, .. } if in_shard(*loc) => {
                        b.push_read_from(op.proc, *loc, *label, *value, self.reads_from(id));
                    }
                    OpKind::Write { loc, value, id: w } if in_shard(*loc) => {
                        b.push(op.proc, OpKind::Write { loc: *loc, value: *value, id: *w });
                    }
                    OpKind::Update { loc, delta, id: w } if in_shard(*loc) => {
                        b.push(op.proc, OpKind::Update { loc: *loc, delta: *delta, id: *w });
                    }
                    OpKind::Await { loc, value, .. } if in_shard(*loc) => {
                        b.push(
                            op.proc,
                            OpKind::Await {
                                loc: *loc,
                                value: *value,
                                writers: self.await_sources(id).to_vec(),
                            },
                        );
                    }
                    _ => {}
                }
            }
        }
        b.build()
    }
}

/// Incremental builder for [`History`].
///
/// # Examples
///
/// ```
/// use mc_model::{HistoryBuilder, Loc, ProcId, ReadLabel, Value};
///
/// let mut b = HistoryBuilder::new(2);
/// let _w = b.push_write(ProcId(0), Loc(0), Value::Int(1));
/// let _r = b.push_read(ProcId(1), Loc(0), ReadLabel::Causal, Value::Int(1));
/// let h = b.build()?;
/// assert_eq!(h.len(), 2);
/// # Ok::<(), mc_model::MalformedHistory>(())
/// ```
#[derive(Clone, Debug)]
pub struct HistoryBuilder {
    nprocs: usize,
    ops: Vec<Op>,
    po_edges: Vec<Edge>,
    per_proc: Vec<Vec<OpId>>,
    last_of_proc: Vec<Option<OpId>>,
    proc_is_chain: Vec<bool>,
    initial: HashMap<Loc, Value>,
    write_seq: Vec<u32>,
}

impl HistoryBuilder {
    /// Creates a builder for a history over `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        HistoryBuilder {
            nprocs,
            ops: Vec::new(),
            po_edges: Vec::new(),
            per_proc: vec![Vec::new(); nprocs],
            last_of_proc: vec![None; nprocs],
            proc_is_chain: vec![true; nprocs],
            initial: HashMap::new(),
            write_seq: vec![0; nprocs],
        }
    }

    /// Declares the initial value of a location (default is `Int(0)`).
    pub fn set_initial(&mut self, loc: Loc, value: Value) -> &mut Self {
        self.initial.insert(loc, value);
        self
    }

    /// Appends an operation to `proc`'s program-order chain.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn push(&mut self, proc: ProcId, kind: OpKind) -> OpId {
        let id = self.add_op(proc, kind);
        if let Some(prev) = self.last_of_proc[proc.index()] {
            self.po_edges.push((prev, id));
        }
        self.last_of_proc[proc.index()] = Some(id);
        id
    }

    /// Adds an operation ordered after the given same-process predecessors
    /// only (expressing intra-process concurrency).
    ///
    /// Passing an empty `preds` adds a new minimal operation.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn push_after(&mut self, proc: ProcId, kind: OpKind, preds: &[OpId]) -> OpId {
        let id = self.add_op(proc, kind);
        for &p in preds {
            self.po_edges.push((p, id));
        }
        self.proc_is_chain[proc.index()] = false;
        // Later plain `push` calls continue after this op.
        self.last_of_proc[proc.index()] = Some(id);
        id
    }

    fn add_op(&mut self, proc: ProcId, kind: OpKind) -> OpId {
        assert!(proc.index() < self.nprocs, "process out of range");
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Op::new(proc, kind));
        self.per_proc[proc.index()].push(id);
        id
    }

    /// Convenience: pushes a write, minting a fresh [`WriteId`], and
    /// returns `(op, write_id)`.
    pub fn push_write(&mut self, proc: ProcId, loc: Loc, value: Value) -> (OpId, WriteId) {
        let seq = &mut self.write_seq[proc.index()];
        *seq += 1;
        let id = WriteId::new(proc, *seq);
        let op = self.push(proc, OpKind::Write { loc, value, id });
        (op, id)
    }

    /// Convenience: pushes a commutative update, minting a fresh
    /// [`WriteId`], and returns `(op, write_id)`.
    pub fn push_update(
        &mut self,
        proc: ProcId,
        loc: Loc,
        delta: impl Into<Value>,
    ) -> (OpId, WriteId) {
        let seq = &mut self.write_seq[proc.index()];
        *seq += 1;
        let id = WriteId::new(proc, *seq);
        let op = self.push(proc, OpKind::Update { loc, delta: delta.into(), id });
        (op, id)
    }

    /// Convenience: pushes a read whose writer will be resolved by value.
    pub fn push_read(&mut self, proc: ProcId, loc: Loc, label: ReadLabel, value: Value) -> OpId {
        self.push(proc, OpKind::Read { loc, label, value, writer: None })
    }

    /// Convenience: pushes a read with a recorded writer.
    pub fn push_read_from(
        &mut self,
        proc: ProcId,
        loc: Loc,
        label: ReadLabel,
        value: Value,
        writer: WriteId,
    ) -> OpId {
        self.push(proc, OpKind::Read { loc, label, value, writer: Some(writer) })
    }

    /// Convenience: pushes a lock acquisition.
    pub fn push_lock(&mut self, proc: ProcId, lock: LockId, mode: LockMode) -> OpId {
        self.push(proc, OpKind::Lock { lock, mode })
    }

    /// Convenience: pushes a lock release.
    pub fn push_unlock(&mut self, proc: ProcId, lock: LockId, mode: LockMode) -> OpId {
        self.push(proc, OpKind::Unlock { lock, mode })
    }

    /// Convenience: pushes a barrier operation.
    pub fn push_barrier(&mut self, proc: ProcId, barrier: BarrierId, round: BarrierRound) -> OpId {
        self.push(proc, OpKind::Barrier { barrier, round })
    }

    /// Convenience: pushes an await to be resolved by unique value.
    pub fn push_await(&mut self, proc: ProcId, loc: Loc, value: Value) -> OpId {
        self.push(proc, OpKind::Await { loc, value, writers: Vec::new() })
    }

    /// The number of operations pushed so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates everything and produces the [`History`].
    ///
    /// # Errors
    ///
    /// Returns a [`MalformedHistory`] describing the first violated
    /// well-formedness condition.
    pub fn build(self) -> Result<History, MalformedHistory> {
        let HistoryBuilder { nprocs, ops, po_edges, per_proc, initial, proc_is_chain, .. } = self;

        // -- program order sanity ------------------------------------------------
        for &(a, b) in &po_edges {
            if ops[a.index()].proc != ops[b.index()].proc {
                return Err(MalformedHistory::CrossProcessProgramOrder(a, b));
            }
        }
        // Per-process closure (needed for conditions 2 and 4 and lock-pair
        // ordering). Also detects cycles.
        let mut proc_closure = Vec::with_capacity(nprocs);
        for (p, local_ids) in per_proc.iter().enumerate() {
            let index_of: HashMap<OpId, usize> =
                local_ids.iter().enumerate().map(|(i, &o)| (o, i)).collect();
            let mut g = Digraph::new(local_ids.len());
            for &(a, b) in &po_edges {
                if ops[a.index()].proc == ProcId(p as u32) {
                    g.add_edge(index_of[&a], index_of[&b]);
                }
            }
            let closure = g
                .transitive_closure()
                .map_err(|_| MalformedHistory::ProgramOrderCycle(ProcId(p as u32)))?;
            proc_closure.push((index_of, closure));
        }

        // Condition 2: at most one pending invocation per object — with
        // complete operations this means no two *concurrent* same-process
        // operations on the same object. Only partial-order processes can
        // violate it.
        // Condition 4: barriers totally ordered within their process.
        for p in 0..nprocs {
            if proc_is_chain[p] {
                continue;
            }
            let (index_of, closure) = &proc_closure[p];
            let local = &per_proc[p];
            for (i, &a) in local.iter().enumerate() {
                for &b in &local[i + 1..] {
                    let (ia, ib) = (index_of[&a], index_of[&b]);
                    let ordered = closure.get(ia, ib) || closure.get(ib, ia);
                    if ordered {
                        continue;
                    }
                    let (ka, kb) = (&ops[a.index()].kind, &ops[b.index()].kind);
                    if matches!(ka, OpKind::Barrier { .. }) || matches!(kb, OpKind::Barrier { .. })
                    {
                        let o = if matches!(ka, OpKind::Barrier { .. }) { a } else { b };
                        return Err(MalformedHistory::BarrierNotTotallyOrdered(o));
                    }
                    let same_loc = ka.loc().is_some() && ka.loc() == kb.loc();
                    let same_lock = ka.lock().is_some() && ka.lock() == kb.lock();
                    if same_loc || same_lock {
                        return Err(MalformedHistory::ConcurrentSameObject(a, b));
                    }
                }
            }
        }

        // -- write identities ----------------------------------------------------
        let mut writes_by_id: HashMap<WriteId, OpId> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let Some(w) = op.kind.write_id() {
                if writes_by_id.insert(w, OpId(i as u32)).is_some() {
                    return Err(MalformedHistory::DuplicateWriteId(w));
                }
            }
        }

        // -- lock epochs (push order == grant order) ------------------------------
        #[derive(Debug)]
        enum Cur {
            Idle,
            Write { lock_op: OpId, holder: ProcId, unlocked: bool },
            Read { members: Vec<(OpId, Option<OpId>)> },
        }
        let mut state: BTreeMap<LockId, Cur> = BTreeMap::new();
        let mut epochs: BTreeMap<LockId, Vec<LockEpoch>> = BTreeMap::new();
        let mut held: HashMap<(ProcId, LockId), (LockMode, OpId)> = HashMap::new();

        let close_epoch = |lock: LockId,
                           cur: &mut Cur,
                           epochs: &mut BTreeMap<LockId, Vec<LockEpoch>>|
         -> Result<(), MalformedHistory> {
            match std::mem::replace(cur, Cur::Idle) {
                Cur::Idle => {}
                Cur::Write { lock_op, holder, unlocked } => {
                    if !unlocked {
                        // Re-install; caller decides if this is an error.
                        *cur = Cur::Write { lock_op, holder, unlocked };
                        return Err(MalformedHistory::ConflictingLockGrant(lock_op));
                    }
                    // unlock op recorded when processed; find it via members
                    // — tracked below instead.
                    unreachable!("write epochs are closed at unlock time");
                }
                Cur::Read { members } => {
                    if members.iter().any(|(_, u)| u.is_none()) {
                        let open = members.iter().find(|(_, u)| u.is_none()).unwrap().0;
                        *cur = Cur::Read { members };
                        return Err(MalformedHistory::ConflictingLockGrant(open));
                    }
                    epochs.entry(lock).or_default().push(LockEpoch {
                        mode: LockMode::Read,
                        members: members
                            .into_iter()
                            .map(|(l, u)| (l, u.expect("checked above")))
                            .collect(),
                    });
                }
            }
            Ok(())
        };

        for (i, op) in ops.iter().enumerate() {
            let id = OpId(i as u32);
            match &op.kind {
                OpKind::Lock { lock, mode } => {
                    if held.contains_key(&(op.proc, *lock)) {
                        return Err(MalformedHistory::ReentrantLock(id));
                    }
                    let cur = state.entry(*lock).or_insert(Cur::Idle);
                    match mode {
                        LockMode::Write => {
                            // All previous holders must have released.
                            close_epoch(*lock, cur, &mut epochs)
                                .map_err(|_| MalformedHistory::ConflictingLockGrant(id))?;
                            *cur = Cur::Write { lock_op: id, holder: op.proc, unlocked: false };
                        }
                        LockMode::Read => match cur {
                            Cur::Idle => {
                                *cur = Cur::Read { members: vec![(id, None)] };
                            }
                            Cur::Read { members } => members.push((id, None)),
                            Cur::Write { .. } => {
                                return Err(MalformedHistory::ConflictingLockGrant(id));
                            }
                        },
                    }
                    held.insert((op.proc, *lock), (*mode, id));
                }
                OpKind::Unlock { lock, mode } => {
                    let Some((hmode, lock_op)) = held.remove(&(op.proc, *lock)) else {
                        return Err(MalformedHistory::UnmatchedUnlock(id));
                    };
                    if hmode != *mode {
                        return Err(MalformedHistory::UnmatchedUnlock(id));
                    }
                    let cur = state.get_mut(lock).expect("lock has state while held");
                    match (mode, &mut *cur) {
                        (LockMode::Write, Cur::Write { lock_op: l, .. }) if *l == lock_op => {
                            epochs.entry(*lock).or_default().push(LockEpoch {
                                mode: LockMode::Write,
                                members: vec![(lock_op, id)],
                            });
                            *cur = Cur::Idle;
                        }
                        (LockMode::Read, Cur::Read { members }) => {
                            let m = members
                                .iter_mut()
                                .find(|(l, _)| *l == lock_op)
                                .expect("member present while held");
                            m.1 = Some(id);
                            // Epoch stays open: later readers may join until
                            // a write lock arrives or the history ends.
                        }
                        _ => return Err(MalformedHistory::UnmatchedUnlock(id)),
                    }
                }
                _ => {}
            }
        }
        if let Some(((p, l), _)) = held.iter().next() {
            return Err(MalformedHistory::LockHeldAtEnd(*p, *l));
        }
        // Close any trailing read epochs.
        for (lock, mut cur) in std::mem::take(&mut state) {
            close_epoch(lock, &mut cur, &mut epochs)
                .map_err(|_| MalformedHistory::LockHeldAtEnd(ProcId(0), lock))?;
        }

        // Lock must precede its unlock in program order.
        for eps in epochs.values() {
            for ep in eps {
                for &(l, u) in &ep.members {
                    let p = ops[l.index()].proc;
                    let (index_of, closure) = &proc_closure[p.index()];
                    if !closure.get(index_of[&l], index_of[&u]) {
                        return Err(MalformedHistory::LockPairDisordered(l, u));
                    }
                }
            }
        }

        // -- barrier rounds --------------------------------------------------------
        let mut rounds_map: BTreeMap<BarrierId, BTreeMap<BarrierRound, Vec<OpId>>> =
            BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let OpKind::Barrier { barrier, round } = op.kind {
                rounds_map
                    .entry(barrier)
                    .or_default()
                    .entry(round)
                    .or_default()
                    .push(OpId(i as u32));
            }
        }
        let mut barrier_rounds: BTreeMap<BarrierId, Vec<BarrierRoundOps>> = BTreeMap::new();
        for (bar, rounds) in rounds_map {
            let mut participants: Option<Vec<ProcId>> = None;
            let mut out = Vec::new();
            for (round, mut round_ops) in rounds {
                round_ops.sort_by_key(|o| ops[o.index()].proc);
                let procs: Vec<ProcId> = round_ops.iter().map(|o| ops[o.index()].proc).collect();
                for w in procs.windows(2) {
                    if w[0] == w[1] {
                        return Err(MalformedHistory::DuplicateBarrierArrival(round_ops[0]));
                    }
                }
                match &participants {
                    None => participants = Some(procs),
                    Some(expect) => {
                        if *expect != procs {
                            return Err(MalformedHistory::BarrierParticipantsChanged(bar, round));
                        }
                    }
                }
                out.push(BarrierRoundOps { round, ops: round_ops });
            }
            // Each process must pass rounds in increasing program order.
            for (p, (index_of, closure)) in proc_closure.iter().enumerate() {
                let mine: Vec<OpId> = out
                    .iter()
                    .filter_map(|r| {
                        r.ops.iter().copied().find(|o| ops[o.index()].proc == ProcId(p as u32))
                    })
                    .collect();
                for w in mine.windows(2) {
                    if !closure.get(index_of[&w[0]], index_of[&w[1]]) {
                        return Err(MalformedHistory::BarrierRoundOrderViolation(w[1]));
                    }
                }
            }
            barrier_rounds.insert(bar, out);
        }

        // -- reads-from resolution ---------------------------------------------
        let initial_of = |loc: Loc| initial.get(&loc).copied().unwrap_or(Value::INITIAL);
        let mut rf: Vec<Option<WriteId>> = vec![None; ops.len()];
        let mut await_src: Vec<Vec<WriteId>> = vec![Vec::new(); ops.len()];
        for (i, op) in ops.iter().enumerate() {
            let id = OpId(i as u32);
            match &op.kind {
                OpKind::Read { loc, value, writer, .. } => {
                    let resolved = match writer {
                        Some(w) => {
                            if w.is_initial() {
                                if initial_of(*loc) != *value {
                                    return Err(MalformedHistory::ReadValueMismatch(id));
                                }
                            } else {
                                let Some(wop) = writes_by_id.get(w) else {
                                    return Err(MalformedHistory::UnresolvableRead(id));
                                };
                                match &ops[wop.index()].kind {
                                    OpKind::Write { loc: wl, value: wv, .. } => {
                                        if wl != loc || wv != value {
                                            return Err(MalformedHistory::ReadValueMismatch(id));
                                        }
                                    }
                                    // Reads of counter locations record the
                                    // update whose application produced the
                                    // observed value; the value itself is a
                                    // running sum, so no equality check.
                                    OpKind::Update { loc: wl, .. } => {
                                        if wl != loc {
                                            return Err(MalformedHistory::ReadValueMismatch(id));
                                        }
                                    }
                                    _ => return Err(MalformedHistory::UnresolvableRead(id)),
                                }
                            }
                            *w
                        }
                        None => {
                            let matches: Vec<WriteId> = ops
                                .iter()
                                .filter_map(|o| match &o.kind {
                                    OpKind::Write { loc: wl, value: wv, id }
                                        if wl == loc && wv == value =>
                                    {
                                        Some(*id)
                                    }
                                    _ => None,
                                })
                                .collect();
                            let loc_has_updates = ops.iter().any(
                                |o| matches!(o.kind, OpKind::Update { loc: l, .. } if l == *loc),
                            );
                            match matches.len() {
                                1 => matches[0],
                                0 if initial_of(*loc) == *value => WriteId::initial(*loc),
                                // Counter locations: the value is a running
                                // sum; without a recorded writer the read
                                // resolves to the initial pseudo-write and
                                // is judged by the counter-visibility rule.
                                0 if loc_has_updates => WriteId::initial(*loc),
                                0 => return Err(MalformedHistory::UnresolvableRead(id)),
                                _ => return Err(MalformedHistory::AmbiguousRead(id)),
                            }
                        }
                    };
                    rf[i] = Some(resolved);
                }
                OpKind::Await { loc, value, writers } => {
                    let resolved: Vec<WriteId> = if writers.is_empty() {
                        let matches: Vec<WriteId> = ops
                            .iter()
                            .filter_map(|o| match &o.kind {
                                OpKind::Write { loc: wl, value: wv, id }
                                    if wl == loc && wv == value =>
                                {
                                    Some(*id)
                                }
                                _ => None,
                            })
                            .collect();
                        match matches.len() {
                            1 => matches,
                            0 if initial_of(*loc) == *value => {
                                vec![WriteId::initial(*loc)]
                            }
                            _ => return Err(MalformedHistory::UnresolvableAwait(id)),
                        }
                    } else {
                        for w in writers {
                            if !w.is_initial() && !writes_by_id.contains_key(w) {
                                return Err(MalformedHistory::UnresolvableAwait(id));
                            }
                        }
                        writers.clone()
                    };
                    await_src[i] = resolved;
                }
                _ => {}
            }
        }

        Ok(History {
            nprocs,
            ops,
            po_edges,
            per_proc,
            initial,
            lock_epochs: epochs,
            barrier_rounds,
            writes_by_id,
            rf,
            await_src,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn build_simple_chain() {
        let mut b = HistoryBuilder::new(2);
        let (w, wid) = b.push_write(p(0), Loc(0), Value::Int(1));
        let r = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.nprocs(), 2);
        assert_eq!(h.reads_from(r), wid);
        assert_eq!(h.write_op(wid), Some(w));
        assert_eq!(h.proc_ops(p(0)), &[w]);
        assert!(h.po_edges().is_empty());
        assert!(!h.is_empty());
        assert!(h.to_pretty_string().contains("w_p0(x0)1"));
    }

    #[test]
    fn program_order_chains_per_process() {
        let mut b = HistoryBuilder::new(1);
        let (a, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (c, _) = b.push_write(p(0), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        assert_eq!(h.po_edges(), &[(a, c)]);
    }

    #[test]
    fn read_of_initial_value() {
        let mut b = HistoryBuilder::new(1);
        let r = b.push_read(p(0), Loc(3), ReadLabel::Pram, Value::Int(0));
        let h = b.build().unwrap();
        assert!(h.reads_from(r).is_initial());
        assert_eq!(h.initial(Loc(3)), Value::Int(0));
    }

    #[test]
    fn custom_initial_value() {
        let mut b = HistoryBuilder::new(1);
        b.set_initial(Loc(0), Value::Int(9));
        let r = b.push_read(p(0), Loc(0), ReadLabel::Pram, Value::Int(9));
        let h = b.build().unwrap();
        assert!(h.reads_from(r).is_initial());
        assert_eq!(h.initial(Loc(0)), Value::Int(9));
    }

    #[test]
    fn ambiguous_read_is_rejected() {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(5));
        b.push_write(p(1), Loc(0), Value::Int(5));
        b.push_read(p(0), Loc(0), ReadLabel::Causal, Value::Int(5));
        assert!(matches!(b.build(), Err(MalformedHistory::AmbiguousRead(_))));
    }

    #[test]
    fn project_shard_keeps_only_shard_locations() {
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(1), Value::Int(9));
        let (_, w0) = b.push_write(p(0), Loc(0), Value::Int(1)); // shard 0
        let (_, w1) = b.push_write(p(0), Loc(1), Value::Int(2)); // shard 1
        let r0 = b.push_read_from(p(1), Loc(0), ReadLabel::Causal, Value::Int(1), w0);
        b.push_read_from(p(1), Loc(1), ReadLabel::Causal, Value::Int(2), w1);
        let h = b.build().unwrap();

        let h0 = h.project_shard(2, 0).unwrap();
        assert_eq!(h0.len(), 2);
        assert_eq!(h0.nprocs(), 2);
        // Op ids are renumbered, but write ids and reads-from survive.
        let r0p = h0
            .iter()
            .find(|(_, op)| matches!(op.kind, OpKind::Read { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(h0.reads_from(r0p), w0);
        assert_eq!(h.reads_from(r0), w0);
        assert!(h0.iter().all(|(_, op)| op.kind.loc() == Some(Loc(0))));

        let h1 = h.project_shard(2, 1).unwrap();
        assert_eq!(h1.len(), 2);
        assert_eq!(h1.initial(Loc(1)), Value::Int(9));
        assert!(h1.iter().all(|(_, op)| op.kind.loc() == Some(Loc(1))));
    }

    #[test]
    fn project_shard_preserves_await_sources() {
        let mut b = HistoryBuilder::new(2);
        let (_, w0) = b.push_write(p(0), Loc(2), Value::Int(7)); // shard 0 of 2
        b.push_write(p(0), Loc(1), Value::Int(3)); // shard 1
        let a = b.push_await(p(1), Loc(2), Value::Int(7));
        let h = b.build().unwrap();
        assert_eq!(h.await_sources(a), &[w0]);

        let h0 = h.project_shard(2, 0).unwrap();
        let ap = h0
            .iter()
            .find(|(_, op)| matches!(op.kind, OpKind::Await { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(h0.await_sources(ap), &[w0]);
        // The shard-1 projection has the lone write and nothing else.
        let h1 = h.project_shard(2, 1).unwrap();
        assert_eq!(h1.len(), 1);
    }

    #[test]
    fn recorded_writer_disambiguates() {
        let mut b = HistoryBuilder::new(2);
        let (_, w0) = b.push_write(p(0), Loc(0), Value::Int(5));
        b.push_write(p(1), Loc(0), Value::Int(5));
        let r = b.push_read_from(p(0), Loc(0), ReadLabel::Causal, Value::Int(5), w0);
        let h = b.build().unwrap();
        assert_eq!(h.reads_from(r), w0);
    }

    #[test]
    fn unresolvable_read_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_read(p(0), Loc(0), ReadLabel::Pram, Value::Int(42));
        assert!(matches!(b.build(), Err(MalformedHistory::UnresolvableRead(_))));
    }

    #[test]
    fn mismatched_recorded_writer_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        let (_, w) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read_from(p(0), Loc(0), ReadLabel::Pram, Value::Int(2), w);
        assert!(matches!(b.build(), Err(MalformedHistory::ReadValueMismatch(_))));
    }

    #[test]
    fn lock_epoch_derivation_write_then_readers() {
        let mut b = HistoryBuilder::new(3);
        let l = LockId(0);
        let wl = b.push_lock(p(0), l, LockMode::Write);
        let wu = b.push_unlock(p(0), l, LockMode::Write);
        let rl1 = b.push_lock(p(1), l, LockMode::Read);
        let rl2 = b.push_lock(p(2), l, LockMode::Read);
        let ru1 = b.push_unlock(p(1), l, LockMode::Read);
        let ru2 = b.push_unlock(p(2), l, LockMode::Read);
        let h = b.build().unwrap();
        let eps = &h.lock_epochs()[&l];
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].mode, LockMode::Write);
        assert_eq!(eps[0].members, vec![(wl, wu)]);
        assert_eq!(eps[1].mode, LockMode::Read);
        assert_eq!(eps[1].members, vec![(rl1, ru1), (rl2, ru2)]);
    }

    #[test]
    fn sequential_readers_share_one_epoch() {
        // Two read CSs with no intervening write lock are a single epoch
        // (7!lock does not order read operations among themselves).
        let mut b = HistoryBuilder::new(2);
        let l = LockId(0);
        b.push_lock(p(0), l, LockMode::Read);
        b.push_unlock(p(0), l, LockMode::Read);
        b.push_lock(p(1), l, LockMode::Read);
        b.push_unlock(p(1), l, LockMode::Read);
        let h = b.build().unwrap();
        assert_eq!(h.lock_epochs()[&l].len(), 1);
        assert_eq!(h.lock_epochs()[&l][0].members.len(), 2);
    }

    #[test]
    fn write_lock_closes_read_epoch() {
        let mut b = HistoryBuilder::new(2);
        let l = LockId(0);
        b.push_lock(p(0), l, LockMode::Read);
        b.push_unlock(p(0), l, LockMode::Read);
        b.push_lock(p(1), l, LockMode::Write);
        b.push_unlock(p(1), l, LockMode::Write);
        b.push_lock(p(0), l, LockMode::Read);
        b.push_unlock(p(0), l, LockMode::Read);
        let h = b.build().unwrap();
        let eps = &h.lock_epochs()[&l];
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0].mode, LockMode::Read);
        assert_eq!(eps[1].mode, LockMode::Write);
        assert_eq!(eps[2].mode, LockMode::Read);
    }

    #[test]
    fn unmatched_unlock_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_unlock(p(0), LockId(0), LockMode::Write);
        assert!(matches!(b.build(), Err(MalformedHistory::UnmatchedUnlock(_))));
    }

    #[test]
    fn wrong_mode_unlock_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_lock(p(0), LockId(0), LockMode::Write);
        b.push_unlock(p(0), LockId(0), LockMode::Read);
        assert!(matches!(b.build(), Err(MalformedHistory::UnmatchedUnlock(_))));
    }

    #[test]
    fn reentrant_lock_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_lock(p(0), LockId(0), LockMode::Read);
        b.push_lock(p(0), LockId(0), LockMode::Read);
        assert!(matches!(b.build(), Err(MalformedHistory::ReentrantLock(_))));
    }

    #[test]
    fn conflicting_write_grant_is_rejected() {
        // Write lock granted while a reader still holds the object.
        let mut b = HistoryBuilder::new(2);
        b.push_lock(p(0), LockId(0), LockMode::Read);
        b.push_lock(p(1), LockId(0), LockMode::Write);
        assert!(matches!(b.build(), Err(MalformedHistory::ConflictingLockGrant(_))));
    }

    #[test]
    fn read_grant_during_write_epoch_is_rejected() {
        let mut b = HistoryBuilder::new(2);
        b.push_lock(p(0), LockId(0), LockMode::Write);
        b.push_lock(p(1), LockId(0), LockMode::Read);
        assert!(matches!(b.build(), Err(MalformedHistory::ConflictingLockGrant(_))));
    }

    #[test]
    fn lock_held_at_end_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_lock(p(0), LockId(0), LockMode::Write);
        assert!(matches!(b.build(), Err(MalformedHistory::LockHeldAtEnd(_, _))));
    }

    #[test]
    fn barrier_rounds_grouped() {
        let mut b = HistoryBuilder::new(2);
        let bar = BarrierId(0);
        let b00 = b.push_barrier(p(0), bar, BarrierRound(0));
        let b01 = b.push_barrier(p(1), bar, BarrierRound(0));
        let b10 = b.push_barrier(p(0), bar, BarrierRound(1));
        let b11 = b.push_barrier(p(1), bar, BarrierRound(1));
        let h = b.build().unwrap();
        let rounds = &h.barrier_rounds()[&bar];
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].ops, vec![b00, b01]);
        assert_eq!(rounds[1].ops, vec![b10, b11]);
    }

    #[test]
    fn duplicate_barrier_arrival_is_rejected() {
        let mut b = HistoryBuilder::new(1);
        b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        assert!(matches!(b.build(), Err(MalformedHistory::DuplicateBarrierArrival(_))));
    }

    #[test]
    fn changed_participants_are_rejected() {
        let mut b = HistoryBuilder::new(2);
        b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        b.push_barrier(p(1), BarrierId(0), BarrierRound(0));
        b.push_barrier(p(0), BarrierId(0), BarrierRound(1));
        assert!(matches!(b.build(), Err(MalformedHistory::BarrierParticipantsChanged(_, _))));
    }

    #[test]
    fn await_resolution_by_value() {
        let mut b = HistoryBuilder::new(2);
        let (_, w) = b.push_write(p(0), Loc(0), Value::Int(7));
        let a = b.push_await(p(1), Loc(0), Value::Int(7));
        let h = b.build().unwrap();
        assert_eq!(h.await_sources(a), &[w]);
    }

    #[test]
    fn await_of_initial_value() {
        let mut b = HistoryBuilder::new(1);
        let a = b.push_await(p(0), Loc(0), Value::Int(0));
        let h = b.build().unwrap();
        assert_eq!(h.await_sources(a), &[WriteId::initial(Loc(0))]);
    }

    #[test]
    fn partial_order_locals_allowed() {
        // One process forks two concurrent writes to different locations
        // (the forall of Fig. 3), then joins.
        let mut b = HistoryBuilder::new(1);
        let (root, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let wa = b.push_after(
            p(0),
            OpKind::Write { loc: Loc(1), value: Value::Int(2), id: WriteId::new(p(0), 100) },
            &[root],
        );
        let _wb = b.push_after(
            p(0),
            OpKind::Write { loc: Loc(2), value: Value::Int(3), id: WriteId::new(p(0), 101) },
            &[root],
        );
        let _join = b.push_after(
            p(0),
            OpKind::Read {
                loc: Loc(1),
                label: ReadLabel::Causal,
                value: Value::Int(2),
                writer: None,
            },
            &[wa],
        );
        let h = b.build().unwrap();
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn concurrent_same_object_rejected() {
        let mut b = HistoryBuilder::new(1);
        let (root, _) = b.push_write(p(0), Loc(9), Value::Int(1));
        b.push_after(
            p(0),
            OpKind::Write { loc: Loc(0), value: Value::Int(2), id: WriteId::new(p(0), 100) },
            &[root],
        );
        // Concurrent with the previous op, same location 0.
        b.push_after(
            p(0),
            OpKind::Write { loc: Loc(0), value: Value::Int(3), id: WriteId::new(p(0), 101) },
            &[root],
        );
        assert!(matches!(b.build(), Err(MalformedHistory::ConcurrentSameObject(_, _))));
    }

    #[test]
    fn concurrent_barrier_rejected() {
        let mut b = HistoryBuilder::new(1);
        let (root, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_after(
            p(0),
            OpKind::Write { loc: Loc(1), value: Value::Int(2), id: WriteId::new(p(0), 100) },
            &[root],
        );
        b.push_after(
            p(0),
            OpKind::Barrier { barrier: BarrierId(0), round: BarrierRound(0) },
            &[root],
        );
        assert!(matches!(b.build(), Err(MalformedHistory::BarrierNotTotallyOrdered(_))));
    }

    #[test]
    fn duplicate_write_id_rejected() {
        let mut b = HistoryBuilder::new(1);
        let id = WriteId::new(p(0), 1);
        b.push(p(0), OpKind::Write { loc: Loc(0), value: Value::Int(1), id });
        b.push(p(0), OpKind::Write { loc: Loc(1), value: Value::Int(2), id });
        assert!(matches!(b.build(), Err(MalformedHistory::DuplicateWriteId(_))));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let errs = [
            MalformedHistory::DuplicateWriteId(WriteId::new(p(0), 1)),
            MalformedHistory::UnmatchedUnlock(OpId(1)),
            MalformedHistory::AmbiguousRead(OpId(2)),
            MalformedHistory::LockHeldAtEnd(p(0), LockId(1)),
            MalformedHistory::BarrierNotTotallyOrdered(OpId(0)),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
