//! Consistency checkers for causal, PRAM, and mixed histories
//! (Definitions 2, 3 and 4 of the paper).
//!
//! Given a well-formed [`History`], these functions decide whether every
//! read is legal under the corresponding definition. They are the test
//! oracle of the whole repository: every protocol execution recorded by the
//! runtime is replayed through them.
//!
//! # Counter objects
//!
//! The paper extends memory operations to abstract data types (Section 3
//! and the Cholesky discussion in Section 5.3). Reads of *counter*
//! locations (locations targeted by commutative updates) do not name a
//! single overwritable value, so Definitions 2/3 do not apply verbatim.
//! When a counter location has a uniform delta (the Cholesky case: all
//! decrements of 1) the checkers verify the equivalent visibility
//! invariant: the number of updates that causally precede the read is at
//! most the number of updates the returned value accounts for. Counter
//! reads outside that shape are skipped and reported in
//! [`CheckReport::skipped`].

use std::fmt;

use crate::causality::{Causality, CausalityError, Relation};
use crate::history::History;
use crate::ids::{Loc, OpId, WriteId};
use crate::op::{OpKind, ReadLabel};
use crate::value::Value;

/// A single consistency violation found by a checker.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The offending read.
    pub read: OpId,
    /// The label the read was judged under.
    pub judged_as: ReadLabel,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The ways a read can violate Definition 2 or 3.
#[derive(Clone, Debug, PartialEq)]
pub enum ViolationKind {
    /// The read returned a write that does not precede it in the relation
    /// (no `w ;i r`).
    WriterNotVisible {
        /// The write the read returned.
        writer: WriteId,
    },
    /// Some operation on the same location with a different value lies
    /// strictly between the writer and the read (`w ;i o ;i r`).
    Overwritten {
        /// The write the read returned.
        writer: WriteId,
        /// The intervening operation.
        by: OpId,
    },
    /// The read returned the initial value although a write on the
    /// location precedes it.
    StaleInitial {
        /// The preceding write (or differently-valued read).
        newer: OpId,
    },
    /// A counter read accounts for fewer updates than causally precede it.
    CounterMissingUpdates {
        /// Updates that precede the read in the relation.
        preceding: usize,
        /// Updates the returned value accounts for.
        accounted: usize,
    },
    /// A counter read's value is not representable as
    /// `initial + k · delta`.
    CounterValueUnreachable,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read {} (as {}): ", self.read, self.judged_as)?;
        match &self.kind {
            ViolationKind::WriterNotVisible { writer } => {
                write!(f, "returned {writer} which is not visible")
            }
            ViolationKind::Overwritten { writer, by } => {
                write!(f, "returned {writer} overwritten by {by}")
            }
            ViolationKind::StaleInitial { newer } => {
                write!(f, "returned the initial value despite visible {newer}")
            }
            ViolationKind::CounterMissingUpdates { preceding, accounted } => {
                write!(
                    f,
                    "counter read accounts for {accounted} updates but {preceding} precede it"
                )
            }
            ViolationKind::CounterValueUnreachable => {
                write!(f, "counter value unreachable from initial value")
            }
        }
    }
}

/// A violation of a whole-history property that no single read witnesses
/// (produced by the declarative validator, [`crate::spec::check_model`]).
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalViolation {
    /// The writes to a location cannot be embedded in one total order
    /// consistent with program order and every coherent process's
    /// observations (cache coherence, the processor-consistency extra).
    CoherenceCycle {
        /// The incoherent location.
        loc: Loc,
    },
    /// No serialization of the history is sequentially consistent (the
    /// total-store-order property).
    NotSerializable,
}

impl fmt::Display for GlobalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalViolation::CoherenceCycle { loc } => {
                write!(f, "writes to {loc} admit no coherent total order")
            }
            GlobalViolation::NotSerializable => {
                write!(f, "no serialization of the history is sequentially consistent")
            }
        }
    }
}

/// The outcome of a checker run: violations plus reads that could not be
/// judged (mixed write/update locations).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckReport {
    /// All violations found, in operation order.
    pub violations: Vec<Violation>,
    /// Whole-history violations (coherence, total store order). The
    /// legacy per-definition checkers never produce these; only the
    /// declarative validator does.
    pub global: Vec<GlobalViolation>,
    /// Reads skipped because their location mixes plain writes with
    /// commutative updates or uses non-uniform deltas.
    pub skipped: Vec<OpId>,
}

impl CheckReport {
    /// Returns `true` if no violations were found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty() && self.global.is_empty()
    }

    /// Converts the report into a `Result`, erring on any violation.
    pub fn into_result(self) -> Result<CheckReport, CheckError> {
        if self.is_consistent() {
            Ok(self)
        } else {
            Err(CheckError::Violations(self))
        }
    }
}

/// Error type of the consistency checkers.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckError {
    /// The history's causality relation is cyclic.
    Causality(CausalityError),
    /// Reads violating the checked definition were found.
    Violations(CheckReport),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Causality(e) => write!(f, "{e}"),
            CheckError::Violations(r) => {
                writeln!(f, "{} consistency violation(s):", r.violations.len() + r.global.len())?;
                for v in &r.violations {
                    writeln!(f, "  {v}")?;
                }
                for v in &r.global {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl From<CausalityError> for CheckError {
    fn from(e: CausalityError) -> Self {
        CheckError::Causality(e)
    }
}

/// How a checker decides which relation each read is judged under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Judging {
    /// Respect each read's own label (Definition 4, mixed consistency).
    ByLabel,
    /// Judge every read as causal (causal memory).
    AllCausal,
    /// Judge every read as PRAM (pipelined RAM).
    AllPram,
}

/// Checks **mixed consistency** (Definition 4): every read labeled PRAM is
/// a PRAM read and every read labeled Causal is a causal read.
///
/// # Errors
///
/// Returns the violations found, or a causality error for cyclic histories.
pub fn check_mixed(h: &History) -> Result<CheckReport, CheckError> {
    check_with(h, Judging::ByLabel)
}

/// Checks whether the history is a **causal history**: all reads are
/// causal reads, regardless of label.
///
/// # Errors
///
/// Returns the violations found, or a causality error for cyclic histories.
pub fn check_causal(h: &History) -> Result<CheckReport, CheckError> {
    check_with(h, Judging::AllCausal)
}

/// Checks whether the history is a **PRAM history**: all reads are PRAM
/// reads, regardless of label.
///
/// # Errors
///
/// Returns the violations found, or a causality error for cyclic histories.
pub fn check_pram(h: &History) -> Result<CheckReport, CheckError> {
    check_with(h, Judging::AllPram)
}

/// Checks every read against its process's **group causality relation**
/// `;i,G` (the paper's PRAM↔causal spectrum, Section 3.2): `groups[i]` is
/// the group of process `i` and must contain it. Singleton groups give
/// Definition 3 (PRAM), the full process set gives Definition 2 (causal).
///
/// # Errors
///
/// Returns the violations found, or a causality error for cyclic
/// histories.
///
/// # Panics
///
/// Panics if `groups.len() != h.nprocs()` or a group omits its owner.
pub fn check_grouped(
    h: &History,
    groups: &[Vec<crate::ProcId>],
) -> Result<CheckReport, CheckError> {
    assert_eq!(groups.len(), h.nprocs(), "one group per process");
    let causality = Causality::new(h)?;
    let mut report = CheckReport::default();

    let mut has_update = std::collections::HashSet::new();
    let mut has_write = std::collections::HashSet::new();
    for op in h.ops() {
        match op.kind {
            OpKind::Update { loc, .. } => {
                has_update.insert(loc);
            }
            OpKind::Write { loc, .. } => {
                has_write.insert(loc);
            }
            _ => {}
        }
    }

    let mut rels: Vec<Option<Relation>> = (0..h.nprocs()).map(|_| None).collect();
    for (id, op) in h.iter() {
        let OpKind::Read { loc, label, value, .. } = &op.kind else {
            continue;
        };
        let pi = op.proc.index();
        let rel = rels[pi].get_or_insert_with(|| causality.group_relation(op.proc, &groups[pi]));
        if has_update.contains(loc) {
            if has_write.contains(loc) {
                report.skipped.push(id);
                continue;
            }
            match check_counter_read(h, rel, id, *loc, *value, *label) {
                Ok(Some(v)) => report.violations.push(v),
                Ok(None) => {}
                Err(()) => report.skipped.push(id),
            }
            continue;
        }
        if let Some(kind) = check_plain_read(h, rel, id, *loc, *value) {
            report.violations.push(Violation { read: id, judged_as: *label, kind });
        }
    }
    report.into_result()
}

fn check_with(h: &History, judging: Judging) -> Result<CheckReport, CheckError> {
    let causality = Causality::new(h)?;
    let mut report = CheckReport::default();

    // Classify locations: counters are locations with commutative updates.
    let mut has_update = std::collections::HashSet::new();
    let mut has_write = std::collections::HashSet::new();
    for op in h.ops() {
        match op.kind {
            OpKind::Update { loc, .. } => {
                has_update.insert(loc);
            }
            OpKind::Write { loc, .. } => {
                has_write.insert(loc);
            }
            _ => {}
        }
    }

    // Relations are built lazily per process and cached.
    let mut causal_rel: Vec<Option<Relation>> = (0..h.nprocs()).map(|_| None).collect();
    let mut pram_rel: Vec<Option<Relation>> = (0..h.nprocs()).map(|_| None).collect();

    for (id, op) in h.iter() {
        let OpKind::Read { loc, label, value, .. } = &op.kind else {
            continue;
        };
        let judged_as = match judging {
            Judging::ByLabel => *label,
            Judging::AllCausal => ReadLabel::Causal,
            Judging::AllPram => ReadLabel::Pram,
        };
        let pi = op.proc.index();
        let rel: &Relation = match judged_as {
            ReadLabel::Causal => {
                causal_rel[pi].get_or_insert_with(|| causality.causal_relation(op.proc))
            }
            ReadLabel::Pram => pram_rel[pi].get_or_insert_with(|| causality.pram_relation(op.proc)),
        };

        if has_update.contains(loc) {
            if has_write.contains(loc) {
                report.skipped.push(id);
                continue;
            }
            match check_counter_read(h, rel, id, *loc, *value, judged_as) {
                Ok(Some(v)) => report.violations.push(v),
                Ok(None) => {}
                Err(()) => report.skipped.push(id),
            }
            continue;
        }

        if let Some(kind) = check_plain_read(h, rel, id, *loc, *value) {
            report.violations.push(Violation { read: id, judged_as, kind });
        }
    }
    report.into_result()
}

/// Definitions 2/3 for an ordinary read: the returned write must precede
/// the read and no differently-valued operation on the location may lie
/// strictly between them.
pub(crate) fn check_plain_read(
    h: &History,
    rel: &Relation,
    read: OpId,
    loc: Loc,
    value: Value,
) -> Option<ViolationKind> {
    let writer = h.reads_from(read);
    let wop = if writer.is_initial() { None } else { h.write_op(writer) };

    if let Some(w) = wop {
        if !rel.precedes(w, read) {
            return Some(ViolationKind::WriterNotVisible { writer });
        }
    }

    // Scan for an intervening o(x)u with u != v. Only member operations
    // count (other processes' reads are invisible to p_i).
    for (oid, op) in h.iter() {
        if oid == read || Some(oid) == wop || !rel.contains(oid) {
            continue;
        }
        let (oloc, ovalue) = match &op.kind {
            OpKind::Write { loc, value, .. } => (*loc, *value),
            OpKind::Read { loc, value, .. } => (*loc, *value),
            _ => continue,
        };
        if oloc != loc || ovalue == value {
            continue;
        }
        let after_writer = match wop {
            Some(w) => rel.precedes(w, oid),
            // The initial write precedes everything.
            None => true,
        };
        if after_writer && rel.precedes(oid, read) {
            return Some(match wop {
                Some(_) => ViolationKind::Overwritten { writer, by: oid },
                None => ViolationKind::StaleInitial { newer: oid },
            });
        }
    }
    None
}

/// If every update on `loc` has the same *integer* delta, returns it.
/// (Float counters are not value-checkable: apply order perturbs low
/// bits, so reads of them are reported as skipped.)
fn counter_delta(h: &History, loc: Loc) -> Option<i64> {
    let mut delta = None;
    for op in h.ops() {
        if let OpKind::Update { loc: l, delta: d, .. } = op.kind {
            if l == loc {
                match delta {
                    None => delta = Some(d.as_i64()?),
                    Some(prev) if Some(prev) != d.as_i64() => return None,
                    _ => {}
                }
            }
        }
    }
    delta.filter(|&d| d != 0)
}

/// Counter-read visibility: with uniform delta `d`, the returned value
/// `v = init + k·d` determines the number `k` of accounted updates; every
/// update preceding the read in the relation must be accounted for.
/// Returns `Err(())` when the read cannot be judged (non-uniform or
/// non-integer delta, non-integer initial/returned value) — callers
/// report those as skipped.
pub(crate) fn check_counter_read(
    h: &History,
    rel: &Relation,
    read: OpId,
    loc: Loc,
    value: Value,
    judged_as: ReadLabel,
) -> Result<Option<Violation>, ()> {
    let delta = counter_delta(h, loc).ok_or(())?;
    let init = h.initial(loc).as_i64().ok_or(())?;
    let v = value.as_i64().ok_or(())?;
    let diff = v - init;
    if diff % delta != 0 || diff / delta < 0 {
        return Ok(Some(Violation {
            read,
            judged_as,
            kind: ViolationKind::CounterValueUnreachable,
        }));
    }
    let accounted = (diff / delta) as usize;
    let preceding = h
        .iter()
        .filter(|(oid, op)| {
            matches!(op.kind, OpKind::Update { loc: l, .. } if l == loc) && rel.precedes(*oid, read)
        })
        .count();
    if preceding > accounted {
        return Ok(Some(Violation {
            read,
            judged_as,
            kind: ViolationKind::CounterMissingUpdates { preceding, accounted },
        }));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::ProcId;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    /// The classic causality litmus: PRAM allows it, causal forbids it.
    fn causality_litmus(label: ReadLabel) -> History {
        let mut b = HistoryBuilder::new(3);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_write(p(1), Loc(1), Value::Int(2));
        b.push_read(p(2), Loc(1), label, Value::Int(2));
        b.push_read(p(2), Loc(0), label, Value::Int(0));
        b.build().unwrap()
    }

    #[test]
    fn litmus_is_pram_but_not_causal() {
        let h = causality_litmus(ReadLabel::Pram);
        assert!(check_pram(&h).is_ok());
        let err = check_causal(&h).unwrap_err();
        let CheckError::Violations(report) = err else { panic!() };
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0].kind, ViolationKind::StaleInitial { .. }));
    }

    #[test]
    fn mixed_respects_labels() {
        // Labeled PRAM: fine. Labeled causal: violation.
        assert!(check_mixed(&causality_litmus(ReadLabel::Pram)).is_ok());
        assert!(check_mixed(&causality_litmus(ReadLabel::Causal)).is_err());
    }

    #[test]
    fn fifo_violation_is_caught_by_pram() {
        // p0 writes x=1 then x=2; p1 reads 2 then 1 — violates FIFO order.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(0), Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(1));
        let h = b.build().unwrap();
        let err = check_pram(&h).unwrap_err();
        let CheckError::Violations(report) = err else { panic!() };
        assert!(matches!(report.violations[0].kind, ViolationKind::Overwritten { .. }));
    }

    #[test]
    fn own_reads_constrain_later_reads() {
        // A process that read v=2 cannot later read the older v=1
        // (its own read is part of ;i).
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(0), Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert!(check_causal(&h).is_err());
    }

    #[test]
    fn concurrent_writes_may_be_read_in_any_order() {
        // w0(x)1 and w1(x)2 are concurrent; p2 and p3 may disagree on the
        // order under causal memory (this is what distinguishes causal
        // from sequential consistency).
        let mut b = HistoryBuilder::new(4);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_read(p(2), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(2));
        b.push_read(p(3), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        assert!(check_causal(&h).is_ok());
        assert!(check_pram(&h).is_ok());
    }

    #[test]
    fn reading_never_written_value_reports_not_visible() {
        // Builder would reject unresolvable reads, so record a writer whose
        // write never becomes visible: writer exists but is causally after.
        // Simplest stand-in: read returns a write that IS visible — force
        // WriterNotVisible via an await cycle-free but unordered pair is
        // impossible with rf in ;, so this kind only fires for counter-free
        // relations. Covered by construction: rf ⊆ ; makes the writer
        // always visible; assert exactly that.
        let mut b = HistoryBuilder::new(2);
        let (_, w) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read_from(p(1), Loc(0), ReadLabel::Causal, Value::Int(1), w);
        let h = b.build().unwrap();
        assert!(check_causal(&h).is_ok());
    }

    #[test]
    fn barrier_makes_stale_read_a_violation_even_under_pram() {
        // p0 writes before the barrier; p1 reads the initial value after
        // the barrier — illegal even for PRAM reads (↦bar is in ↦PRAM).
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_barrier(p(0), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_barrier(p(1), crate::BarrierId(0), crate::BarrierRound(0));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        let h = b.build().unwrap();
        assert!(check_pram(&h).is_err());
        assert!(check_causal(&h).is_err());
    }

    #[test]
    fn lock_chain_is_weaker_for_pram_than_causal() {
        // Three critical sections: p0 writes x, p1 writes y (no x access),
        // p2 reads x stale. Causal forbids it (transitive); PRAM allows it
        // (only the immediate predecessor p1 is synchronized-with).
        let mut b = HistoryBuilder::new(3);
        let l = crate::LockId(0);
        use crate::LockMode::Write as W;
        b.push_lock(p(0), l, W);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_unlock(p(0), l, W);
        b.push_lock(p(1), l, W);
        b.push_write(p(1), Loc(1), Value::Int(2));
        b.push_unlock(p(1), l, W);
        b.push_lock(p(2), l, W);
        b.push_read(p(2), Loc(0), ReadLabel::Pram, Value::Int(0));
        b.push_unlock(p(2), l, W);
        let h = b.build().unwrap();
        assert!(check_pram(&h).is_ok(), "PRAM sees only the immediate predecessor");
        assert!(check_causal(&h).is_err(), "causal sees the transitive chain");
    }

    #[test]
    fn await_transfers_visibility() {
        // p0: w(x)5; w(flag)1. p1: await(flag=1); r(x) must see 5 under
        // causal AND under PRAM (direct dependency).
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(5));
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_await(p(1), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        let h = b.build().unwrap();
        assert!(check_pram(&h).is_err());
        assert!(check_causal(&h).is_err());
    }

    #[test]
    fn counter_reads_check_visibility() {
        // Two decrements; an await-free causal read that accounts for both.
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(0), Value::Int(2));
        b.push_update(p(0), Loc(0), -1);
        b.push_update(p(0), Loc(0), -1);
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(0));
        let h = b.build().unwrap();
        // p1 never observed the updates causally — value 0 accounts for
        // both updates, but neither precedes the read, so it's fine.
        assert!(check_causal(&h).is_ok());
    }

    #[test]
    fn counter_read_missing_visible_update_is_violation() {
        // p0 decrements, then p1 awaits on a flag written after the
        // decrement, then reads the counter as if nothing happened.
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(0), Value::Int(2));
        b.push_update(p(0), Loc(0), -1);
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_await(p(1), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(2));
        let h = b.build().unwrap();
        let err = check_causal(&h).unwrap_err();
        let CheckError::Violations(r) = err else { panic!() };
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::CounterMissingUpdates { preceding: 1, accounted: 0 }
        ));
    }

    #[test]
    fn counter_unreachable_value() {
        let mut b = HistoryBuilder::new(1);
        b.set_initial(Loc(0), Value::Int(4));
        b.push_update(p(0), Loc(0), -2);
        b.push_read(p(0), Loc(0), ReadLabel::Causal, Value::Int(3));
        let h = b.build().unwrap();
        let err = check_causal(&h).unwrap_err();
        let CheckError::Violations(r) = err else { panic!() };
        assert!(matches!(r.violations[0].kind, ViolationKind::CounterValueUnreachable));
    }

    #[test]
    fn mixed_write_update_location_is_skipped() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(p(0), Loc(0), Value::Int(10));
        b.push_update(p(0), Loc(0), -1);
        b.push_read_from(p(0), Loc(0), ReadLabel::Causal, Value::Int(9), WriteId::new(p(0), 2));
        let h = b.build().unwrap();
        let report = check_causal(&h).unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert!(report.is_consistent());
    }

    #[test]
    fn violation_display_is_informative() {
        let h = causality_litmus(ReadLabel::Causal);
        let err = check_mixed(&h).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("violation"));
        assert!(text.contains("initial"));
    }
}
