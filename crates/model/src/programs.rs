//! Program-level conditions: Corollary 1 (entry-consistent programs) and
//! Corollary 2 (PRAM-consistent phase programs).
//!
//! Section 4 of the paper isolates two syntactically checkable program
//! classes whose executions are sequentially consistent on weaker memory:
//!
//! * **Corollary 1** — *entry-consistent* programs: shared variables are
//!   partitioned, each set guarded by one lock, reads happen under a read
//!   or write lock, writes under a write lock. With causal reads such
//!   programs behave sequentially consistently.
//! * **Corollary 2** — *PRAM-consistent* programs: between consecutive
//!   barriers each variable is updated at most once and all same-phase
//!   reads follow the update. With PRAM reads such programs behave
//!   sequentially consistently.
//!
//! The paper notes both definitions "can be easily checked by a compiler";
//! this module checks them *dynamically* on recorded histories, which is
//! the natural analogue for a runtime-recorded execution (and is exactly
//! what a testing harness wants: a per-execution certificate).

use std::collections::HashMap;
use std::fmt;

use crate::causality::{Causality, CausalityError};
use crate::history::History;
use crate::ids::{Loc, LockId, OpId, ProcId};
use crate::op::{LockMode, OpKind};

/// A mapping from shared variables to the lock guarding them
/// (Corollary 1's partition: several variables may share one lock).
pub type LockMapping = HashMap<Loc, LockId>;

/// A violation of the entry-consistency discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryViolation {
    /// A location was accessed but has no lock assigned.
    NoLockAssigned {
        /// The unguarded access.
        op: OpId,
        /// The location involved.
        loc: Loc,
    },
    /// A read happened without holding the assigned lock in any mode.
    ReadWithoutLock {
        /// The offending read.
        op: OpId,
        /// The lock that should have been held.
        lock: LockId,
    },
    /// A write happened without holding the assigned lock in write mode.
    WriteWithoutWriteLock {
        /// The offending write.
        op: OpId,
        /// The lock that should have been held.
        lock: LockId,
    },
}

impl fmt::Display for EntryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryViolation::NoLockAssigned { op, loc } => {
                write!(f, "{op} accesses {loc} which has no assigned lock")
            }
            EntryViolation::ReadWithoutLock { op, lock } => {
                write!(f, "read {op} without holding {lock}")
            }
            EntryViolation::WriteWithoutWriteLock { op, lock } => {
                write!(f, "write {op} without write-holding {lock}")
            }
        }
    }
}

/// Returns `true` if operation `op` of process `proc` executes while
/// `lock` is held by that process in at least `mode`.
fn held_during(
    h: &History,
    causality: &Causality<'_>,
    op: OpId,
    proc: ProcId,
    lock: LockId,
    mode: LockMode,
) -> bool {
    let Some(epochs) = h.lock_epochs().get(&lock) else {
        return false;
    };
    epochs.iter().any(|ep| {
        let mode_ok = match mode {
            LockMode::Read => true, // read or write lock both allow reads
            LockMode::Write => ep.mode == LockMode::Write,
        };
        mode_ok
            && ep.members.iter().any(|&(l, u)| {
                h.op(l).proc == proc && causality.po_precedes(l, op) && causality.po_precedes(op, u)
            })
    })
}

/// Checks the entry-consistency discipline of Corollary 1 against an
/// explicit variable-to-lock mapping.
///
/// Every read of a mapped location must occur inside a read or write
/// critical section of its lock; every write inside a write critical
/// section. Commutative updates are treated as writes. Locations absent
/// from the mapping are reported via
/// [`EntryViolation::NoLockAssigned`].
///
/// # Errors
///
/// Returns all violations, or a [`CausalityError`] for cyclic histories.
pub fn check_entry_consistent(h: &History, mapping: &LockMapping) -> Result<(), EntryCheckError> {
    let causality = Causality::new(h)?;
    let mut violations = Vec::new();
    for (id, op) in h.iter() {
        let (loc, is_write) = match &op.kind {
            OpKind::Read { loc, .. } => (*loc, false),
            OpKind::Write { loc, .. } | OpKind::Update { loc, .. } => (*loc, true),
            _ => continue,
        };
        let Some(&lock) = mapping.get(&loc) else {
            violations.push(EntryViolation::NoLockAssigned { op: id, loc });
            continue;
        };
        if is_write {
            if !held_during(h, &causality, id, op.proc, lock, LockMode::Write) {
                violations.push(EntryViolation::WriteWithoutWriteLock { op: id, lock });
            }
        } else if !held_during(h, &causality, id, op.proc, lock, LockMode::Read) {
            violations.push(EntryViolation::ReadWithoutLock { op: id, lock });
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(EntryCheckError::Violations(violations))
    }
}

/// Error type of [`check_entry_consistent`].
#[derive(Clone, Debug, PartialEq)]
pub enum EntryCheckError {
    /// The causality relation is cyclic.
    Causality(CausalityError),
    /// The discipline was violated.
    Violations(Vec<EntryViolation>),
}

impl fmt::Display for EntryCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryCheckError::Causality(e) => write!(f, "{e}"),
            EntryCheckError::Violations(vs) => {
                writeln!(f, "{} entry-consistency violation(s):", vs.len())?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EntryCheckError {}

impl From<CausalityError> for EntryCheckError {
    fn from(e: CausalityError) -> Self {
        EntryCheckError::Causality(e)
    }
}

/// Infers a variable-to-lock mapping under which the history is
/// entry-consistent, if one exists.
///
/// For each accessed location the candidate set is the intersection, over
/// all accesses, of the locks held in the required mode; any member is a
/// valid assignment (the smallest id is chosen). Returns `None` if some
/// accessed location has an empty candidate set.
///
/// # Errors
///
/// Returns a [`CausalityError`] for cyclic histories.
pub fn infer_lock_mapping(h: &History) -> Result<Option<LockMapping>, CausalityError> {
    let causality = Causality::new(h)?;
    let all_locks: Vec<LockId> = h.lock_epochs().keys().copied().collect();
    let mut candidates: HashMap<Loc, Vec<LockId>> = HashMap::new();
    for (id, op) in h.iter() {
        let (loc, mode) = match &op.kind {
            OpKind::Read { loc, .. } => (*loc, LockMode::Read),
            OpKind::Write { loc, .. } | OpKind::Update { loc, .. } => (*loc, LockMode::Write),
            _ => continue,
        };
        let held: Vec<LockId> = all_locks
            .iter()
            .copied()
            .filter(|&l| held_during(h, &causality, id, op.proc, l, mode))
            .collect();
        match candidates.get_mut(&loc) {
            None => {
                candidates.insert(loc, held);
            }
            Some(prev) => prev.retain(|l| held.contains(l)),
        }
    }
    let mut mapping = LockMapping::new();
    for (loc, cands) in candidates {
        match cands.first() {
            Some(&l) => {
                mapping.insert(loc, l);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(mapping))
}

/// A violation of the PRAM-consistency (phase-program) discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseViolation {
    /// Two writes to the same location in one phase.
    MultipleWritesInPhase {
        /// The location written twice.
        loc: Loc,
        /// The first write.
        first: OpId,
        /// The second write.
        second: OpId,
        /// The phase index.
        phase: usize,
    },
    /// A read unordered with a same-phase write of the same location
    /// (nondeterministic across serializations).
    ReadNotAfterWrite {
        /// The offending read.
        read: OpId,
        /// The same-phase write it fails to follow.
        write: OpId,
        /// The phase index.
        phase: usize,
    },
}

impl fmt::Display for PhaseViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseViolation::MultipleWritesInPhase { loc, first, second, phase } => {
                write!(f, "{loc} written twice in phase {phase} ({first}, {second})")
            }
            PhaseViolation::ReadNotAfterWrite { read, write, phase } => {
                write!(f, "{read} unordered with same-phase write {write} (phase {phase})")
            }
        }
    }
}

/// Error type of [`check_pram_consistent_program`].
#[derive(Clone, Debug, PartialEq)]
pub enum PhaseCheckError {
    /// The causality relation is cyclic.
    Causality(CausalityError),
    /// The discipline was violated.
    Violations(Vec<PhaseViolation>),
}

impl fmt::Display for PhaseCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseCheckError::Causality(e) => write!(f, "{e}"),
            PhaseCheckError::Violations(vs) => {
                writeln!(f, "{} phase-discipline violation(s):", vs.len())?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PhaseCheckError {}

impl From<CausalityError> for PhaseCheckError {
    fn from(e: CausalityError) -> Self {
        PhaseCheckError::Causality(e)
    }
}

/// Checks the PRAM-consistency discipline of Corollary 2: between
/// consecutive barriers (a *computation phase*), every location is written
/// at most once, and any same-phase read of a written location is ordered
/// with the write by the causality relation (reads-after see the value,
/// program-order-earlier reads are the deterministic read-modify-write
/// idiom).
///
/// An operation's phase is the number of barrier operations preceding it
/// in its process's program order (all barrier objects pooled); barrier
/// synchronization aligns these counters across processes.
///
/// # Errors
///
/// Returns all violations, or a [`CausalityError`] for cyclic histories.
pub fn check_pram_consistent_program(h: &History) -> Result<(), PhaseCheckError> {
    let causality = Causality::new(h)?;

    // Phase of each op: number of barrier ops of the same process that
    // precede it in program order.
    let mut phase = vec![0usize; h.len()];
    for (id, op) in h.iter() {
        let p = op.proc;
        phase[id.index()] = h
            .proc_ops(p)
            .iter()
            .filter(|&&o| {
                matches!(h.op(o).kind, OpKind::Barrier { .. }) && causality.po_precedes(o, id)
            })
            .count();
    }

    let mut violations = Vec::new();
    // Writes per (phase, loc).
    let mut writes: HashMap<(usize, Loc), OpId> = HashMap::new();
    for (id, op) in h.iter() {
        let loc = match &op.kind {
            OpKind::Write { loc, .. } | OpKind::Update { loc, .. } => *loc,
            _ => continue,
        };
        let ph = phase[id.index()];
        if let Some(&first) = writes.get(&(ph, loc)) {
            violations.push(PhaseViolation::MultipleWritesInPhase {
                loc,
                first,
                second: id,
                phase: ph,
            });
        } else {
            writes.insert((ph, loc), id);
        }
    }
    for (id, op) in h.iter() {
        let loc = match &op.kind {
            OpKind::Read { loc, .. } | OpKind::Await { loc, .. } => *loc,
            _ => continue,
        };
        let ph = phase[id.index()];
        if let Some(&w) = writes.get(&(ph, loc)) {
            // A same-phase read must be *ordered* with the write: after it
            // (sees the new value in every serialization) or before it
            // (the read-modify-write idiom — sees the old value in every
            // serialization). Only unordered pairs are nondeterministic.
            if w != id && !causality.precedes(w, id) && !causality.precedes(id, w) {
                violations.push(PhaseViolation::ReadNotAfterWrite {
                    read: id,
                    write: w,
                    phase: ph,
                });
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(PhaseCheckError::Violations(violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{BarrierId, BarrierRound};
    use crate::op::ReadLabel;
    use crate::value::Value;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn entry_consistent_history() -> History {
        use LockMode::{Read as R, Write as W};
        let mut b = HistoryBuilder::new(2);
        let l = LockId(0);
        b.push_lock(p(0), l, W);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_unlock(p(0), l, W);
        b.push_lock(p(1), l, R);
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_unlock(p(1), l, R);
        b.build().unwrap()
    }

    #[test]
    fn entry_consistent_accepts_disciplined_history() {
        let h = entry_consistent_history();
        let mapping: LockMapping = [(Loc(0), LockId(0))].into_iter().collect();
        check_entry_consistent(&h, &mapping).unwrap();
    }

    #[test]
    fn entry_consistent_rejects_unlocked_write() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(p(0), Loc(0), Value::Int(1));
        let h = b.build().unwrap();
        let mapping: LockMapping = [(Loc(0), LockId(0))].into_iter().collect();
        let err = check_entry_consistent(&h, &mapping).unwrap_err();
        let EntryCheckError::Violations(vs) = err else { panic!() };
        assert!(matches!(vs[0], EntryViolation::WriteWithoutWriteLock { .. }));
    }

    #[test]
    fn entry_consistent_rejects_read_under_wrong_lock() {
        use LockMode::Read as R;
        let mut b = HistoryBuilder::new(1);
        b.push_lock(p(0), LockId(1), R);
        b.push_read(p(0), Loc(0), ReadLabel::Causal, Value::Int(0));
        b.push_unlock(p(0), LockId(1), R);
        let h = b.build().unwrap();
        let mapping: LockMapping = [(Loc(0), LockId(0))].into_iter().collect();
        let err = check_entry_consistent(&h, &mapping).unwrap_err();
        let EntryCheckError::Violations(vs) = err else { panic!() };
        assert!(matches!(vs[0], EntryViolation::ReadWithoutLock { .. }));
    }

    #[test]
    fn entry_consistent_write_under_read_lock_fails() {
        use LockMode::Read as R;
        let mut b = HistoryBuilder::new(1);
        b.push_lock(p(0), LockId(0), R);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_unlock(p(0), LockId(0), R);
        let h = b.build().unwrap();
        let mapping: LockMapping = [(Loc(0), LockId(0))].into_iter().collect();
        assert!(check_entry_consistent(&h, &mapping).is_err());
    }

    #[test]
    fn missing_mapping_is_reported() {
        let h = entry_consistent_history();
        let mapping = LockMapping::new();
        let err = check_entry_consistent(&h, &mapping).unwrap_err();
        let EntryCheckError::Violations(vs) = err else { panic!() };
        assert!(vs.iter().all(|v| matches!(v, EntryViolation::NoLockAssigned { .. })));
    }

    #[test]
    fn mapping_inference_finds_the_lock() {
        let h = entry_consistent_history();
        let mapping = infer_lock_mapping(&h).unwrap().expect("inferable");
        assert_eq!(mapping.get(&Loc(0)), Some(&LockId(0)));
        check_entry_consistent(&h, &mapping).unwrap();
    }

    #[test]
    fn mapping_inference_fails_for_unguarded_access() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(p(0), Loc(0), Value::Int(1));
        let h = b.build().unwrap();
        assert_eq!(infer_lock_mapping(&h).unwrap(), None);
    }

    fn phase_program(read_in_write_phase: bool) -> History {
        // Fig. 2 shape: phase 0 writes temp, barrier, phase 1 reads temp.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        if read_in_write_phase {
            b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        }
        b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        b.push_barrier(p(1), BarrierId(0), BarrierRound(0));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(1));
        b.build().unwrap()
    }

    #[test]
    fn phase_program_accepts_fig2_shape() {
        check_pram_consistent_program(&phase_program(false)).unwrap();
    }

    #[test]
    fn phase_program_rejects_same_phase_unordered_read() {
        let err = check_pram_consistent_program(&phase_program(true)).unwrap_err();
        let PhaseCheckError::Violations(vs) = err else { panic!() };
        assert!(matches!(vs[0], PhaseViolation::ReadNotAfterWrite { .. }));
    }

    #[test]
    fn phase_program_rejects_double_write() {
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        let err = check_pram_consistent_program(&h).unwrap_err();
        let PhaseCheckError::Violations(vs) = err else { panic!() };
        assert!(matches!(vs[0], PhaseViolation::MultipleWritesInPhase { .. }));
    }

    #[test]
    fn same_process_read_after_write_in_phase_is_fine() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(0), Loc(0), ReadLabel::Pram, Value::Int(1));
        let h = b.build().unwrap();
        check_pram_consistent_program(&h).unwrap();
    }

    #[test]
    fn phases_advance_with_barriers() {
        // Write in phase 0 and phase 1 to the same loc: allowed (different
        // phases).
        let mut b = HistoryBuilder::new(1);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        b.push_write(p(0), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        check_pram_consistent_program(&h).unwrap();
    }

    #[test]
    fn violation_displays() {
        let v = PhaseViolation::MultipleWritesInPhase {
            loc: Loc(0),
            first: OpId(0),
            second: OpId(1),
            phase: 0,
        };
        assert!(v.to_string().contains("written twice"));
        let e = EntryViolation::NoLockAssigned { op: OpId(0), loc: Loc(0) };
        assert!(e.to_string().contains("no assigned lock"));
    }
}
