//! A line-based text format for histories: persist litmus tests, share
//! counterexamples, feed the `mc-check` command-line tool.
//!
//! The format is one operation per line, in global (grant/completion)
//! order, with `#` comments:
//!
//! ```text
//! # mixed-consistency history v1
//! procs 3
//! init x1 = 5
//! p0 w x0 42 id=0:1
//! p1 r pram x0 42 from=0:1
//! p1 r causal x1 5 from=init
//! p0 u x2 += -1 id=0:2
//! p0 wl l0
//! p0 wu l0
//! p2 rl l0
//! p2 ru l0
//! p0 b b0 k0
//! p1 a x0 = 42 from=0:1
//! ```
//!
//! Values are `<int>`, `<float with a dot or exponent>`, `true`/`false`.
//! Write identities are `proc:seq`; `from=` on reads/awaits is optional
//! (omitted writers are resolved by unique value at build time) and
//! `from=init` names the initial value. Await sources may list several
//! ids separated by commas.

use std::fmt;
use std::fmt::Write as _;

use crate::history::{History, HistoryBuilder, MalformedHistory};
use crate::ids::{BarrierId, BarrierRound, Loc, LockId, ProcId, WriteId};
use crate::op::{LockMode, OpKind, ReadLabel};
use crate::value::Value;

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed operations do not form a well-formed history.
    Malformed(MalformedHistory),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            TraceError::Malformed(e) => write!(f, "malformed history: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<MalformedHistory> for TraceError {
    fn from(e: MalformedHistory) -> Self {
        TraceError::Malformed(e)
    }
}

fn fmt_value(v: Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::F64(x) => {
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
    }
}

fn fmt_wid(w: WriteId) -> String {
    if w.is_initial() {
        "init".to_string()
    } else {
        format!("{}:{}", w.proc.0, w.seq)
    }
}

/// Serializes a history to the text format.
pub fn to_text(h: &History) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# mixed-consistency history v1");
    let _ = writeln!(out, "procs {}", h.nprocs());
    // Initial values: emit every location with a non-default initial.
    let mut locs: Vec<Loc> = h
        .ops()
        .iter()
        .filter_map(|op| op.kind.loc())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    locs.sort();
    for l in locs {
        let init = h.initial(l);
        if init != Value::INITIAL {
            let _ = writeln!(out, "init x{} = {}", l.0, fmt_value(init));
        }
    }
    for (id, op) in h.iter() {
        let p = op.proc.0;
        let line = match &op.kind {
            OpKind::Write { loc, value, id } => {
                format!("p{p} w x{} {} id={}", loc.0, fmt_value(*value), fmt_wid(*id))
            }
            OpKind::Update { loc, delta, id } => {
                format!("p{p} u x{} += {} id={}", loc.0, fmt_value(*delta), fmt_wid(*id))
            }
            OpKind::Read { loc, label, value, .. } => {
                let label = match label {
                    ReadLabel::Pram => "pram",
                    ReadLabel::Causal => "causal",
                };
                format!(
                    "p{p} r {label} x{} {} from={}",
                    loc.0,
                    fmt_value(*value),
                    fmt_wid(h.reads_from(id))
                )
            }
            OpKind::Lock { lock, mode } => match mode {
                LockMode::Write => format!("p{p} wl l{}", lock.0),
                LockMode::Read => format!("p{p} rl l{}", lock.0),
            },
            OpKind::Unlock { lock, mode } => match mode {
                LockMode::Write => format!("p{p} wu l{}", lock.0),
                LockMode::Read => format!("p{p} ru l{}", lock.0),
            },
            OpKind::Barrier { barrier, round } => {
                format!("p{p} b b{} k{}", barrier.0, round.0)
            }
            OpKind::Await { loc, value, .. } => {
                let sources: Vec<String> =
                    h.await_sources(id).iter().map(|w| fmt_wid(*w)).collect();
                format!("p{p} a x{} = {} from={}", loc.0, fmt_value(*value), sources.join(","))
            }
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

fn syntax(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Syntax { line, message: message.into() }
}

fn parse_value(tok: &str, line: usize) -> Result<Value, TraceError> {
    if tok == "true" {
        return Ok(Value::Bool(true));
    }
    if tok == "false" {
        return Ok(Value::Bool(false));
    }
    if tok.contains('.') || tok.contains('e') || tok.contains("inf") || tok.contains("NaN") {
        return tok
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| syntax(line, format!("bad float `{tok}`")));
    }
    tok.parse::<i64>().map(Value::Int).map_err(|_| syntax(line, format!("bad value `{tok}`")))
}

fn parse_prefixed(tok: &str, prefix: char, line: usize) -> Result<u32, TraceError> {
    tok.strip_prefix(prefix)
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| syntax(line, format!("expected `{prefix}<n>`, got `{tok}`")))
}

fn parse_wid(tok: &str, line: usize) -> Result<Option<WriteId>, TraceError> {
    if tok == "init" {
        return Ok(None);
    }
    let (p, s) = tok
        .split_once(':')
        .ok_or_else(|| syntax(line, format!("expected `proc:seq`, got `{tok}`")))?;
    let proc = p.parse::<u32>().map_err(|_| syntax(line, format!("bad writer proc `{p}`")))?;
    let seq = s.parse::<u32>().map_err(|_| syntax(line, format!("bad writer seq `{s}`")))?;
    Ok(Some(WriteId::new(ProcId(proc), seq)))
}

/// Parses the text format back into a validated [`History`].
///
/// # Errors
///
/// Returns a [`TraceError`] on syntax errors or well-formedness failures.
pub fn parse(text: &str) -> Result<History, TraceError> {
    let mut builder: Option<HistoryBuilder> = None;
    let mut pending_inits: Vec<(Loc, Value)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks[0] == "procs" {
            if builder.is_some() {
                return Err(syntax(lineno, "duplicate `procs` line"));
            }
            let n = toks
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| syntax(lineno, "expected `procs <n>`"))?;
            let mut b = HistoryBuilder::new(n);
            for (l, v) in pending_inits.drain(..) {
                b.set_initial(l, v);
            }
            builder = Some(b);
            continue;
        }
        if toks[0] == "init" {
            // init x<loc> = <value>
            if toks.len() != 4 || toks[2] != "=" {
                return Err(syntax(lineno, "expected `init x<loc> = <value>`"));
            }
            let loc = Loc(parse_prefixed(toks[1], 'x', lineno)?);
            let value = parse_value(toks[3], lineno)?;
            match &mut builder {
                Some(b) => {
                    b.set_initial(loc, value);
                }
                None => pending_inits.push((loc, value)),
            }
            continue;
        }

        let b = builder
            .as_mut()
            .ok_or_else(|| syntax(lineno, "`procs <n>` must precede operations"))?;
        let proc = ProcId(parse_prefixed(toks[0], 'p', lineno)?);
        let op = *toks.get(1).ok_or_else(|| syntax(lineno, "missing operation"))?;
        match op {
            "w" => {
                // p w x<loc> <value> id=<wid>
                if toks.len() != 5 || !toks[4].starts_with("id=") {
                    return Err(syntax(lineno, "expected `w x<loc> <value> id=<p:s>`"));
                }
                let loc = Loc(parse_prefixed(toks[2], 'x', lineno)?);
                let value = parse_value(toks[3], lineno)?;
                let id = parse_wid(&toks[4][3..], lineno)?
                    .ok_or_else(|| syntax(lineno, "writes need a real id"))?;
                b.push(proc, OpKind::Write { loc, value, id });
            }
            "u" => {
                // p u x<loc> += <delta> id=<wid>
                if toks.len() != 6 || toks[3] != "+=" || !toks[5].starts_with("id=") {
                    return Err(syntax(lineno, "expected `u x<loc> += <delta> id=<p:s>`"));
                }
                let loc = Loc(parse_prefixed(toks[2], 'x', lineno)?);
                let delta = parse_value(toks[4], lineno)?;
                let id = parse_wid(&toks[5][3..], lineno)?
                    .ok_or_else(|| syntax(lineno, "updates need a real id"))?;
                b.push(proc, OpKind::Update { loc, delta, id });
            }
            "r" => {
                // p r <label> x<loc> <value> [from=<wid>]
                if toks.len() < 5 {
                    return Err(syntax(lineno, "expected `r <label> x<loc> <value> [from=..]`"));
                }
                let label = match toks[2] {
                    "pram" => ReadLabel::Pram,
                    "causal" => ReadLabel::Causal,
                    other => return Err(syntax(lineno, format!("bad label `{other}`"))),
                };
                let loc = Loc(parse_prefixed(toks[3], 'x', lineno)?);
                let value = parse_value(toks[4], lineno)?;
                let writer = match toks.get(5) {
                    None => None,
                    Some(t) if t.starts_with("from=") => {
                        Some(parse_wid(&t[5..], lineno)?.unwrap_or(WriteId::initial(loc)))
                    }
                    Some(t) => return Err(syntax(lineno, format!("unexpected `{t}`"))),
                };
                b.push(proc, OpKind::Read { loc, label, value, writer });
            }
            "wl" | "rl" | "wu" | "ru" => {
                if toks.len() != 3 {
                    return Err(syntax(lineno, format!("expected `{op} l<lock>`")));
                }
                let lock = LockId(parse_prefixed(toks[2], 'l', lineno)?);
                let mode = if op.starts_with('w') { LockMode::Write } else { LockMode::Read };
                if op.ends_with('l') {
                    b.push(proc, OpKind::Lock { lock, mode });
                } else {
                    b.push(proc, OpKind::Unlock { lock, mode });
                }
            }
            "b" => {
                // p b b<barrier> k<round>
                if toks.len() != 4 {
                    return Err(syntax(lineno, "expected `b b<barrier> k<round>`"));
                }
                let barrier = BarrierId(parse_prefixed(toks[2], 'b', lineno)?);
                let round = BarrierRound(parse_prefixed(toks[3], 'k', lineno)?);
                b.push(proc, OpKind::Barrier { barrier, round });
            }
            "a" => {
                // p a x<loc> = <value> [from=<wid>,<wid>...]
                if toks.len() < 5 || toks[3] != "=" {
                    return Err(syntax(lineno, "expected `a x<loc> = <value> [from=..]`"));
                }
                let loc = Loc(parse_prefixed(toks[2], 'x', lineno)?);
                let value = parse_value(toks[4], lineno)?;
                let writers = match toks.get(5) {
                    None => Vec::new(),
                    Some(t) if t.starts_with("from=") => {
                        let mut ws = Vec::new();
                        for part in t[5..].split(',') {
                            ws.push(parse_wid(part, lineno)?.unwrap_or(WriteId::initial(loc)));
                        }
                        ws
                    }
                    Some(t) => return Err(syntax(lineno, format!("unexpected `{t}`"))),
                };
                b.push(proc, OpKind::Await { loc, value, writers });
            }
            other => return Err(syntax(lineno, format!("unknown operation `{other}`"))),
        }
    }
    let b = builder.ok_or_else(|| syntax(0, "missing `procs <n>` line"))?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus;

    fn roundtrip(h: &History) {
        let text = to_text(h);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(parsed.len(), h.len());
        assert_eq!(parsed.nprocs(), h.nprocs());
        // Structural equality: same ops in the same order.
        for (a, b) in h.ops().iter().zip(parsed.ops()) {
            assert_eq!(a.proc, b.proc);
            // Reads carry resolved writers after parsing; compare the
            // printable form, which includes everything relevant.
            assert_eq!(a.to_string(), b.to_string());
        }
        // And identical checker verdicts.
        assert_eq!(
            crate::check::check_mixed(h).is_ok(),
            crate::check::check_mixed(&parsed).is_ok()
        );
        assert_eq!(to_text(&parsed), text, "serialization is a fixpoint");
    }

    #[test]
    fn roundtrip_all_litmuses() {
        roundtrip(&litmus::causality_chain(ReadLabel::Pram));
        roundtrip(&litmus::store_buffer());
        roundtrip(&litmus::write_order_disagreement());
        roundtrip(&litmus::fifo_violation());
        roundtrip(&litmus::lock_transitive_chain());
        roundtrip(&litmus::entry_consistent_transfer());
        roundtrip(&litmus::barrier_phase_program());
        roundtrip(&litmus::producer_consumer_await());
        roundtrip(&litmus::counter_await());
        roundtrip(&litmus::figure1().history);
    }

    #[test]
    fn parse_minimal_by_hand() {
        let text = "
# a comment
procs 2
init x1 = 5
p0 w x0 42 id=0:1
p1 r pram x0 42
p1 r causal x1 5 from=init
p1 a x0 = 42 from=0:1
";
        let h = parse(text).unwrap();
        assert_eq!(h.nprocs(), 2);
        assert_eq!(h.len(), 4);
        assert_eq!(h.initial(Loc(1)), Value::Int(5));
        crate::check::check_mixed(&h).unwrap();
    }

    #[test]
    fn float_values_roundtrip() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(ProcId(0), Loc(0), Value::F64(2.5));
        b.push_write(ProcId(0), Loc(1), Value::F64(3.0));
        b.push_read(ProcId(0), Loc(0), ReadLabel::Causal, Value::F64(2.5));
        let h = b.build().unwrap();
        roundtrip(&h);
    }

    #[test]
    fn bool_values_roundtrip() {
        let mut b = HistoryBuilder::new(1);
        b.push_write(ProcId(0), Loc(0), Value::Bool(true));
        b.push_read(ProcId(0), Loc(0), ReadLabel::Pram, Value::Bool(true));
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("procs 1\np0 zz x0").unwrap_err();
        assert!(matches!(err, TraceError::Syntax { line: 2, .. }), "{err}");
        let err = parse("p0 w x0 1 id=0:1").unwrap_err();
        assert!(err.to_string().contains("procs"));
        let err = parse("procs 1\np0 w x0 zzz id=0:1").unwrap_err();
        assert!(err.to_string().contains("bad value"), "{err}");
        let err = parse("procs 1\nprocs 2").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn malformed_histories_are_rejected() {
        let err = parse("procs 1\np0 wu l0").unwrap_err();
        assert!(matches!(err, TraceError::Malformed(_)), "{err}");
    }

    #[test]
    fn ambiguous_read_reported() {
        let text = "procs 2\np0 w x0 5 id=0:1\np1 w x0 5 id=1:1\np0 r pram x0 5";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("matches several"), "{err}");
    }
}
