//! The causality relation `;` and its per-process restrictions.
//!
//! Section 3 of the paper: the causality relation of a history is the
//! transitive closure of the union of
//!
//! * the **program order** `→` (union of the per-process partial orders),
//! * the **reads-from** relation `|.`, and
//! * the **synchronization order** `↦ = ↦lock ∪ ↦bar ∪ ↦await`.
//!
//! Causal reads (Definition 2) are judged against `;i,C` — the causality
//! relation restricted to the operations of `p_i` plus all write and
//! synchronization operations of other processes.
//!
//! PRAM reads (Definition 3) are judged against `;i,P`, built in three
//! steps (Section 3.2):
//!
//! 1. take the **transitive reductions** `↦p_lock`, `↦p_bar`, `↦p_await`
//!    of the synchronization orders and union them into `↦PRAM`;
//! 2. keep only the edges of `↦PRAM` incident to operations of `p_i`
//!    (giving `↦i`) and likewise restrict `|.` to `|.i`;
//! 3. transitively close `→ ∪ ↦i ∪ |.i` and project onto all operations
//!    except reads of other processes.

use std::fmt;

use crate::graph::{BitMatrix, CycleError, Digraph};
use crate::history::History;
use crate::ids::{OpId, ProcId};
use crate::op::{Edge, OpKind};

/// The causality structure of a history: the full relation `;`, the
/// synchronization orders, their transitive reductions, and factories for
/// the per-process relations.
///
/// # Examples
///
/// ```
/// use mc_model::{Causality, HistoryBuilder, Loc, ProcId, ReadLabel, Value};
/// let mut b = HistoryBuilder::new(2);
/// let (w, _) = b.push_write(ProcId(0), Loc(0), Value::Int(1));
/// let r = b.push_read(ProcId(1), Loc(0), ReadLabel::Causal, Value::Int(1));
/// let h = b.build()?;
/// let c = Causality::new(&h)?;
/// assert!(c.precedes(w, r)); // via reads-from
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Causality<'h> {
    h: &'h History,
    /// Strict transitive closure of `;`.
    closure: BitMatrix,
    /// Strict transitive closure of program order alone.
    po_closure: BitMatrix,
    /// Full synchronization-order generating edges, per type.
    lock_edges: Vec<Edge>,
    bar_edges: Vec<Edge>,
    await_edges: Vec<Edge>,
    /// Transitive reductions, per type (the `↦p_*` relations).
    reduced_lock: Vec<Edge>,
    reduced_bar: Vec<Edge>,
    reduced_await: Vec<Edge>,
    /// Reads-from edges `w |. r` (non-initial writers only).
    rf_edges: Vec<Edge>,
}

/// Error building a causality relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CausalityError {
    /// The causality relation has a cycle (the paper restricts attention to
    /// acyclic histories; a cycle means the recording is corrupt).
    Cyclic(CycleError),
}

impl fmt::Display for CausalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalityError::Cyclic(e) => write!(f, "causality relation is cyclic: {e}"),
        }
    }
}

impl std::error::Error for CausalityError {}

impl From<CycleError> for CausalityError {
    fn from(e: CycleError) -> Self {
        CausalityError::Cyclic(e)
    }
}

/// A restricted, transitively closed relation over a subset of a history's
/// operations — the concrete form of `;i,C` and `;i,P`.
#[derive(Debug)]
pub struct Relation {
    members: Vec<bool>,
    closure: BitMatrix,
}

impl Relation {
    /// Returns `true` if `op` belongs to the restricted operation set.
    pub fn contains(&self, op: OpId) -> bool {
        self.members[op.index()]
    }

    /// Returns `true` if `a` strictly precedes `b` in the relation.
    ///
    /// Both operations must be members; pairs involving non-members are
    /// never related.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        self.contains(a) && self.contains(b) && self.closure.get(a.index(), b.index())
    }

    /// Iterates over the member operations.
    pub fn members(&self) -> impl Iterator<Item = OpId> + '_ {
        self.members.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| OpId(i as u32))
    }
}

impl<'h> Causality<'h> {
    /// Builds the causality structure of `h`.
    ///
    /// # Errors
    ///
    /// Returns [`CausalityError::Cyclic`] if `;` has a directed cycle.
    pub fn new(h: &'h History) -> Result<Self, CausalityError> {
        let n = h.len();

        // Program-order closure (needed for barrier next/prev queries).
        let mut po_graph = Digraph::new(n);
        for &(a, b) in h.po_edges() {
            po_graph.add_edge(a.index(), b.index());
        }
        let po_closure = po_graph.transitive_closure()?;

        let lock_edges = Self::build_lock_edges(h);
        let bar_edges = Self::build_bar_edges(h, &po_closure);
        let await_edges = Self::build_await_edges(h);

        let reduce = |edges: &[Edge]| -> Result<Vec<Edge>, CycleError> {
            let mut g = Digraph::new(n);
            for &(a, b) in edges {
                g.add_edge(a.index(), b.index());
            }
            Ok(g.transitive_reduction()?
                .edges()
                .map(|(a, b)| (OpId(a as u32), OpId(b as u32)))
                .collect())
        };
        let reduced_lock = reduce(&lock_edges)?;
        let reduced_bar = reduce(&bar_edges)?;
        let reduced_await = reduce(&await_edges)?;

        // Reads-from edges: recorded/resolved writers of reads, plus await
        // sources (the latter belong to ↦await, not |., and are already in
        // await_edges).
        let mut rf_edges = Vec::new();
        for (id, op) in h.iter() {
            if op.kind.is_read() {
                let w = h.reads_from(id);
                if !w.is_initial() {
                    if let Some(wop) = h.write_op(w) {
                        rf_edges.push((wop, id));
                    }
                }
            }
        }

        // Full causality closure.
        let mut g = Digraph::new(n);
        for &(a, b) in h
            .po_edges()
            .iter()
            .chain(&lock_edges)
            .chain(&bar_edges)
            .chain(&await_edges)
            .chain(&rf_edges)
        {
            g.add_edge(a.index(), b.index());
        }
        let closure = g.transitive_closure()?;

        Ok(Causality {
            h,
            closure,
            po_closure,
            lock_edges,
            bar_edges,
            await_edges,
            reduced_lock,
            reduced_bar,
            reduced_await,
            rf_edges,
        })
    }

    /// Generating edges of `↦lock`: within a write epoch `wl ↦ wu`; within
    /// a read epoch each `rl ↦` its `ru`; and every operation of an epoch
    /// `↦` every operation of the next epoch. The transitive closure of
    /// these edges is the full `↦lock` of Section 3.1.1.
    fn build_lock_edges(h: &History) -> Vec<Edge> {
        let mut edges = Vec::new();
        for epochs in h.lock_epochs().values() {
            for ep in epochs {
                for &(l, u) in &ep.members {
                    edges.push((l, u));
                }
            }
            for pair in epochs.windows(2) {
                let ops_of = |e: &crate::history::LockEpoch| {
                    e.members.iter().flat_map(|&(l, u)| [l, u]).collect::<Vec<_>>()
                };
                for a in ops_of(&pair[0]) {
                    for b in ops_of(&pair[1]) {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges
    }

    /// Edges of `↦bar` (Section 3.1.2): for every operation `o` of `p_j`,
    /// if `o →j b^k_j` then `o ↦ b^k_i` for every participant `p_i`, and
    /// symmetrically for operations after the barrier. Only the *nearest*
    /// round is materialized per operation; farther rounds are reachable
    /// through the barrier-to-barrier chain, so the closure equals the full
    /// relation.
    fn build_bar_edges(h: &History, po_closure: &BitMatrix) -> Vec<Edge> {
        let mut edges = Vec::new();
        for rounds in h.barrier_rounds().values() {
            // Per process: its own barrier ops in round order.
            let participants: Vec<ProcId> = rounds
                .first()
                .map(|r| r.ops.iter().map(|&o| h.op(o).proc).collect())
                .unwrap_or_default();
            for &p in &participants {
                let mine: Vec<OpId> = rounds
                    .iter()
                    .map(|r| {
                        r.ops
                            .iter()
                            .copied()
                            .find(|&o| h.op(o).proc == p)
                            .expect("participant present in every round")
                    })
                    .collect();
                for &o in h.proc_ops(p) {
                    // Nearest barrier after o in program order.
                    let next = mine.iter().position(|&b| po_closure.get(o.index(), b.index()));
                    if let Some(k) = next {
                        for &b in &rounds[k].ops {
                            edges.push((o, b));
                        }
                    }
                    // Nearest barrier before o in program order.
                    let prev = mine.iter().rposition(|&b| po_closure.get(b.index(), o.index()));
                    if let Some(k) = prev {
                        for &b in &rounds[k].ops {
                            edges.push((b, o));
                        }
                    }
                }
            }
        }
        edges
    }

    /// Edges of `↦await`: `w ↦ a` for every resolved synchronization source
    /// of every await (Section 3.1.3).
    fn build_await_edges(h: &History) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (id, op) in h.iter() {
            if let OpKind::Await { .. } = op.kind {
                for w in h.await_sources(id) {
                    if !w.is_initial() {
                        if let Some(wop) = h.write_op(*w) {
                            edges.push((wop, id));
                        }
                    }
                }
            }
        }
        edges
    }

    /// The history this structure was built from.
    pub fn history(&self) -> &'h History {
        self.h
    }

    /// Returns `true` if `a ; b` (strictly).
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        self.closure.get(a.index(), b.index())
    }

    /// Returns `true` if `a` and `b` are unrelated by `;` (and distinct).
    pub fn concurrent(&self, a: OpId, b: OpId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Returns `true` if `a →  b` in program order.
    pub fn po_precedes(&self, a: OpId, b: OpId) -> bool {
        self.po_closure.get(a.index(), b.index())
    }

    /// The generating edges of `↦lock`.
    pub fn lock_edges(&self) -> &[Edge] {
        &self.lock_edges
    }

    /// The generating edges of `↦bar`.
    pub fn bar_edges(&self) -> &[Edge] {
        &self.bar_edges
    }

    /// The edges of `↦await`.
    pub fn await_edges(&self) -> &[Edge] {
        &self.await_edges
    }

    /// The reads-from edges `w |. r`.
    pub fn rf_edges(&self) -> &[Edge] {
        &self.rf_edges
    }

    /// The transitive reduction `↦p_lock`.
    pub fn reduced_lock_edges(&self) -> &[Edge] {
        &self.reduced_lock
    }

    /// The transitive reduction `↦p_bar`.
    pub fn reduced_bar_edges(&self) -> &[Edge] {
        &self.reduced_bar
    }

    /// The transitive reduction `↦p_await`.
    pub fn reduced_await_edges(&self) -> &[Edge] {
        &self.reduced_await
    }

    /// The member mask shared by `;i,C` and `;i,P`: the operations of
    /// `p_i` plus the write and synchronization operations of other
    /// processes (everything except other processes' reads).
    fn members_for(&self, i: ProcId) -> Vec<bool> {
        self.h.ops().iter().map(|op| op.proc == i || !op.kind.is_read()).collect()
    }

    /// Builds `;i,C` — Definition 2's relation: the full causality
    /// relation restricted to the operations visible to `p_i`.
    pub fn causal_relation(&self, i: ProcId) -> Relation {
        Relation { members: self.members_for(i), closure: self.closure.clone() }
    }

    /// Builds `;i,P` — Definition 3's relation, via the three-step
    /// construction of Section 3.2.
    pub fn pram_relation(&self, i: ProcId) -> Relation {
        self.group_relation(i, std::slice::from_ref(&i))
    }

    /// Builds the **group causality relation** `;i,G` for `p_i` within a
    /// process group `G ∋ p_i` — the paper's generalization remark in
    /// Section 3.2: "the definition can be easily generalized to maintain
    /// causality across an arbitrary group of processes; PRAM reads and
    /// causal reads form the two end points of the spectrum."
    ///
    /// Construction: keep the synchronization-order reductions and
    /// reads-from edges *incident to any group member*, close together
    /// with full program order, and project as in Definition 3. With
    /// `G = {i}` this is exactly `;i,P`; with `G` = all processes every
    /// edge survives and the result coincides with `;i,C`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a member of `group`.
    pub fn group_relation(&self, i: ProcId, group: &[ProcId]) -> Relation {
        assert!(group.contains(&i), "{i} must belong to its own group");
        let n = self.h.len();
        let touches_group = |&(a, b): &Edge| {
            group.contains(&self.h.op(a).proc) || group.contains(&self.h.op(b).proc)
        };
        let mut g = Digraph::new(n);
        for &(a, b) in self.h.po_edges() {
            g.add_edge(a.index(), b.index());
        }
        for e in self
            .reduced_lock
            .iter()
            .chain(&self.reduced_bar)
            .chain(&self.reduced_await)
            .filter(|e| touches_group(e))
        {
            g.add_edge(e.0.index(), e.1.index());
        }
        for e in self.rf_edges.iter().filter(|e| touches_group(e)) {
            g.add_edge(e.0.index(), e.1.index());
        }
        let closure = g.transitive_closure().expect("subgraph of an acyclic relation is acyclic");
        Relation { members: self.members_for(i), closure }
    }

    /// Builds the relation a [`ModelSpec`](crate::spec::ModelSpec)
    /// declares for observer `p_i`: each ordering property admits a
    /// subset of the generating edges of `;`, and the transitive closure
    /// of the admitted set is the relation the read is judged under.
    ///
    /// * Program order: the observer's own order follows its
    ///   read-your-writes / monotonic-reads properties; other processes'
    ///   order follows the `monotonic_writes` scope. Pairs with a
    ///   synchronization endpoint are always kept (release/acquire
    ///   ordering is part of every point in the lattice).
    /// * Synchronization order: the full `↦` generating sets
    ///   (`sync = Full`, Definition 2) or their reductions restricted to
    ///   edges incident to `p_i` (`sync = Incident`, Definition 3).
    /// * Reads-from: all edges (`writes_follow_reads`) or only those
    ///   incident to `p_i`. The edges into `p_i`'s own reads are always
    ///   included, so a returned write is visible by construction.
    ///
    /// With [`ModelSpec::CAUSAL`](crate::spec::ModelSpec::CAUSAL) this
    /// reproduces [`Causality::causal_relation`] exactly, and with
    /// [`ModelSpec::PRAM`](crate::spec::ModelSpec::PRAM) it reproduces
    /// [`Causality::pram_relation`] — the property tests pin both.
    pub fn spec_relation(&self, i: ProcId, spec: &crate::spec::ModelSpec) -> Relation {
        use crate::spec::{OrderScope, SyncScope};
        let h = self.h;
        let mut g = Digraph::new(h.len());
        let sync_op = |o: OpId| h.op(o).kind.is_sync();

        // Program order. The common fully-ordered case reuses the
        // per-process chains; property subsets fall back to filtering
        // each ordered pair.
        let own_full = spec.read_your_writes
            && spec.monotonic_reads
            && spec.monotonic_writes == OrderScope::Global;
        if own_full {
            for &(a, b) in h.po_edges() {
                g.add_edge(a.index(), b.index());
            }
        } else {
            for p in 0..h.nprocs() {
                let proc = ProcId(p as u32);
                let ops = h.proc_ops(proc);
                for (x, &a) in ops.iter().enumerate() {
                    for &b in &ops[x + 1..] {
                        if !self.po_precedes(a, b) {
                            continue;
                        }
                        let keep = sync_op(a)
                            || sync_op(b)
                            || if proc == i {
                                (h.op(a).kind.is_write_like() && spec.read_your_writes)
                                    || (h.op(a).kind.is_read() && spec.monotonic_reads)
                            } else {
                                match spec.monotonic_writes {
                                    OrderScope::Global => true,
                                    OrderScope::PerLocation => {
                                        h.op(a).kind.is_write_like()
                                            && h.op(b).kind.is_write_like()
                                            && h.op(a).kind.loc() == h.op(b).kind.loc()
                                    }
                                    OrderScope::None => false,
                                }
                            };
                        if keep {
                            g.add_edge(a.index(), b.index());
                        }
                    }
                }
            }
        }

        // Synchronization order.
        match spec.sync {
            SyncScope::Full => {
                for &(a, b) in
                    self.lock_edges.iter().chain(&self.bar_edges).chain(&self.await_edges)
                {
                    g.add_edge(a.index(), b.index());
                }
            }
            SyncScope::Incident => {
                for &(a, b) in self
                    .reduced_lock
                    .iter()
                    .chain(&self.reduced_bar)
                    .chain(&self.reduced_await)
                    .filter(|&&(a, b)| h.op(a).proc == i || h.op(b).proc == i)
                {
                    g.add_edge(a.index(), b.index());
                }
            }
        }

        // Reads-from.
        for &(w, r) in self
            .rf_edges
            .iter()
            .filter(|&&(w, r)| spec.writes_follow_reads || h.op(w).proc == i || h.op(r).proc == i)
        {
            g.add_edge(w.index(), r.index());
        }

        let closure = g.transitive_closure().expect("subgraph of an acyclic relation is acyclic");
        Relation { members: self.members_for(i), closure }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{BarrierId, BarrierRound, Loc, LockId};
    use crate::op::{LockMode, ReadLabel};
    use crate::value::Value;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn program_order_is_causal() {
        let mut b = HistoryBuilder::new(1);
        let (a, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (c, _) = b.push_write(p(0), Loc(1), Value::Int(2));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(a, c));
        assert!(!cz.precedes(c, a));
        assert!(cz.po_precedes(a, c));
    }

    #[test]
    fn reads_from_is_causal() {
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let r = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(w, r));
        assert_eq!(cz.rf_edges(), &[(w, r)]);
    }

    #[test]
    fn transitivity_across_processes() {
        // w0(x)1 |. r1(x)1 -> w1(y)2 |. r2(y)2 : so w0 ; r2.
        let mut b = HistoryBuilder::new(3);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_write(p(1), Loc(1), Value::Int(2));
        let r2 = b.push_read(p(2), Loc(1), ReadLabel::Causal, Value::Int(2));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(w0, r2));
    }

    #[test]
    fn concurrent_writes_are_unrelated() {
        let mut b = HistoryBuilder::new(2);
        let (a, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let (c, _) = b.push_write(p(1), Loc(0), Value::Int(2));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.concurrent(a, c));
        assert!(!cz.concurrent(a, a));
    }

    #[test]
    fn lock_handoff_orders_critical_sections() {
        // p0: wl, w(x)1, wu ; p1: wl, r(x)1, wu — the grant order makes
        // p0's write causally precede p1's read even without reads-from.
        let mut b = HistoryBuilder::new(2);
        let l = LockId(0);
        b.push_lock(p(0), l, LockMode::Write);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let wu0 = b.push_unlock(p(0), l, LockMode::Write);
        let wl1 = b.push_lock(p(1), l, LockMode::Write);
        let r = b.push_read(p(1), Loc(1), ReadLabel::Causal, Value::Int(0));
        b.push_unlock(p(1), l, LockMode::Write);
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(wu0, wl1));
        assert!(cz.precedes(w, r)); // w -> wu0 -> wl1 -> r
    }

    #[test]
    fn reduced_lock_is_a_chain() {
        // Three sequential write epochs: the reduced relation must be the
        // chain wl0-wu0-wl1-wu1-wl2-wu2 (immediate-predecessor semantics).
        let mut b = HistoryBuilder::new(3);
        let l = LockId(0);
        let mut ops = Vec::new();
        for i in 0..3 {
            ops.push(b.push_lock(p(i), l, LockMode::Write));
            ops.push(b.push_unlock(p(i), l, LockMode::Write));
        }
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        let mut reduced = cz.reduced_lock_edges().to_vec();
        reduced.sort();
        let expect: Vec<Edge> = ops.windows(2).map(|w| (w[0], w[1])).collect();
        assert_eq!(reduced, expect);
        // The full relation has the transitive shortcut.
        assert!(
            cz.lock_edges().iter().any(|&(a, b2)| a == ops[0] && b2 == ops[3])
                || cz.precedes(ops[0], ops[3])
        );
    }

    #[test]
    fn barrier_separates_phases() {
        // p0 writes before the barrier; p1 reads after it.
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let b0 = b.push_barrier(p(0), BarrierId(0), BarrierRound(0));
        let b1 = b.push_barrier(p(1), BarrierId(0), BarrierRound(0));
        let r = b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(1));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(w, b0));
        assert!(cz.precedes(w, b1)); // o ↦bar b^k_i for every i
        assert!(cz.precedes(b0, r)); // b^k_i ↦bar o for post-barrier o
        assert!(cz.precedes(w, r));
        // Barrier ops of one round are mutually unordered.
        assert!(cz.concurrent(b0, b1));
    }

    #[test]
    fn barrier_rounds_chain() {
        let mut b = HistoryBuilder::new(2);
        let bar = BarrierId(0);
        let b00 = b.push_barrier(p(0), bar, BarrierRound(0));
        let b01 = b.push_barrier(p(1), bar, BarrierRound(0));
        let b10 = b.push_barrier(p(0), bar, BarrierRound(1));
        let b11 = b.push_barrier(p(1), bar, BarrierRound(1));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(b00, b10));
        assert!(cz.precedes(b00, b11));
        assert!(cz.precedes(b01, b10));
        assert!(cz.concurrent(b10, b11));
    }

    #[test]
    fn await_orders_writer_before_awaiter() {
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(3));
        let a = b.push_await(p(1), Loc(0), Value::Int(3));
        let r = b.push_read(p(1), Loc(1), ReadLabel::Causal, Value::Int(0));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        assert!(cz.precedes(w, a));
        assert!(cz.precedes(w, r));
        assert_eq!(cz.await_edges(), &[(w, a)]);
    }

    #[test]
    fn causal_relation_excludes_other_reads() {
        let mut b = HistoryBuilder::new(2);
        let (w, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        let r0 = b.push_read(p(0), Loc(0), ReadLabel::Causal, Value::Int(1));
        let r1 = b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        let rel0 = cz.causal_relation(p(0));
        assert!(rel0.contains(w));
        assert!(rel0.contains(r0)); // own read
        assert!(!rel0.contains(r1)); // other process's read
        assert!(rel0.precedes(w, r0));
        let rel1 = cz.causal_relation(p(1));
        assert!(rel1.contains(r1));
        assert!(!rel1.contains(r0));
        let member_count = rel1.members().count();
        assert_eq!(member_count, 2); // w and r1
    }

    #[test]
    fn pram_relation_drops_foreign_chains() {
        // w0(x)1 |. r1(x)1 -> w1(y)2 : p2 never interacts with p0, so
        // w0 must NOT precede p2's ops in ;2,P, although it does in ;2,C.
        let mut b = HistoryBuilder::new(3);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        b.push_write(p(1), Loc(1), Value::Int(2));
        let r2 = b.push_read(p(2), Loc(1), ReadLabel::Pram, Value::Int(2));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();

        let causal = cz.causal_relation(p(2));
        assert!(causal.precedes(w0, r2));

        let pram = cz.pram_relation(p(2));
        assert!(!pram.precedes(w0, r2));
        // But the direct dependency is kept.
        let w1_op = OpId(2);
        assert!(pram.precedes(w1_op, r2));
    }

    #[test]
    fn pram_equals_causal_for_two_processes() {
        // With two processes the paper observes ;i,P and ;i,C coincide.
        let mut b = HistoryBuilder::new(2);
        let (w0, _) = b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        let (w1, _) = b.push_write(p(1), Loc(1), Value::Int(2));
        let r0 = b.push_read(p(0), Loc(1), ReadLabel::Pram, Value::Int(2));
        let h = b.build().unwrap();
        let cz = Causality::new(&h).unwrap();
        let pram = cz.pram_relation(p(0));
        let causal = cz.causal_relation(p(0));
        for a in h.op_ids() {
            for b2 in h.op_ids() {
                if causal.contains(a) && causal.contains(b2) {
                    assert_eq!(pram.precedes(a, b2), causal.precedes(a, b2), "{a} vs {b2}");
                }
            }
        }
        assert!(pram.precedes(w0, r0));
        assert!(pram.precedes(w1, r0));
    }

    #[test]
    fn cyclic_history_is_rejected() {
        // Two awaits reading each other's future writes create a cycle:
        // p0: a(x=1); w(y)1   p1: a(y=1); w(x)1
        let mut b = HistoryBuilder::new(2);
        b.push_await(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_await(p(1), Loc(1), Value::Int(1));
        b.push_write(p(1), Loc(0), Value::Int(1));
        let h = b.build().unwrap();
        assert!(matches!(Causality::new(&h), Err(CausalityError::Cyclic(_))));
    }
}
