//! Consistency models as data: the ordering-property lattice.
//!
//! The paper's PRAM (Definition 3), causal (Definition 2), and mixed
//! (Definition 4) modes — plus sequential consistency — were originally
//! four hand-coded checkers. Steinke & Nutt's unified theory shows they
//! are points in a *lattice* of ordering-property compositions, and
//! Cheng/Higham/Kawash's partition consistency shows that assigning a
//! different point to each process is itself a point in that space —
//! exactly the paper's "mixed" idea, generalized.
//!
//! This module makes the lattice first-class:
//!
//! * [`ModelSpec`] declares which ordering properties a process's reads
//!   must respect (read-your-writes, monotonic reads, a scope for other
//!   processes' write order, writes-follow-reads, a scope for
//!   synchronization visibility, per-location coherence, and total store
//!   order).
//! * [`check_model`] is a declarative validator: it evaluates *any*
//!   [`ModelAssignment`] — one [`ProcModel`] per process — against a
//!   recorded [`History`], with no model-specific code paths.
//! * The legacy modes are re-expressed as constants ([`ModelSpec::PRAM`],
//!   [`ModelSpec::CAUSAL`], [`ModelSpec::SC`], and [`ProcModel::ByLabel`]
//!   for mixed), and three further points come nearly for free:
//!   [`ModelSpec::SLOW`], [`ModelSpec::WEAK_ORDERING`], and
//!   [`ModelSpec::PROCESSOR`].
//!
//! # Soundness
//!
//! For every spec the validator builds, per observing process `i`, a
//! sub-relation of the full causality order `;` (see
//! [`Causality::spec_relation`]): each declared property admits a subset
//! of the generating edges of `;`, so the result is acyclic whenever the
//! history itself is, and judging each read by the same
//! visibility/overwrite rule as Definitions 2/3 (shared with the legacy
//! checkers) gives exactly those definitions back when the property set
//! matches. Because the reads-from edges incident to the observer are
//! always included, a larger property set can only produce a larger
//! relation and therefore at least as many violations: the lattice order
//! on specs is the inclusion order on relations, which is what makes
//! `SLOW ⊑ PRAM ⊑ CAUSAL ⊑ SC` checkable as a containment of failing
//! histories.

use std::collections::HashSet;
use std::fmt;

use crate::causality::{Causality, Relation};
use crate::check::{
    check_counter_read, check_plain_read, CheckError, CheckReport, GlobalViolation, Violation,
};
use crate::history::{History, HistoryBuilder};
use crate::ids::{Loc, OpId, ProcId};
use crate::op::{OpKind, ReadLabel};

/// How far another process's program order must be respected.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OrderScope {
    /// Not at all: another process's operations are mutually unordered
    /// (weak ordering's data operations between synchronization points).
    None,
    /// Only between write-like operations on the *same* location (slow
    /// memory).
    PerLocation,
    /// Fully: the complete program order of every process is respected
    /// (PRAM and everything above it).
    Global,
}

/// How much synchronization order a process's reads must respect.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncScope {
    /// Only synchronization edges incident to the observing process (the
    /// paper's Definition 3: `↦` restricted to operations "involving"
    /// `p_i`).
    Incident,
    /// The full transitive synchronization order (Definition 2).
    Full,
}

/// A consistency model as a set of ordering properties — data, not code.
///
/// The paper's relations map onto the fields as follows: Definition 2's
/// causal order `;i,C` is `writes_follow_reads = true` plus
/// `sync = Full`; Definition 3's PRAM order `;i,P` is
/// `writes_follow_reads = false` plus `sync = Incident`; Definition 4
/// (mixed) is a per-read choice between the two and is expressed as
/// [`ProcModel::ByLabel`] rather than a single spec.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ModelSpec {
    /// Human-readable lattice-point name (stable, used in text formats).
    pub name: &'static str,
    /// A process's reads must respect its *own* earlier writes.
    pub read_your_writes: bool,
    /// A process's reads must respect its *own* earlier reads.
    pub monotonic_reads: bool,
    /// How far *other* processes' program order is respected.
    pub monotonic_writes: OrderScope,
    /// Writes causally after an observed read must be ordered after it
    /// (the property separating Definition 2 from Definition 3).
    pub writes_follow_reads: bool,
    /// Scope of the synchronization order `↦` folded into the relation.
    pub sync: SyncScope,
    /// All writes to each location must embed in one total order
    /// consistent with program order and every observer's view
    /// (cache coherence; with [`ModelSpec::PRAM`]'s fields this yields
    /// processor consistency).
    pub coherence: bool,
    /// All operations must embed in a single sequential order (total
    /// store order; with the causal fields this is sequential
    /// consistency).
    pub total_store_order: bool,
}

impl ModelSpec {
    /// Definition 3: pipelined RAM.
    pub const PRAM: ModelSpec = ModelSpec {
        name: "pram",
        read_your_writes: true,
        monotonic_reads: true,
        monotonic_writes: OrderScope::Global,
        writes_follow_reads: false,
        sync: SyncScope::Incident,
        coherence: false,
        total_store_order: false,
    };

    /// Definition 2: causal memory.
    pub const CAUSAL: ModelSpec = ModelSpec {
        name: "causal",
        writes_follow_reads: true,
        sync: SyncScope::Full,
        ..ModelSpec::PRAM
    };

    /// Sequential consistency: causal memory plus a total store order.
    pub const SC: ModelSpec =
        ModelSpec { name: "sc", total_store_order: true, ..ModelSpec::CAUSAL };

    /// Slow memory: own program order plus other processes' write order
    /// *per location* only.
    pub const SLOW: ModelSpec =
        ModelSpec { name: "slow", monotonic_writes: OrderScope::PerLocation, ..ModelSpec::PRAM };

    /// Weak ordering: data operations of other processes are unordered
    /// except through the (fully transitive) synchronization order.
    pub const WEAK_ORDERING: ModelSpec = ModelSpec {
        name: "weak",
        monotonic_writes: OrderScope::None,
        sync: SyncScope::Full,
        ..ModelSpec::PRAM
    };

    /// Processor consistency: PRAM plus per-location coherence.
    pub const PROCESSOR: ModelSpec =
        ModelSpec { name: "processor", coherence: true, ..ModelSpec::PRAM };

    /// Every named single-spec lattice point, strongest first.
    pub const ALL: &'static [ModelSpec] = &[
        ModelSpec::SC,
        ModelSpec::CAUSAL,
        ModelSpec::PROCESSOR,
        ModelSpec::PRAM,
        ModelSpec::WEAK_ORDERING,
        ModelSpec::SLOW,
    ];
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The model a single process runs under.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProcModel {
    /// Every read of the process is judged under one fixed spec.
    Fixed(ModelSpec),
    /// Definition 4 (mixed): each read's own label picks
    /// [`ModelSpec::PRAM`] or [`ModelSpec::CAUSAL`].
    ByLabel,
}

impl ProcModel {
    /// Every named lattice point, strongest first, mixed last.
    pub const ALL: &'static [ProcModel] = &[
        ProcModel::Fixed(ModelSpec::SC),
        ProcModel::Fixed(ModelSpec::CAUSAL),
        ProcModel::Fixed(ModelSpec::PROCESSOR),
        ProcModel::Fixed(ModelSpec::PRAM),
        ProcModel::Fixed(ModelSpec::WEAK_ORDERING),
        ProcModel::Fixed(ModelSpec::SLOW),
        ProcModel::ByLabel,
    ];

    /// The stable text-format name of this lattice point.
    pub fn name(&self) -> &'static str {
        match self {
            ProcModel::Fixed(s) => s.name,
            ProcModel::ByLabel => "mixed",
        }
    }

    /// Looks a lattice point up by its stable name (round-trips with
    /// [`ProcModel::name`]).
    pub fn named(name: &str) -> Option<ProcModel> {
        ProcModel::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// The spec a read with `label` is judged under.
    pub fn spec_for(&self, label: ReadLabel) -> ModelSpec {
        match self {
            ProcModel::Fixed(s) => *s,
            ProcModel::ByLabel => match label {
                ReadLabel::Pram => ModelSpec::PRAM,
                ReadLabel::Causal => ModelSpec::CAUSAL,
            },
        }
    }

    /// The label a read with `label` is *reported* as (the spec's side of
    /// the PRAM/causal split; used for relation caching and reporting).
    pub fn judged_as(&self, label: ReadLabel) -> ReadLabel {
        match self {
            ProcModel::Fixed(s) => {
                if s.writes_follow_reads {
                    ReadLabel::Causal
                } else {
                    ReadLabel::Pram
                }
            }
            ProcModel::ByLabel => label,
        }
    }
}

impl fmt::Display for ProcModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A per-process model assignment: one [`ProcModel`] per process.
///
/// This subsumes the hand-coded mode enum: a uniform assignment of a
/// legacy constant reproduces that mode, [`ModelAssignment::mixed`]
/// reproduces Definition 4, and heterogeneous assignments are
/// partition-consistency-style mixes of lattice points in one run.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ModelAssignment {
    procs: Vec<ProcModel>,
}

impl ModelAssignment {
    /// The same spec for every process.
    pub fn uniform(nprocs: usize, spec: ModelSpec) -> Self {
        ModelAssignment { procs: vec![ProcModel::Fixed(spec); nprocs] }
    }

    /// Definition 4 for every process: reads judged by their own label.
    pub fn mixed(nprocs: usize) -> Self {
        ModelAssignment { procs: vec![ProcModel::ByLabel; nprocs] }
    }

    /// An explicit per-process assignment.
    pub fn per_proc(procs: Vec<ProcModel>) -> Self {
        assert!(!procs.is_empty(), "assignment needs at least one process");
        ModelAssignment { procs }
    }

    /// Number of processes covered.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Always `false`: construction requires at least one process.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The model of process `proc`.
    pub fn get(&self, proc: ProcId) -> ProcModel {
        self.procs[proc.index()]
    }

    /// Iterates the per-process models in process order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcModel> + '_ {
        self.procs.iter()
    }

    /// The spec a read by `proc` with `label` is judged under.
    pub fn spec_for(&self, proc: ProcId, label: ReadLabel) -> ModelSpec {
        self.get(proc).spec_for(label)
    }

    /// The label a read by `proc` with `label` is judged as.
    pub fn judged_as(&self, proc: ProcId, label: ReadLabel) -> ReadLabel {
        self.get(proc).judged_as(label)
    }

    /// Whether any process requires a total store order.
    pub fn any_tso(&self) -> bool {
        self.procs.iter().any(|m| matches!(m, ProcModel::Fixed(s) if s.total_store_order))
    }

    /// Whether every process requires a total store order.
    pub fn all_tso(&self) -> bool {
        self.procs.iter().all(|m| matches!(m, ProcModel::Fixed(s) if s.total_store_order))
    }

    /// Whether process `proc` requires per-location coherence.
    pub fn is_coherent(&self, proc: ProcId) -> bool {
        matches!(self.get(proc), ProcModel::Fixed(s) if s.coherence)
    }

    /// Whether any process requires per-location coherence.
    pub fn any_coherent(&self) -> bool {
        (0..self.len()).any(|p| self.is_coherent(ProcId(p as u32)))
    }
}

impl fmt::Display for ModelAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// Checks a history against a per-process [`ModelAssignment`]: the
/// declarative validator behind every lattice point.
///
/// Reads of processes with a total-store-order spec are judged by a
/// single serialization check (over the projection of the history that
/// keeps all writes and synchronization but only those processes'
/// reads); all other reads are judged by the Definitions-2/3 rule under
/// the sub-relation their spec declares; coherent processes additionally
/// contribute their observations to a per-location write-serialization
/// check.
///
/// # Errors
///
/// Returns the violations found (per-read and global), or a causality
/// error for cyclic histories.
///
/// # Panics
///
/// Panics if `models.len() != h.nprocs()`.
pub fn check_model(h: &History, models: &ModelAssignment) -> Result<CheckReport, CheckError> {
    assert_eq!(models.len(), h.nprocs(), "one model per process");
    let causality = Causality::new(h)?;
    let mut report = CheckReport::default();

    // Classify locations: counters are locations with commutative updates.
    let mut has_update = HashSet::new();
    let mut has_write = HashSet::new();
    for op in h.ops() {
        match op.kind {
            OpKind::Update { loc, .. } => {
                has_update.insert(loc);
            }
            OpKind::Write { loc, .. } => {
                has_write.insert(loc);
            }
            _ => {}
        }
    }

    // Relations are built lazily per process and cached. A process needs
    // at most two: its fixed spec's relation, or (mixed) one per label —
    // in both cases `judged_as` indexes the slot unambiguously.
    let mut rels: Vec<[Option<Relation>; 2]> = (0..h.nprocs()).map(|_| [None, None]).collect();

    for (id, op) in h.iter() {
        let OpKind::Read { loc, label, value, .. } = &op.kind else {
            continue;
        };
        let spec = models.spec_for(op.proc, *label);
        if spec.total_store_order {
            // Judged wholesale by the serialization check below.
            continue;
        }
        let judged_as = models.judged_as(op.proc, *label);
        let slot = match judged_as {
            ReadLabel::Pram => 0,
            ReadLabel::Causal => 1,
        };
        let rel = rels[op.proc.index()][slot]
            .get_or_insert_with(|| causality.spec_relation(op.proc, &spec));

        if has_update.contains(loc) {
            if has_write.contains(loc) {
                report.skipped.push(id);
                continue;
            }
            match check_counter_read(h, rel, id, *loc, *value, judged_as) {
                Ok(Some(v)) => report.violations.push(v),
                Ok(None) => {}
                Err(()) => report.skipped.push(id),
            }
            continue;
        }

        if let Some(kind) = check_plain_read(h, rel, id, *loc, *value) {
            report.violations.push(Violation { read: id, judged_as, kind });
        }
    }

    if models.any_coherent() {
        let mut locs: Vec<Loc> =
            has_write.iter().filter(|l| !has_update.contains(l)).copied().collect();
        locs.sort_by_key(|l| l.0);
        for loc in locs {
            if !coherent_at(h, models, loc) {
                report.global.push(GlobalViolation::CoherenceCycle { loc });
            }
        }
    }

    if models.any_tso() {
        let verdict = if models.all_tso() {
            crate::sc::check_sequential(h)
        } else {
            let projected = tso_projection(h, models);
            crate::sc::check_sequential(&projected)
        };
        match verdict {
            Err(e) => return Err(CheckError::Causality(e)),
            Ok(crate::sc::ScVerdict::NotSequentiallyConsistent) => {
                report.global.push(GlobalViolation::NotSerializable);
            }
            // A serialization exists, or the search exhausted its budget
            // without refuting one — same benefit of the doubt the
            // dedicated SC checker gives.
            Ok(_) => {}
        }
    }

    report.into_result()
}

/// Per-location coherence: all writes to `loc` (a plain-write location)
/// plus the initial pseudo-write must embed in one total order that
/// respects every process's program order of writes and, for each
/// coherent process, the order in which its reads and own writes
/// observed them. A cycle in those constraints is the witness that no
/// such order exists.
fn coherent_at(h: &History, models: &ModelAssignment, loc: Loc) -> bool {
    use crate::graph::Digraph;
    let init = h.len();
    let mut g = Digraph::new(h.len() + 1);

    for p in 0..h.nprocs() {
        let writes: Vec<OpId> = h
            .proc_ops(ProcId(p as u32))
            .iter()
            .copied()
            .filter(|&o| matches!(h.op(o).kind, OpKind::Write { loc: l, .. } if l == loc))
            .collect();
        for &w in &writes {
            g.add_edge(init, w.index());
        }
        for w in writes.windows(2) {
            g.add_edge(w[0].index(), w[1].index());
        }
    }

    for p in 0..h.nprocs() {
        let proc = ProcId(p as u32);
        if !models.is_coherent(proc) {
            continue;
        }
        // The process's view of loc in program order, each access
        // resolved to the write it exposes.
        let mut last: Option<usize> = None;
        for &o in h.proc_ops(proc) {
            let node = match &h.op(o).kind {
                OpKind::Write { loc: l, .. } if *l == loc => o.index(),
                OpKind::Read { loc: l, .. } if *l == loc => {
                    let w = h.reads_from(o);
                    if w.is_initial() {
                        init
                    } else {
                        match h.write_op(w) {
                            Some(wo) => wo.index(),
                            None => continue,
                        }
                    }
                }
                _ => continue,
            };
            if let Some(prev) = last {
                if prev != node {
                    g.add_edge(prev, node);
                }
            }
            last = Some(node);
        }
    }

    g.transitive_closure().is_ok()
}

/// Projects a history for a partial total-store-order check: every
/// write, update, and synchronization operation is kept, but only the
/// reads of processes whose spec demands a total store order. Program
/// order among the kept operations is preserved exactly.
fn tso_projection(h: &History, models: &ModelAssignment) -> History {
    let keep = |id: OpId| {
        let op = h.op(id);
        !op.kind.is_read()
            || matches!(models.get(op.proc), ProcModel::Fixed(s) if s.total_store_order)
    };

    // Intra-process predecessor lists over the kept subset: walk the
    // program-order edges backwards, stopping at the first kept
    // operation on each path (its own predecessors follow transitively).
    let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); h.len()];
    for &(a, b) in h.po_edges() {
        preds[b.index()].push(a);
    }
    let kept_preds = |id: OpId| -> Vec<OpId> {
        let mut out = Vec::new();
        let mut stack = preds[id.index()].clone();
        let mut seen = vec![false; h.len()];
        while let Some(p) = stack.pop() {
            if seen[p.index()] {
                continue;
            }
            seen[p.index()] = true;
            if keep(p) {
                out.push(p);
            } else {
                stack.extend_from_slice(&preds[p.index()]);
            }
        }
        out
    };

    let mut b = HistoryBuilder::new(h.nprocs());
    let mut locs: Vec<Loc> = h.ops().iter().filter_map(|op| op.kind.loc()).collect();
    locs.sort_by_key(|l| l.0);
    locs.dedup();
    for loc in locs {
        b.set_initial(loc, h.initial(loc));
    }

    let mut new_id: Vec<Option<OpId>> = vec![None; h.len()];
    for (id, op) in h.iter() {
        if !keep(id) {
            continue;
        }
        let kept: Vec<OpId> =
            kept_preds(id).into_iter().map(|p| new_id[p.index()].expect("preds precede")).collect();
        new_id[id.index()] = Some(b.push_after(op.proc, op.kind.clone(), &kept));
    }
    b.build().expect("projection of a well-formed history is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_causal, check_mixed, check_pram, ViolationKind};
    use crate::litmus;
    use crate::value::Value;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn uniform(h: &History, spec: ModelSpec) -> Result<CheckReport, CheckError> {
        check_model(h, &ModelAssignment::uniform(h.nprocs(), spec))
    }

    #[test]
    fn names_round_trip() {
        for m in ProcModel::ALL {
            assert_eq!(ProcModel::named(m.name()), Some(*m), "{m}");
        }
        assert_eq!(ProcModel::named("banana"), None);
    }

    #[test]
    fn legacy_constants_reproduce_hand_coded_checkers() {
        for h in [
            litmus::causality_chain(ReadLabel::Pram),
            litmus::causality_chain(ReadLabel::Causal),
            litmus::store_buffer(),
            litmus::write_order_disagreement(),
            litmus::iriw(),
            litmus::fifo_violation(),
        ] {
            assert_eq!(uniform(&h, ModelSpec::PRAM), check_pram(&h).map_err(promote), "pram");
            assert_eq!(uniform(&h, ModelSpec::CAUSAL), check_causal(&h).map_err(promote), "causal");
            assert_eq!(
                check_model(&h, &ModelAssignment::mixed(h.nprocs())),
                check_mixed(&h).map_err(promote),
                "mixed"
            );
        }
    }

    /// Legacy checkers never emit global violations, so their reports
    /// compare equal to the declarative ones as-is.
    fn promote(e: CheckError) -> CheckError {
        e
    }

    #[test]
    fn sc_spec_rejects_what_the_sc_checker_rejects() {
        let h = litmus::store_buffer();
        let err = uniform(&h, ModelSpec::SC).unwrap_err();
        let CheckError::Violations(r) = err else { panic!() };
        assert_eq!(r.global, vec![GlobalViolation::NotSerializable]);
        assert!(r.violations.is_empty(), "sc reads are judged by serialization only");

        let ok = litmus::causality_chain(ReadLabel::Causal);
        // The chain violates causal (stale read), hence also SC — but the
        // chain with the final read fixed is serializable; use a trivially
        // serializable history instead.
        assert!(uniform(&ok, ModelSpec::SC).is_err());
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(1));
        assert!(uniform(&b.build().unwrap(), ModelSpec::SC).is_ok());
    }

    #[test]
    fn slow_accepts_fifo_violation_across_locations() {
        // p0: w(x)1; w(y)1. p1 reads y=1 then x=0 — PRAM forbids (po of
        // p0 is global), slow allows (different locations).
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(1), ReadLabel::Pram, Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        let h = b.build().unwrap();
        assert!(uniform(&h, ModelSpec::PRAM).is_err());
        assert!(uniform(&h, ModelSpec::SLOW).is_ok());
    }

    #[test]
    fn slow_still_orders_same_location_writes() {
        let h = litmus::fifo_violation();
        let err = uniform(&h, ModelSpec::SLOW).unwrap_err();
        let CheckError::Violations(r) = err else { panic!() };
        assert!(matches!(r.violations[0].kind, ViolationKind::Overwritten { .. }));
    }

    #[test]
    fn weak_ordering_ignores_unsynchronized_order_but_sees_sync_chains() {
        // Unsynchronized: the p0 write order is invisible to p1.
        let mut b = HistoryBuilder::new(2);
        b.push_write(p(0), Loc(0), Value::Int(1));
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(1), ReadLabel::Pram, Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Pram, Value::Int(0));
        assert!(uniform(&b.build().unwrap(), ModelSpec::WEAK_ORDERING).is_ok());

        // The transitive lock chain (invisible to PRAM) binds weak
        // ordering: sync is Full.
        let h = litmus::lock_transitive_chain();
        assert!(uniform(&h, ModelSpec::PRAM).is_ok());
        assert!(uniform(&h, ModelSpec::WEAK_ORDERING).is_err());
    }

    #[test]
    fn processor_rejects_write_order_disagreement() {
        // Two observers see two concurrent same-location writes in
        // opposite orders: fine under PRAM/causal, a coherence cycle
        // under processor consistency.
        let h = litmus::write_order_disagreement();
        assert!(uniform(&h, ModelSpec::PRAM).is_ok());
        assert!(uniform(&h, ModelSpec::CAUSAL).is_ok());
        let err = uniform(&h, ModelSpec::PROCESSOR).unwrap_err();
        let CheckError::Violations(r) = err else { panic!() };
        assert!(matches!(r.global[0], GlobalViolation::CoherenceCycle { .. }));
    }

    #[test]
    fn heterogeneous_assignment_judges_each_process_by_its_own_spec() {
        // The causality litmus with causal-labeled reads: the stale
        // reader p2 violates CAUSAL but not PRAM — so the verdict flips
        // with p2's assigned model, regardless of the recorded label.
        let h = litmus::causality_chain(ReadLabel::Causal);
        let strict = ModelAssignment::per_proc(vec![
            ProcModel::Fixed(ModelSpec::PRAM),
            ProcModel::Fixed(ModelSpec::PRAM),
            ProcModel::Fixed(ModelSpec::CAUSAL),
        ]);
        assert!(check_model(&h, &strict).is_err());
        let lax = ModelAssignment::per_proc(vec![
            ProcModel::Fixed(ModelSpec::CAUSAL),
            ProcModel::Fixed(ModelSpec::CAUSAL),
            ProcModel::Fixed(ModelSpec::PRAM),
        ]);
        assert!(check_model(&h, &lax).is_ok());
    }

    #[test]
    fn partial_tso_projects_only_tso_reads() {
        // Store-buffer: both reads stale. Uniform SC rejects; making one
        // process SC and the other PRAM keeps only one stale read in the
        // serialization check, and a serialization exists for that half.
        let h = litmus::store_buffer();
        assert!(uniform(&h, ModelSpec::SC).is_err());
        let half = ModelAssignment::per_proc(vec![
            ProcModel::Fixed(ModelSpec::SC),
            ProcModel::Fixed(ModelSpec::PRAM),
        ]);
        assert!(check_model(&h, &half).is_ok());
    }

    #[test]
    fn lattice_is_monotone_on_the_litmus_corpus() {
        // A history failing a weaker point must fail every stronger
        // point (relations only grow along the lattice order).
        let chains: &[&[ModelSpec]] = &[
            &[ModelSpec::SLOW, ModelSpec::PRAM, ModelSpec::CAUSAL, ModelSpec::SC],
            &[ModelSpec::WEAK_ORDERING, ModelSpec::CAUSAL],
            &[ModelSpec::PRAM, ModelSpec::PROCESSOR],
        ];
        for h in [
            litmus::causality_chain(ReadLabel::Pram),
            litmus::causality_chain(ReadLabel::Causal),
            litmus::store_buffer(),
            litmus::write_order_disagreement(),
            litmus::iriw(),
            litmus::fifo_violation(),
            litmus::lock_transitive_chain(),
        ] {
            for chain in chains {
                let mut failed = false;
                for spec in *chain {
                    let fails = uniform(&h, *spec).is_err();
                    assert!(
                        fails || !failed,
                        "{} accepted a history that weaker {chain:?} rejected",
                        spec.name
                    );
                    failed = failed || fails;
                }
            }
        }
    }

    #[test]
    fn counter_reads_follow_the_spec_relation() {
        // The counter-visibility rule rides on the same relation. An
        // await transfers the flag write but, under weak ordering, not
        // the unfenced update before it — causal forbids the stale
        // counter read, weak ordering allows it.
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(0), Value::Int(2));
        b.push_update(p(0), Loc(0), -1);
        b.push_write(p(0), Loc(1), Value::Int(1));
        b.push_await(p(1), Loc(1), Value::Int(1));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(2));
        let h = b.build().unwrap();
        assert!(uniform(&h, ModelSpec::CAUSAL).is_err());
        assert!(uniform(&h, ModelSpec::WEAK_ORDERING).is_ok(), "no fence after the update");

        // A barrier IS a fence on both sides: every point forbids the
        // stale read past it.
        let mut b = HistoryBuilder::new(2);
        b.set_initial(Loc(0), Value::Int(2));
        b.push_update(p(0), Loc(0), -1);
        b.push_barrier(p(0), crate::ids::BarrierId(0), crate::ids::BarrierRound(0));
        b.push_barrier(p(1), crate::ids::BarrierId(0), crate::ids::BarrierRound(0));
        b.push_read(p(1), Loc(0), ReadLabel::Causal, Value::Int(2));
        let h = b.build().unwrap();
        for spec in [ModelSpec::CAUSAL, ModelSpec::WEAK_ORDERING, ModelSpec::PRAM, ModelSpec::SLOW]
        {
            assert!(uniform(&h, spec).is_err(), "{}", spec.name);
        }
    }
}
