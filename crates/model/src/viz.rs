//! History statistics and Graphviz export.
//!
//! Recorded histories are the central artifact of this library; this
//! module summarizes them ([`stats`]) and renders their causality
//! structure as a Graphviz digraph ([`to_dot`]) — program order as solid
//! edges within per-process clusters, reads-from dashed, synchronization
//! orders dotted.

use std::fmt;
use std::fmt::Write as _;

use crate::causality::Causality;
use crate::history::History;
use crate::op::OpKind;

/// Operation and relation counts of a history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Total operations.
    pub ops: usize,
    /// Read operations.
    pub reads: usize,
    /// Plain writes.
    pub writes: usize,
    /// Commutative updates.
    pub updates: usize,
    /// Lock + unlock operations.
    pub lock_ops: usize,
    /// Barrier operations.
    pub barriers: usize,
    /// Await operations.
    pub awaits: usize,
    /// Operations per process.
    pub per_proc: Vec<usize>,
    /// Distinct memory locations touched.
    pub locations: usize,
    /// Reads-from edges.
    pub rf_edges: usize,
    /// Generating lock-order edges.
    pub lock_edges: usize,
    /// Generating barrier-order edges.
    pub bar_edges: usize,
    /// Await-order edges.
    pub await_edges: usize,
}

impl fmt::Display for HistoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ops ({} reads, {} writes, {} updates, {} lock ops, {} barriers, {} awaits)",
            self.ops,
            self.reads,
            self.writes,
            self.updates,
            self.lock_ops,
            self.barriers,
            self.awaits
        )?;
        writeln!(
            f,
            "{} locations; edges: {} rf, {} lock, {} barrier, {} await",
            self.locations, self.rf_edges, self.lock_edges, self.bar_edges, self.await_edges
        )?;
        write!(f, "per process: {:?}", self.per_proc)
    }
}

/// Computes summary statistics of a history.
///
/// # Errors
///
/// Returns the causality error for cyclic histories.
pub fn stats(h: &History) -> Result<HistoryStats, crate::causality::CausalityError> {
    let cz = Causality::new(h)?;
    let mut s = HistoryStats { ops: h.len(), per_proc: vec![0; h.nprocs()], ..Default::default() };
    let mut locs = std::collections::HashSet::new();
    for (_, op) in h.iter() {
        if !op.proc.is_init() {
            s.per_proc[op.proc.index()] += 1;
        }
        if let Some(l) = op.kind.loc() {
            locs.insert(l);
        }
        match op.kind {
            OpKind::Read { .. } => s.reads += 1,
            OpKind::Write { .. } => s.writes += 1,
            OpKind::Update { .. } => s.updates += 1,
            OpKind::Lock { .. } | OpKind::Unlock { .. } => s.lock_ops += 1,
            OpKind::Barrier { .. } => s.barriers += 1,
            OpKind::Await { .. } => s.awaits += 1,
        }
    }
    s.locations = locs.len();
    s.rf_edges = cz.rf_edges().len();
    s.lock_edges = cz.reduced_lock_edges().len();
    s.bar_edges = cz.reduced_bar_edges().len();
    s.await_edges = cz.await_edges().len();
    Ok(s)
}

/// Renders the history's causality structure as a Graphviz digraph.
///
/// Per-process clusters hold the program-order chains (solid edges);
/// reads-from edges are dashed, the *reduced* lock/barrier orders and the
/// await order are dotted with per-relation colors. Feed the output to
/// `dot -Tsvg`.
///
/// # Errors
///
/// Returns the causality error for cyclic histories.
pub fn to_dot(h: &History) -> Result<String, crate::causality::CausalityError> {
    let cz = Causality::new(h)?;
    let mut out = String::new();
    let _ = writeln!(out, "digraph history {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");
    for p in 0..h.nprocs() {
        let _ = writeln!(out, "  subgraph cluster_p{p} {{");
        let _ = writeln!(out, "    label=\"p{p}\"; style=dashed;");
        for &id in h.proc_ops(crate::ProcId(p as u32)) {
            let label = h.op(id).to_string().replace('"', "'");
            let _ = writeln!(out, "    o{} [label=\"{}\"];", id.index(), label);
        }
        let _ = writeln!(out, "  }}");
    }
    for &(a, b) in h.po_edges() {
        let _ = writeln!(out, "  o{} -> o{};", a.index(), b.index());
    }
    for &(a, b) in cz.rf_edges() {
        let _ = writeln!(
            out,
            "  o{} -> o{} [style=dashed, color=red, label=\"rf\"];",
            a.index(),
            b.index()
        );
    }
    for &(a, b) in cz.reduced_lock_edges() {
        let _ = writeln!(
            out,
            "  o{} -> o{} [style=dotted, color=blue, label=\"lock\"];",
            a.index(),
            b.index()
        );
    }
    for &(a, b) in cz.reduced_bar_edges() {
        let _ = writeln!(
            out,
            "  o{} -> o{} [style=dotted, color=darkgreen, label=\"bar\"];",
            a.index(),
            b.index()
        );
    }
    for &(a, b) in cz.await_edges() {
        let _ = writeln!(
            out,
            "  o{} -> o{} [style=dotted, color=purple, label=\"await\"];",
            a.index(),
            b.index()
        );
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus;

    #[test]
    fn stats_of_figure1() {
        let fig = litmus::figure1();
        let s = stats(&fig.history).unwrap();
        assert_eq!(s.ops, fig.history.len());
        assert_eq!(s.barriers, 3);
        assert_eq!(s.lock_ops, 10, "4 rl + 4 ru + wl + wu");
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.per_proc.iter().sum::<usize>(), s.ops);
        assert!(s.bar_edges > 0);
        assert!(s.lock_edges > 0);
        let text = s.to_string();
        assert!(text.contains("ops") && text.contains("barrier"));
    }

    #[test]
    fn stats_counts_kinds() {
        let h = litmus::counter_await();
        let s = stats(&h).unwrap();
        assert_eq!(s.updates, 2);
        assert_eq!(s.awaits, 1);
        assert_eq!(s.await_edges, 2, "both updates are await sources");
        assert_eq!(s.locations, 1);
    }

    #[test]
    fn dot_contains_all_ops_and_relations() {
        let fig = litmus::figure1();
        let dot = to_dot(&fig.history).unwrap();
        assert!(dot.starts_with("digraph history {"));
        assert!(dot.trim_end().ends_with('}'));
        for id in fig.history.op_ids() {
            assert!(dot.contains(&format!("o{} ", id.index())), "node {id}");
        }
        assert!(dot.contains("cluster_p0"));
        assert!(dot.contains("color=blue"), "lock edges present");
        assert!(dot.contains("color=darkgreen"), "barrier edges present");
    }

    #[test]
    fn dot_for_rf_and_await() {
        let h = litmus::producer_consumer_await();
        let dot = to_dot(&h).unwrap();
        assert!(dot.contains("color=red"), "reads-from edge");
        assert!(dot.contains("color=purple"), "await edge");
    }
}
