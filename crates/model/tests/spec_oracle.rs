//! Oracle agreement: the declarative lattice validator vs the
//! hand-coded checkers.
//!
//! The four legacy consistency modes each have a dedicated, hand-coded
//! checker (`check_pram`, `check_causal`, `check_mixed`, the exact SC
//! search) that predates the [`mc_model::ModelSpec`] lattice engine.
//! Those checkers are deliberately kept as oracles: on randomly
//! generated well-formed histories, evaluating the equivalent
//! `ModelSpec` constant through [`mc_model::spec::check_model`] must
//! agree with the hand-coded verdict — **exactly**, down to the set of
//! violating reads, not just pass/fail. Any divergence means the
//! declarative property encoding drifted from the paper's definitions.

use proptest::prelude::*;

use mc_model::spec::check_model;
use mc_model::{
    check, sc, BarrierId, BarrierRound, History, HistoryBuilder, Loc, LockId, LockMode,
    ModelAssignment, ModelSpec, ProcId, ReadLabel, Value,
};

// ------------------------------------------------ random history generation

/// One generated instruction (a trimmed twin of the generator in
/// `properties.rs`: writes with globally unique values, reads that pick
/// among already-written values, write-locked critical sections).
#[derive(Clone, Debug)]
enum GenOp {
    Write(u32),
    Read { loc: u32, pick: u8, causal: bool },
    Cs { lock: u32, body: Vec<GenOp> },
}

fn gen_ops(depth: u32) -> impl Strategy<Value = GenOp> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(GenOp::Write),
        ((0u32..3), any::<u8>(), any::<bool>()).prop_map(|(loc, pick, causal)| GenOp::Read {
            loc,
            pick,
            causal
        }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            4 => leaf,
            1 => ((0u32..2), proptest::collection::vec(gen_ops(0), 1..3))
                .prop_map(|(lock, body)| GenOp::Cs { lock, body }),
        ]
        .boxed()
    }
}

fn gen_program(
    nprocs: usize,
    max_ops: usize,
) -> impl Strategy<Value = (Vec<Vec<GenOp>>, usize, u64)> {
    (
        proptest::collection::vec(
            proptest::collection::vec(gen_ops(1), 1..=max_ops),
            nprocs..=nprocs,
        ),
        0usize..2,
        any::<u64>(),
    )
}

/// Materializes a program into a well-formed history: processes are
/// interleaved segment-by-segment (critical sections kept atomic),
/// reads pick among values already written to the location (or 0).
fn build_history(progs: &[Vec<GenOp>], barrier_rounds: usize, interleave_seed: u64) -> History {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let nprocs = progs.len();
    let mut b = HistoryBuilder::new(nprocs);
    let mut rng = StdRng::seed_from_u64(interleave_seed);

    let mut segments: Vec<Vec<Vec<GenOp>>> = Vec::new();
    for prog in progs {
        let chunk = prog.len().div_ceil(barrier_rounds + 1).max(1);
        let mut chunks: Vec<Vec<GenOp>> = prog.chunks(chunk).map(|c| c.to_vec()).collect();
        chunks.resize(barrier_rounds + 1, Vec::new());
        segments.push(chunks);
    }

    let mut written: Vec<Vec<i64>> = vec![Vec::new(); 4];
    let mut next_val = 1i64;

    let emit = |b: &mut HistoryBuilder,
                p: ProcId,
                op: &GenOp,
                written: &mut Vec<Vec<i64>>,
                next_val: &mut i64| {
        match op {
            GenOp::Write(loc) => {
                let v = *next_val;
                *next_val += 1;
                written[*loc as usize].push(v);
                b.push_write(p, Loc(*loc), Value::Int(v));
            }
            GenOp::Read { loc, pick, causal } => {
                let pool = &written[*loc as usize];
                let label = if *causal { ReadLabel::Causal } else { ReadLabel::Pram };
                let v = if pool.is_empty() || (*pick as usize).is_multiple_of(pool.len() + 1) {
                    0
                } else {
                    pool[(*pick as usize) % pool.len()]
                };
                b.push_read(p, Loc(*loc), label, Value::Int(v));
            }
            GenOp::Cs { .. } => unreachable!("handled by caller"),
        }
    };

    for round in 0..=barrier_rounds {
        let mut queues: Vec<std::collections::VecDeque<GenOp>> =
            segments.iter().map(|s| s[round].iter().cloned().collect()).collect();
        while queues.iter().any(|q| !q.is_empty()) {
            let p = rng.gen_range(0..nprocs);
            let Some(op) = queues[p].pop_front() else { continue };
            let p_id = ProcId(p as u32);
            match op {
                GenOp::Cs { lock, ref body } => {
                    b.push_lock(p_id, LockId(lock), LockMode::Write);
                    for inner in body {
                        emit(&mut b, p_id, inner, &mut written, &mut next_val);
                    }
                    b.push_unlock(p_id, LockId(lock), LockMode::Write);
                }
                ref plain => emit(&mut b, p_id, plain, &mut written, &mut next_val),
            }
        }
        if round < barrier_rounds {
            for p in 0..nprocs {
                b.push_barrier(ProcId(p as u32), BarrierId(0), BarrierRound(round as u32));
            }
        }
    }
    b.build().expect("generated histories are well-formed")
}

// ------------------------------------------------------- oracle agreement

/// The violating reads of a checker result, as a sorted, comparable
/// rendering (per-read violations only; the declarative validator's
/// global verdicts have no legacy counterpart to compare against and
/// the legacy modes never produce them).
fn violation_keys(r: &Result<check::CheckReport, check::CheckError>) -> Vec<String> {
    match r {
        Ok(_) => Vec::new(),
        Err(check::CheckError::Violations(rep)) => {
            let mut keys: Vec<String> =
                rep.violations.iter().map(|v| format!("{}:{:?}", v.read, v.kind)).collect();
            keys.sort();
            keys
        }
        Err(e) => vec![format!("error: {e}")],
    }
}

fn assert_agrees(
    h: &History,
    legacy: Result<check::CheckReport, check::CheckError>,
    spec: ModelSpec,
    name: &str,
) {
    let models = ModelAssignment::uniform(h.nprocs(), spec);
    let declarative = check_model(h, &models);
    assert_eq!(
        violation_keys(&legacy),
        violation_keys(&declarative),
        "{} disagreement on:\n{}",
        name,
        h.to_pretty_string()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `ModelSpec::PRAM` through the declarative validator ≡ the
    /// hand-coded `check_pram`, violation for violation.
    #[test]
    fn pram_spec_agrees_with_hand_coded_checker(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        assert_agrees(&h, check::check_pram(&h), ModelSpec::PRAM, "PRAM");
    }

    /// `ModelSpec::CAUSAL` ≡ `check_causal`.
    #[test]
    fn causal_spec_agrees_with_hand_coded_checker(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        assert_agrees(&h, check::check_causal(&h), ModelSpec::CAUSAL, "CAUSAL");
    }

    /// The uniform per-label assignment (Definition 4's mixed mode) ≡
    /// `check_mixed`.
    #[test]
    fn mixed_assignment_agrees_with_hand_coded_checker(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        let models = ModelAssignment::mixed(h.nprocs());
        let declarative = check_model(&h, &models);
        prop_assert_eq!(
            violation_keys(&check::check_mixed(&h)),
            violation_keys(&declarative),
            "mixed disagreement on:\n{}",
            h.to_pretty_string()
        );
    }

    /// `ModelSpec::SC` ≡ the exact serialization search, on histories
    /// small enough for the search to be conclusive. Pass/fail only:
    /// the SC point reports a single global verdict, not per-read
    /// violations.
    #[test]
    fn sc_spec_agrees_with_serialization_search(
        (progs, rounds, seed) in gen_program(2, 3)
    ) {
        let h = build_history(&progs, rounds, seed);
        if h.len() <= 14 {
            let verdict = sc::check_sequential(&h).unwrap();
            if !matches!(verdict, sc::ScVerdict::Unknown) {
                let models = ModelAssignment::uniform(h.nprocs(), ModelSpec::SC);
                prop_assert_eq!(
                    verdict.is_sc(),
                    check_model(&h, &models).is_ok(),
                    "SC disagreement on:\n{}",
                    h.to_pretty_string()
                );
            }
        }
    }

    /// Lattice monotonicity on random histories: a history passing a
    /// stronger point passes every weaker point (strongest-first order
    /// of [`ModelSpec::ALL`] is only a display order; the comparable
    /// pairs are checked explicitly).
    #[test]
    fn lattice_is_monotone_on_random_histories(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        let passes = |spec: ModelSpec| {
            check_model(&h, &ModelAssignment::uniform(h.nprocs(), spec)).is_ok()
        };
        let causal = passes(ModelSpec::CAUSAL);
        let pram = passes(ModelSpec::PRAM);
        let slow = passes(ModelSpec::SLOW);
        let weak = passes(ModelSpec::WEAK_ORDERING);
        let processor = passes(ModelSpec::PROCESSOR);
        prop_assert!(!causal || pram, "causal ⊑ pram broken:\n{}", h.to_pretty_string());
        prop_assert!(!causal || weak, "causal ⊑ weak broken:\n{}", h.to_pretty_string());
        prop_assert!(!pram || slow, "pram ⊑ slow broken:\n{}", h.to_pretty_string());
        prop_assert!(!processor || pram, "processor ⊑ pram broken:\n{}", h.to_pretty_string());
    }
}
