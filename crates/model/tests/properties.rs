//! Property-based tests for the formal model.
//!
//! * algebraic laws of vector clocks;
//! * transitive closure/reduction algebra on random DAGs;
//! * the implication chain **SC ⇒ causal ⇒ PRAM** on randomly generated
//!   well-formed histories (with unique write values, Definition 1's
//!   value-matching is identity-matching, so the chain is a theorem —
//!   the checkers must agree with it on every sample).

use proptest::prelude::*;

use mc_model::graph::Digraph;
use mc_model::{
    check, sc, BarrierId, BarrierRound, HistoryBuilder, Loc, LockId, LockMode, OpId, ProcId,
    ReadLabel, VClock, Value,
};

// ---------------------------------------------------------------- vclock laws

fn clock(n: usize) -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..50, n).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn merge_commutes(a in clock(5), b in clock(5)) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_associates(a in clock(4), b in clock(4), c in clock(4)) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_least_upper_bound(a in clock(4), b in clock(4)) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
        // Least: any upper bound dominates the merge.
        let mut ub = a.clone();
        ub.merge(&b);
        for (p, c) in ub.clone().iter() {
            let _ = (p, c);
        }
        prop_assert!(ub.dominates(&m) && m.dominates(&ub));
    }

    #[test]
    fn dominance_is_a_partial_order(a in clock(4), b in clock(4), c in clock(4)) {
        // reflexive
        prop_assert!(a.dominates(&a));
        // antisymmetric
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        // transitive
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    #[test]
    fn tick_strictly_increases(mut a in clock(4), p in 0u32..4) {
        let before = a.clone();
        a.tick(ProcId(p));
        prop_assert!(a.dominates(&before));
        prop_assert!(!before.dominates(&a));
    }
}

// ------------------------------------------------------------------ DAG algebra

/// Random DAG: edges only from lower to higher node index.
fn dag(n: usize) -> impl Strategy<Value = Digraph> {
    proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
        let mut g = Digraph::new(n);
        for (a, b) in pairs {
            if a < b {
                g.add_edge(a, b);
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn closure_is_transitive_and_contains_edges(g in dag(12)) {
        let c = g.transitive_closure().unwrap();
        for (u, v) in g.edges() {
            prop_assert!(c.get(u, v));
        }
        for u in 0..g.len() {
            for v in 0..g.len() {
                for w in 0..g.len() {
                    if c.get(u, v) && c.get(v, w) {
                        prop_assert!(c.get(u, w), "({u},{v},{w})");
                    }
                }
            }
        }
    }

    #[test]
    fn reduction_preserves_reachability(g in dag(12)) {
        let before = g.transitive_closure().unwrap();
        let red = g.transitive_reduction().unwrap();
        let after = red.transitive_closure().unwrap();
        for u in 0..g.len() {
            for v in 0..g.len() {
                prop_assert_eq!(before.get(u, v), after.get(u, v), "({},{})", u, v);
            }
        }
        prop_assert!(red.edge_count() <= g.edge_count());
    }

    #[test]
    fn reduction_is_minimal(g in dag(9)) {
        // Removing any edge from the reduction loses reachability.
        let red = g.transitive_reduction().unwrap();
        let full = red.transitive_closure().unwrap();
        let edges: Vec<(usize, usize)> = red.edges().collect();
        for (skip_idx, &(su, sv)) in edges.iter().enumerate() {
            let mut g2 = Digraph::new(g.len());
            for (i, &(u, v)) in edges.iter().enumerate() {
                if i != skip_idx {
                    g2.add_edge(u, v);
                }
            }
            let c2 = g2.transitive_closure().unwrap();
            prop_assert!(
                !c2.get(su, sv) || !full.get(su, sv),
                "edge ({su},{sv}) was redundant in the reduction"
            );
        }
    }

    #[test]
    fn topo_order_respects_edges(g in dag(14)) {
        let order = g.topo_order().unwrap();
        let mut pos = vec![0usize; g.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for (u, v) in g.edges() {
            prop_assert!(pos[u] < pos[v]);
        }
    }
}

// ------------------------------------------------------ random history generation

/// One generated instruction for the history builder.
#[derive(Clone, Debug)]
enum GenOp {
    Write(u32),
    Read { loc: u32, pick: u8 },
    Cs { lock: u32, body: Vec<GenOp> },
}

fn gen_ops(depth: u32) -> impl Strategy<Value = GenOp> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(GenOp::Write),
        ((0u32..3), any::<u8>()).prop_map(|(loc, pick)| GenOp::Read { loc, pick }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            4 => leaf,
            1 => ((0u32..2), proptest::collection::vec(gen_ops(0), 1..3))
                .prop_map(|(lock, body)| GenOp::Cs { lock, body }),
        ]
        .boxed()
    }
}

/// A program: per-process op lists plus the number of barrier rounds.
fn gen_program(
    nprocs: usize,
    max_ops: usize,
) -> impl Strategy<Value = (Vec<Vec<GenOp>>, usize, u64)> {
    (
        proptest::collection::vec(
            proptest::collection::vec(gen_ops(1), 1..=max_ops),
            nprocs..=nprocs,
        ),
        0usize..2,
        any::<u64>(),
    )
}

/// Materializes a program into a well-formed history: processes are
/// interleaved segment-by-segment (critical sections kept atomic so the
/// derived lock epochs are valid), reads pick among values already
/// written to the location (or the initial value).
fn build_history(
    progs: &[Vec<GenOp>],
    barrier_rounds: usize,
    interleave_seed: u64,
) -> mc_model::History {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let nprocs = progs.len();
    let mut b = HistoryBuilder::new(nprocs);
    let mut rng = StdRng::seed_from_u64(interleave_seed);

    // Split each program into `barrier_rounds + 1` chunks.
    let mut segments: Vec<Vec<Vec<GenOp>>> = Vec::new();
    for prog in progs {
        let chunk = prog.len().div_ceil(barrier_rounds + 1).max(1);
        let mut chunks: Vec<Vec<GenOp>> = prog.chunks(chunk).map(|c| c.to_vec()).collect();
        chunks.resize(barrier_rounds + 1, Vec::new());
        segments.push(chunks);
    }

    // Values written so far per location (for read resolution), with a
    // global unique-value counter.
    let mut written: Vec<Vec<i64>> = vec![Vec::new(); 4];
    let mut next_val = 1i64;

    let emit = |b: &mut HistoryBuilder,
                p: ProcId,
                op: &GenOp,
                written: &mut Vec<Vec<i64>>,
                next_val: &mut i64,
                rng: &mut StdRng| {
        match op {
            GenOp::Write(loc) => {
                let v = *next_val;
                *next_val += 1;
                written[*loc as usize].push(v);
                b.push_write(p, Loc(*loc), Value::Int(v));
            }
            GenOp::Read { loc, pick } => {
                let pool = &written[*loc as usize];
                let label = if rng.gen_bool(0.5) { ReadLabel::Pram } else { ReadLabel::Causal };
                let v = if pool.is_empty() || (*pick as usize).is_multiple_of(pool.len() + 1) {
                    0
                } else {
                    pool[(*pick as usize) % pool.len()]
                };
                b.push_read(p, Loc(*loc), label, Value::Int(v));
            }
            GenOp::Cs { .. } => unreachable!("handled by caller"),
        }
    };

    for round in 0..=barrier_rounds {
        // Interleave this round's segments at CS-atomic granularity.
        let mut queues: Vec<std::collections::VecDeque<GenOp>> =
            segments.iter().map(|s| s[round].iter().cloned().collect()).collect();
        while queues.iter().any(|q| !q.is_empty()) {
            let p = rng.gen_range(0..nprocs);
            let Some(op) = queues[p].pop_front() else { continue };
            let p_id = ProcId(p as u32);
            match op {
                GenOp::Cs { lock, ref body } => {
                    b.push_lock(p_id, LockId(lock), LockMode::Write);
                    for inner in body {
                        emit(&mut b, p_id, inner, &mut written, &mut next_val, &mut rng);
                    }
                    b.push_unlock(p_id, LockId(lock), LockMode::Write);
                }
                ref plain => emit(&mut b, p_id, plain, &mut written, &mut next_val, &mut rng),
            }
        }
        if round < barrier_rounds {
            for p in 0..nprocs {
                b.push_barrier(ProcId(p as u32), BarrierId(0), BarrierRound(round as u32));
            }
        }
    }
    b.build().expect("generated histories are well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formedness: the generator always yields buildable histories
    /// whose derived structure is sane.
    #[test]
    fn generated_histories_are_well_formed(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        prop_assert!(h.nprocs() == 3);
        // The causality relation must be acyclic for generated histories.
        prop_assert!(mc_model::Causality::new(&h).is_ok());
    }

    /// The implication chain: causally consistent ⇒ PRAM consistent.
    #[test]
    fn causal_implies_pram(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        if check::check_causal(&h).is_ok() {
            prop_assert!(check::check_pram(&h).is_ok(),
                "causal-ok history failed PRAM check:\n{}", h.to_pretty_string());
        }
    }

    /// The implication chain: sequentially consistent ⇒ causally
    /// consistent (checked on small histories where the exact SC search
    /// is conclusive).
    #[test]
    fn sc_implies_causal(
        (progs, rounds, seed) in gen_program(2, 3)
    ) {
        let h = build_history(&progs, rounds, seed);
        if h.len() <= 14 {
            if let Ok(sc::ScVerdict::SequentiallyConsistent(order)) =
                sc::check_sequential_with_budget(&h, 500_000)
            {
                // The witness itself must replay.
                let cz = mc_model::Causality::new(&h).unwrap();
                prop_assert!(sc::replay_serialization(&h, &cz, &order).is_ok());
                prop_assert!(check::check_causal(&h).is_ok(),
                    "SC history failed causal check:\n{}", h.to_pretty_string());
            }
        }
    }

    /// Theorem 1 soundness on random histories: when its premises hold,
    /// the exact SC search must never refute it.
    #[test]
    fn theorem1_sound(
        (progs, rounds, seed) in gen_program(2, 3)
    ) {
        let h = build_history(&progs, rounds, seed);
        if h.len() <= 13 && mc_model::commute::check_theorem1(&h).unwrap().applies() {
            let verdict = sc::check_sequential_with_budget(&h, 500_000).unwrap();
            prop_assert!(
                !matches!(verdict, sc::ScVerdict::NotSequentiallyConsistent),
                "Theorem 1 applied but history is not SC:\n{}",
                h.to_pretty_string()
            );
        }
    }

    /// Checkers are deterministic (same history, same verdict) and
    /// violations always reference real read operations.
    #[test]
    fn checker_reports_are_sane(
        (progs, rounds, seed) in gen_program(3, 4)
    ) {
        let h = build_history(&progs, rounds, seed);
        let r1 = check::check_mixed(&h);
        let r2 = check::check_mixed(&h);
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        if let Err(check::CheckError::Violations(report)) = r1 {
            for v in &report.violations {
                prop_assert!(v.read.index() < h.len());
                prop_assert!(h.op(v.read).kind.is_read());
            }
        }
    }
}

// -------------------------------------------------- targeted non-property tests

#[test]
fn generated_history_smoke() {
    // A fixed sample through the same machinery, for debuggability.
    let progs = vec![
        vec![GenOp::Write(0), GenOp::Read { loc: 0, pick: 1 }],
        vec![GenOp::Cs { lock: 0, body: vec![GenOp::Write(1)] }],
    ];
    let h = build_history(&progs, 1, 7);
    assert!(h.len() >= 5);
    assert_eq!(h.barrier_rounds().len(), 1);
    let _ = check::check_mixed(&h);
}

#[test]
fn op_ids_are_dense() {
    let progs = vec![vec![GenOp::Write(0)], vec![GenOp::Write(1)]];
    let h = build_history(&progs, 0, 1);
    let ids: Vec<OpId> = h.op_ids().collect();
    assert_eq!(ids.len(), h.len());
}

// ------------------------------------------------ the PRAM↔causal spectrum

mod spectrum {
    use mc_model::{check, litmus, Causality, ProcId};

    /// On the lock-chain litmus the stale read is legal under `;2,P`
    /// (singleton group) and illegal for every group containing the
    /// intermediate process p1 — the spectrum of Section 3.2.
    #[test]
    fn group_relation_interpolates_between_pram_and_causal() {
        let h = litmus::lock_transitive_chain();
        let p = |i| ProcId(i);
        let all = vec![p(0), p(1), p(2)];

        // Endpoints agree with the dedicated relations.
        let cz = Causality::new(&h).unwrap();
        let pram = cz.pram_relation(p(2));
        let single = cz.group_relation(p(2), &[p(2)]);
        let causal = cz.causal_relation(p(2));
        let full = cz.group_relation(p(2), &all);
        for a in h.op_ids() {
            for b in h.op_ids() {
                assert_eq!(pram.precedes(a, b), single.precedes(a, b), "{a},{b}");
                if causal.contains(a) && causal.contains(b) {
                    assert_eq!(causal.precedes(a, b), full.precedes(a, b), "{a},{b}");
                }
            }
        }

        // Checker spectrum: singleton groups = PRAM verdict (legal)…
        let singletons: Vec<Vec<ProcId>> = (0..3).map(|i| vec![p(i)]).collect();
        assert!(check::check_grouped(&h, &singletons).is_ok());
        // …full groups = causal verdict (violation)…
        let fulls: Vec<Vec<ProcId>> = (0..3).map(|_| all.clone()).collect();
        assert!(check::check_grouped(&h, &fulls).is_err());
        // …and the interesting middle point: grouping the reader with the
        // intermediate lock holder already exposes the transitive chain.
        let mid = vec![vec![p(0)], vec![p(1)], vec![p(1), p(2)]];
        assert!(check::check_grouped(&h, &mid).is_err());
        // Grouping the reader with the original writer alone does NOT: the
        // chain still passes through p1's reduced lock edges, which touch
        // the group — verify the precise edge structure instead of guessing.
        let with_writer = vec![vec![p(0)], vec![p(1)], vec![p(0), p(2)]];
        let verdict = check::check_grouped(&h, &with_writer);
        // wu0 ↦ wl1 touches p0 (group member) and wu1 ↦ wl2 touches p2:
        // the transitive path survives, so this is also a violation.
        assert!(verdict.is_err());
    }

    #[test]
    #[should_panic(expected = "must belong")]
    fn group_must_contain_owner() {
        let h = litmus::store_buffer();
        let cz = Causality::new(&h).unwrap();
        let _ = cz.group_relation(ProcId(0), &[ProcId(1)]);
    }

    #[test]
    fn grouped_matches_dedicated_checkers_on_litmuses() {
        for h in [
            litmus::causality_chain(mc_model::ReadLabel::Pram),
            litmus::store_buffer(),
            litmus::write_order_disagreement(),
            litmus::fifo_violation(),
            litmus::producer_consumer_await(),
        ] {
            let n = h.nprocs();
            let singles: Vec<Vec<ProcId>> = (0..n as u32).map(|i| vec![ProcId(i)]).collect();
            let all: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
            let fulls: Vec<Vec<ProcId>> = (0..n).map(|_| all.clone()).collect();
            assert_eq!(
                check::check_grouped(&h, &singles).is_ok(),
                check::check_pram(&h).is_ok(),
                "PRAM endpoint"
            );
            assert_eq!(
                check::check_grouped(&h, &fulls).is_ok(),
                check::check_causal(&h).is_ok(),
                "causal endpoint"
            );
        }
    }
}
