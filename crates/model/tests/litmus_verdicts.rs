//! The full verdict matrix of the litmus library: every litmus history
//! against every checker (PRAM / causal / mixed / sequential
//! consistency), pinned as a table so a checker regression shows up as
//! a one-line diff.

use mc_model::check::{check_causal, check_mixed, check_pram};
use mc_model::litmus;
use mc_model::sc::{check_sequential, ScVerdict};
use mc_model::{History, ReadLabel};

/// `(name, history, pram, causal, mixed, sc)` — `true` means accepted.
fn matrix() -> Vec<(&'static str, History, bool, bool, bool, bool)> {
    vec![
        (
            "causality_chain(pram)",
            litmus::causality_chain(ReadLabel::Pram),
            true,
            false,
            true,
            false,
        ),
        (
            "causality_chain(causal)",
            litmus::causality_chain(ReadLabel::Causal),
            true,
            false,
            false,
            false,
        ),
        ("store_buffer", litmus::store_buffer(), true, true, true, false),
        ("write_order_disagreement", litmus::write_order_disagreement(), true, true, true, false),
        ("iriw", litmus::iriw(), true, true, true, false),
        ("wrc(pram)", litmus::wrc(ReadLabel::Pram), true, false, true, false),
        ("wrc(causal)", litmus::wrc(ReadLabel::Causal), true, false, false, false),
        ("two_plus_two_w", litmus::two_plus_two_w(), true, true, true, false),
        ("fifo_violation", litmus::fifo_violation(), false, false, false, false),
        ("lock_transitive_chain", litmus::lock_transitive_chain(), true, false, true, false),
        ("figure1", litmus::figure1().history, true, true, true, true),
        ("entry_consistent_transfer", litmus::entry_consistent_transfer(), true, true, true, true),
        ("barrier_phase_program", litmus::barrier_phase_program(), true, true, true, true),
        ("producer_consumer_await", litmus::producer_consumer_await(), true, true, true, true),
        ("counter_await", litmus::counter_await(), true, true, true, true),
    ]
}

#[test]
fn every_litmus_verdict_is_pinned() {
    for (name, h, pram, causal, mixed, sc) in matrix() {
        assert_eq!(check_pram(&h).is_ok(), pram, "{name}: PRAM (Definition 3)");
        assert_eq!(check_causal(&h).is_ok(), causal, "{name}: causal (Definition 2)");
        assert_eq!(check_mixed(&h).is_ok(), mixed, "{name}: mixed (Definition 4)");
        let verdict = check_sequential(&h).expect("well-formed");
        assert_ne!(verdict, ScVerdict::Unknown, "{name}: SC search must be decisive");
        assert_eq!(verdict.is_sc(), sc, "{name}: sequential consistency (Definition 1)");
    }
}

#[test]
fn acceptance_is_monotone_in_strength() {
    // SC ⊆ causal ⊆ PRAM: anything SC-acceptable is causal-acceptable,
    // anything causal-acceptable is PRAM-acceptable (Section 2 of the
    // paper); the litmus matrix must respect the hierarchy.
    for (name, _h, pram, causal, _mixed, sc) in matrix() {
        if sc {
            assert!(causal, "{name}: SC-consistent history must be causal");
        }
        if causal {
            assert!(pram, "{name}: causal history must be PRAM");
        }
    }
}
