//! Parallel sparse Cholesky factorization (Section 5.3, **Figure 5**).
//!
//! Columns are distributed over processes; column `j` waits until its
//! dependency count reaches zero (`await(count[j] = 0)`), finalizes
//! itself (square root + scaling), and then applies its outer-product
//! update to every later column `k` with `L[k][j] ≠ 0`.
//!
//! Two variants, exactly as discussed in the paper:
//!
//! * [`CholeskyVariant::Locks`] — Figure 5 verbatim: each target column
//!   `k` is protected by a write lock `l[k]`; updates and the
//!   `count[k] := count[k] − 1` decrement happen in a critical section.
//!   Reads must be **causal** ("Weakening these to PRAM reads may result
//!   in inconsistent values as updates made by critical section entries
//!   prior to the previous one may not be observed").
//! * [`CholeskyVariant::Counters`] — the lock-free optimization: matrix
//!   entries and counts become commutative counter objects supporting
//!   `decrement`; all critical sections disappear ("allowing causal
//!   memory to be used without any critical sections"). Requires the
//!   causal substrate: commutative float deltas are ordered only by
//!   causal application.

use mc_model::History;
use mixed_consistency::{
    LockId, Metrics, Mode, ProcId, ReadLabel, RunError, SimTime, System, Value, VarArray,
    VarMatrix, VarSpace,
};

use crate::dense::DenseMatrix;
use crate::sparse::{factorization_residual, SpdMatrix, Symbolic};

/// Which Figure-5 variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CholeskyVariant {
    /// Critical sections under per-column write locks (Figure 5).
    Locks,
    /// Commutative counter objects, no locks (Section 5.3's closing
    /// optimization).
    Counters,
}

impl std::fmt::Display for CholeskyVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyVariant::Locks => write!(f, "locks"),
            CholeskyVariant::Counters => write!(f, "counters"),
        }
    }
}

/// Configuration for a parallel factorization run.
#[derive(Clone, Debug)]
pub struct CholeskyConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Memory protocol (the counters variant requires causal or mixed).
    pub mode: Mode,
    /// Simulation seed.
    pub seed: u64,
    /// Record a checkable history (tiny matrices only).
    pub record: bool,
    /// Virtual nanoseconds per flop.
    pub flop_ns: u64,
}

impl CholeskyConfig {
    /// A default configuration on mixed memory.
    pub fn new(workers: usize) -> Self {
        CholeskyConfig { workers, mode: Mode::Mixed, seed: 1, record: false, flop_ns: 2 }
    }
}

/// The result of a parallel factorization.
#[derive(Debug)]
pub struct CholeskyRun {
    /// The computed lower factor.
    pub l: DenseMatrix,
    /// `‖L·Lᵀ − A‖_max`.
    pub residual: f64,
    /// Simulator metrics.
    pub metrics: Metrics,
    /// Recorded history, if requested.
    pub history: Option<History>,
}

/// Runs the parallel factorization of `a` (with its symbolic structure
/// `sym`) under the chosen variant.
///
/// # Errors
///
/// Propagates simulation/recording failures.
///
/// # Panics
///
/// Panics if the counters variant is requested on a non-causal substrate
/// (PRAM or SC), or if `a` is not positive definite.
pub fn run_cholesky(
    cfg: &CholeskyConfig,
    a: &SpdMatrix,
    sym: &Symbolic,
    variant: CholeskyVariant,
) -> Result<CholeskyRun, RunError> {
    if variant == CholeskyVariant::Counters {
        assert!(
            matches!(cfg.mode, Mode::Causal | Mode::Mixed),
            "counter objects require the causal substrate (got {})",
            cfg.mode
        );
    }
    let n = a.n();
    let mut vars = VarSpace::new();
    let l_mat: VarMatrix = vars.matrix(n, n);
    let counts: VarArray = vars.array(n);

    let mut sys = System::new(cfg.workers, cfg.mode).seed(cfg.seed).record(cfg.record);

    let workers = cfg.workers;
    let owner = move |j: usize| j % workers;

    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        let a = a.clone();
        let sym = sym.clone();
        sys.spawn(move |ctx| {
            // Phase 0: worker 0 installs A's lower triangle and the
            // dependency counts, then everyone synchronizes once.
            if w == 0 {
                for i in 0..n {
                    for j in 0..=i {
                        ctx.write(l_mat.at(i, j), a.get(i, j));
                    }
                }
                for j in 0..n {
                    ctx.write(counts.at(j), sym.dep_counts[j] as i64);
                }
            }
            ctx.barrier();

            let label = ReadLabel::Causal;
            for j in (0..n).filter(|&j| owner(j) == w) {
                // Line 1: await count[j] = 0.
                ctx.await_eq(counts.at(j), 0i64);

                // Lines 2-3: finalize column j locally.
                let diag = ctx.read(l_mat.at(j, j), label).expect_f64();
                assert!(diag > 0.0, "matrix not positive definite at column {j}");
                let d = diag.sqrt();
                ctx.write(l_mat.at(j, j), d);
                // Cache the scaled column for the update phase.
                let mut col: Vec<(usize, f64)> = Vec::new();
                for i in (j + 1)..n {
                    if sym.l_nonzero(i, j) {
                        let v = ctx.read(l_mat.at(i, j), label).expect_f64() / d;
                        ctx.write(l_mat.at(i, j), v);
                        col.push((i, v));
                    }
                }
                ctx.compute(SimTime::from_nanos(cfg.flop_ns * (col.len() as u64 + 1)));

                // Lines 4-8: update every dependent column k.
                for k in sym.updates_of(j) {
                    let lkj = col
                        .iter()
                        .find(|&&(i, _)| i == k)
                        .map(|&(_, v)| v)
                        .expect("k is a nonzero row of column j");
                    let rows = sym.update_rows(j, k);
                    ctx.compute(SimTime::from_nanos(cfg.flop_ns * 2 * rows.len() as u64));
                    match variant {
                        CholeskyVariant::Locks => {
                            let lk = LockId(k as u32);
                            ctx.write_lock(lk);
                            for &i in &rows {
                                let lij = col
                                    .iter()
                                    .find(|&&(r, _)| r == i)
                                    .map(|&(_, v)| v)
                                    .expect("i is a nonzero row of column j");
                                let cur = ctx.read(l_mat.at(i, k), label).expect_f64();
                                ctx.write(l_mat.at(i, k), cur - lij * lkj);
                            }
                            let c = ctx.read(counts.at(k), label).expect_i64();
                            ctx.write(counts.at(k), c - 1);
                            ctx.write_unlock(lk);
                        }
                        CholeskyVariant::Counters => {
                            for &i in &rows {
                                let lij = col
                                    .iter()
                                    .find(|&&(r, _)| r == i)
                                    .map(|&(_, v)| v)
                                    .expect("i is a nonzero row of column j");
                                ctx.add(l_mat.at(i, k), -(lij * lkj));
                            }
                            ctx.add(counts.at(k), -1i64);
                        }
                    }
                }
            }
        });
    }

    let outcome = sys.run()?;
    // Collect each column from its owner's replica: in the counters
    // variant only the owner is guaranteed the causally final view of its
    // own column (which is the only view the algorithm ever reads).
    let mut l = DenseMatrix::zeros(n);
    for j in 0..n {
        let from = ProcId(owner(j) as u32);
        for i in j..n {
            if let Value::F64(v) = outcome.final_value(from, l_mat.at(i, j)) {
                l.set(i, j, v);
            }
        }
    }
    let residual = factorization_residual(a, &l);
    Ok(CholeskyRun { l, residual, metrics: outcome.metrics, history: outcome.history })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{
        grid_laplacian, random_sparse_spd, sparse_cholesky_reference, symbolic_factorize,
    };
    use mixed_consistency::check;

    #[test]
    fn lock_variant_factors_grid() {
        let a = grid_laplacian(3);
        let sym = symbolic_factorize(&a);
        for workers in [1, 2, 3] {
            let cfg = CholeskyConfig::new(workers);
            let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Locks).unwrap();
            assert!(run.residual < 1e-9, "{workers} workers: residual {}", run.residual);
            let l_ref = sparse_cholesky_reference(&a, &sym);
            assert!(run.l.max_abs_diff(&l_ref) < 1e-9);
        }
    }

    #[test]
    fn counter_variant_factors_grid() {
        let a = grid_laplacian(3);
        let sym = symbolic_factorize(&a);
        for workers in [1, 2, 3] {
            let cfg = CholeskyConfig::new(workers);
            let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Counters).unwrap();
            assert!(run.residual < 1e-9, "{workers} workers: residual {}", run.residual);
        }
    }

    #[test]
    fn both_variants_on_random_matrices() {
        for seed in [3, 9] {
            let a = random_sparse_spd(12, 14, seed);
            let sym = symbolic_factorize(&a);
            let cfg = CholeskyConfig { seed, ..CholeskyConfig::new(3) };
            for variant in [CholeskyVariant::Locks, CholeskyVariant::Counters] {
                let run = run_cholesky(&cfg, &a, &sym, variant).unwrap();
                assert!(run.residual < 1e-8, "seed {seed} {variant}: residual {}", run.residual);
            }
        }
    }

    #[test]
    fn counters_use_fewer_lock_messages() {
        // The Section 7 claim (C2): the counter variant eliminates lock
        // traffic entirely.
        let a = grid_laplacian(3);
        let sym = symbolic_factorize(&a);
        let cfg = CholeskyConfig::new(3);
        let locks = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Locks).unwrap();
        let counters = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Counters).unwrap();
        assert!(locks.metrics.kind("lock_req").count > 0);
        assert_eq!(counters.metrics.kind("lock_req").count, 0);
        assert!(
            counters.metrics.finish_time < locks.metrics.finish_time,
            "counters {} vs locks {}",
            counters.metrics.finish_time,
            locks.metrics.finish_time
        );
    }

    #[test]
    #[should_panic(expected = "causal substrate")]
    fn counters_on_pram_rejected() {
        let a = grid_laplacian(2);
        let sym = symbolic_factorize(&a);
        let cfg = CholeskyConfig { mode: Mode::Pram, ..CholeskyConfig::new(2) };
        let _ = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Counters);
    }

    #[test]
    fn lock_variant_works_on_sc() {
        let a = grid_laplacian(2);
        let sym = symbolic_factorize(&a);
        let cfg = CholeskyConfig { mode: Mode::Sc, ..CholeskyConfig::new(2) };
        let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Locks).unwrap();
        assert!(run.residual < 1e-9);
    }

    #[test]
    fn recorded_lock_history_is_causal() {
        let a = grid_laplacian(2);
        let sym = symbolic_factorize(&a);
        let cfg = CholeskyConfig { record: true, ..CholeskyConfig::new(2) };
        let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Locks).unwrap();
        let h = run.history.expect("recorded");
        let report = check::check_mixed(&h).unwrap();
        assert!(report.is_consistent());
    }

    #[test]
    fn recorded_counter_history_is_well_formed() {
        let a = grid_laplacian(2);
        let sym = symbolic_factorize(&a);
        let cfg = CholeskyConfig { record: true, ..CholeskyConfig::new(2) };
        let run = run_cholesky(&cfg, &a, &sym, CholeskyVariant::Counters).unwrap();
        // Counter locations mix writes and float updates: the checker
        // skips those reads but the history itself must be well-formed
        // (which `run` already validated) and violation-free elsewhere.
        let h = run.history.expect("recorded");
        let report = check::check_mixed(&h).unwrap();
        assert!(report.is_consistent());
    }
}
