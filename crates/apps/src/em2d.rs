//! Two-dimensional FDTD electromagnetic-field computation — the full
//! spatial version of Figure 4 / Section 5.2.
//!
//! TMz-mode Yee lattice on a `k × k` grid: an `Ez` node field plus the
//! staggered `Hx`/`Hy` fields. Each process owns a block of grid *rows*
//! and reads one row of ghost nodes from each neighbouring partition per
//! phase ("requires read access to adjoining nodes in neighboring
//! partitions"). Alternating phases separated by barriers:
//!
//! ```text
//! while not done do
//!   forall E-nodes e do for each adjoining H-node h: update e using h;
//!   barrier;
//!   forall H-nodes h do for each adjoining E-node e: update h using e;
//!   barrier;
//! ```
//!
//! PRAM reads + the phase discipline (Corollary 2) make the parallel run
//! **bit-identical** to the sequential reference.

use mc_model::History;
use mixed_consistency::{
    Metrics, Mode, ProcId, ReadLabel, RunError, SimTime, System, VarMatrix, VarSpace,
};

/// Configuration of the 2-D solver.
#[derive(Clone, Debug)]
pub struct Em2dConfig {
    /// Grid side: `k × k` Ez nodes.
    pub k: usize,
    /// Leapfrog steps.
    pub steps: usize,
    /// Worker processes (block row partitioning).
    pub workers: usize,
    /// Memory protocol.
    pub mode: Mode,
    /// Simulation seed.
    pub seed: u64,
    /// Record a checkable history.
    pub record: bool,
    /// Courant factor.
    pub courant: f64,
    /// Virtual nanoseconds per flop.
    pub flop_ns: u64,
}

impl Em2dConfig {
    /// A small default configuration.
    pub fn new(k: usize, steps: usize, workers: usize, mode: Mode) -> Self {
        Em2dConfig { k, steps, workers, mode, seed: 1, record: false, courant: 0.4, flop_ns: 2 }
    }
}

/// The final fields of a 2-D run.
#[derive(Debug)]
pub struct Em2dRun {
    /// `Ez`, row-major `k × k`.
    pub ez: Vec<f64>,
    /// `Hx`, row-major `k × (k-1)`.
    pub hx: Vec<f64>,
    /// `Hy`, row-major `(k-1) × k`.
    pub hy: Vec<f64>,
    /// Simulator metrics.
    pub metrics: Metrics,
    /// Recorded history, if requested.
    pub history: Option<History>,
}

/// The initial Ez field: a Gaussian bump at the grid centre.
pub fn initial_ez(k: usize) -> Vec<f64> {
    let c = (k as f64 - 1.0) / 2.0;
    let w = k as f64 / 6.0;
    let mut out = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let d2 = ((i as f64 - c) / w).powi(2) + ((j as f64 - c) / w).powi(2);
            out.push((-d2).exp());
        }
    }
    out
}

/// Sequential reference with the identical per-node arithmetic.
pub fn fdtd2d_reference(cfg: &Em2dConfig) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = cfg.k;
    let mut ez = initial_ez(k);
    let mut hx = vec![0.0f64; k * (k - 1)];
    let mut hy = vec![0.0f64; (k - 1) * k];
    let c = cfg.courant;
    let ez_at = |ez: &[f64], i: usize, j: usize| ez[i * k + j];
    for _ in 0..cfg.steps {
        // E phase (interior nodes; PEC boundary).
        let ez_old = ez.clone();
        for i in 1..(k - 1) {
            for j in 1..(k - 1) {
                let curl = (hy[i * k + j] - hy[(i - 1) * k + j])
                    - (hx[i * (k - 1) + j] - hx[i * (k - 1) + j - 1]);
                ez[i * k + j] = ez_old[i * k + j] + c * curl;
            }
        }
        // H phase.
        let ez_now = ez.clone();
        for i in 0..k {
            for j in 0..(k - 1) {
                hx[i * (k - 1) + j] -= c * (ez_at(&ez_now, i, j + 1) - ez_at(&ez_now, i, j));
            }
        }
        for i in 0..(k - 1) {
            for j in 0..k {
                hy[i * k + j] += c * (ez_at(&ez_now, i + 1, j) - ez_at(&ez_now, i, j));
            }
        }
    }
    (ez, hx, hy)
}

fn rows(k: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let per = k.div_ceil(workers);
    (w * per).min(k)..((w + 1) * per).min(k)
}

/// Runs the parallel 2-D FDTD computation.
///
/// # Errors
///
/// Propagates simulation/recording failures.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn run_fdtd2d(cfg: &Em2dConfig) -> Result<Em2dRun, RunError> {
    assert!(cfg.k >= 3, "need at least a 3x3 grid");
    let k = cfg.k;
    let label = ReadLabel::Pram;

    let mut vars = VarSpace::new();
    let ez: VarMatrix = vars.matrix(k, k);
    let hx: VarMatrix = vars.matrix(k, k - 1);
    let hy: VarMatrix = vars.matrix(k - 1, k);

    let mut sys = System::new(cfg.workers, cfg.mode).seed(cfg.seed).record(cfg.record);
    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        sys.spawn(move |ctx| {
            if w == 0 {
                for (idx, v) in initial_ez(k).into_iter().enumerate() {
                    ctx.write(ez.at(idx / k, idx % k), v);
                }
                for i in 0..k {
                    for j in 0..(k - 1) {
                        ctx.write(hx.at(i, j), 0.0f64);
                    }
                }
                for i in 0..(k - 1) {
                    for j in 0..k {
                        ctx.write(hy.at(i, j), 0.0f64);
                    }
                }
            }
            ctx.barrier();

            let my_rows = rows(k, cfg.workers, w);
            let c = cfg.courant;
            for _ in 0..cfg.steps {
                // E phase: each owned interior Ez node reads its four
                // adjoining H nodes (Hy from row i-1 may be a ghost read
                // into the previous partition).
                let mut new_ez = Vec::new();
                for i in my_rows.clone() {
                    if i == 0 || i == k - 1 {
                        continue;
                    }
                    for j in 1..(k - 1) {
                        let hy_i = ctx.read(hy.at(i, j), label).expect_f64();
                        let hy_im1 = ctx.read(hy.at(i - 1, j), label).expect_f64();
                        let hx_j = ctx.read(hx.at(i, j), label).expect_f64();
                        let hx_jm1 = ctx.read(hx.at(i, j - 1), label).expect_f64();
                        let cur = ctx.read(ez.at(i, j), label).expect_f64();
                        new_ez.push((i, j, cur + c * ((hy_i - hy_im1) - (hx_j - hx_jm1))));
                    }
                }
                ctx.compute(SimTime::from_nanos(cfg.flop_ns * 5 * new_ez.len() as u64));
                for (i, j, v) in new_ez {
                    ctx.write(ez.at(i, j), v);
                }
                ctx.barrier();

                // H phase: owned Hx and Hy rows; Ez from row i+1 may be a
                // ghost read into the next partition.
                let mut new_h = Vec::new();
                for i in my_rows.clone() {
                    for j in 0..(k - 1) {
                        let e1 = ctx.read(ez.at(i, j + 1), label).expect_f64();
                        let e0 = ctx.read(ez.at(i, j), label).expect_f64();
                        let cur = ctx.read(hx.at(i, j), label).expect_f64();
                        new_h.push((0u8, i, j, cur - c * (e1 - e0)));
                    }
                    if i < k - 1 {
                        for j in 0..k {
                            let e1 = ctx.read(ez.at(i + 1, j), label).expect_f64();
                            let e0 = ctx.read(ez.at(i, j), label).expect_f64();
                            let cur = ctx.read(hy.at(i, j), label).expect_f64();
                            new_h.push((1u8, i, j, cur + c * (e1 - e0)));
                        }
                    }
                }
                ctx.compute(SimTime::from_nanos(cfg.flop_ns * 3 * new_h.len() as u64));
                for (which, i, j, v) in new_h {
                    let loc = if which == 0 { hx.at(i, j) } else { hy.at(i, j) };
                    ctx.write(loc, v);
                }
                ctx.barrier();
            }
        });
    }

    let outcome = sys.run()?;
    let collect = |m: VarMatrix, r: usize, cdim: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(r * cdim);
        for i in 0..r {
            for j in 0..cdim {
                out.push(outcome.final_value(ProcId(0), m.at(i, j)).as_f64().unwrap_or(0.0));
            }
        }
        out
    };
    Ok(Em2dRun {
        ez: collect(ez, k, k),
        hx: collect(hx, k, k - 1),
        hy: collect(hy, k - 1, k),
        metrics: outcome.metrics,
        history: outcome.history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_field_peaks_at_centre() {
        let k = 9;
        let ez = initial_ez(k);
        let (max_idx, _) =
            ez.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert_eq!(max_idx, (k / 2) * k + k / 2);
    }

    #[test]
    fn reference_stays_bounded() {
        let cfg = Em2dConfig::new(10, 12, 1, Mode::Pram);
        let (ez, hx, hy) = fdtd2d_reference(&cfg);
        let energy: f64 = ez.iter().chain(&hx).chain(&hy).map(|v| v * v).sum();
        assert!(energy > 0.05 && energy < 50.0, "energy {energy}");
    }

    #[test]
    fn parallel_matches_reference_bitwise() {
        for workers in [1, 2, 3] {
            let cfg = Em2dConfig::new(6, 3, workers, Mode::Pram);
            let run = run_fdtd2d(&cfg).unwrap();
            let (ez, hx, hy) = fdtd2d_reference(&cfg);
            assert_eq!(run.ez, ez, "{workers} workers Ez");
            assert_eq!(run.hx, hx, "{workers} workers Hx");
            assert_eq!(run.hy, hy, "{workers} workers Hy");
        }
    }

    #[test]
    fn modes_agree() {
        let base = Em2dConfig::new(5, 2, 2, Mode::Pram);
        let reference = fdtd2d_reference(&base);
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let run = run_fdtd2d(&Em2dConfig { mode, ..base.clone() }).unwrap();
            assert_eq!((run.ez, run.hx, run.hy), reference.clone(), "{mode}");
        }
    }

    #[test]
    fn recorded_history_passes_phase_discipline() {
        let mut cfg = Em2dConfig::new(4, 1, 2, Mode::Pram);
        cfg.record = true;
        let run = run_fdtd2d(&cfg).unwrap();
        let h = run.history.expect("recorded");
        mixed_consistency::check::check_pram(&h).unwrap();
        mixed_consistency::programs::check_pram_consistent_program(&h).unwrap();
    }
}
