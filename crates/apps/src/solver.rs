//! The iterative linear-equation solvers of Section 5.1.
//!
//! Three variants of `x := x + D⁻¹(b − A·x)` (Jacobi) on shared memory:
//!
//! * [`run_barrier_solver`] — **Figure 2**: a coordinator plus workers
//!   synchronized by two barriers per iteration. The program is
//!   PRAM-consistent (Corollary 2), so every read is a cheap PRAM read.
//! * [`run_handshake_solver`] — **Figure 3**: the same computation without
//!   barriers, using `await`-based handshakes through `computed[i]` /
//!   `updated[i]` flags. Here PRAM reads are *not* sufficient (the paper:
//!   "the reads of the input matrix in this solution cannot be PRAM");
//!   causal reads are required — the label is a parameter precisely so the
//!   checkers can demonstrate the violation.
//! * [`run_async_relaxation`] — the Section 7 remark: chaotic/asynchronous
//!   relaxation (Gauss–Seidel-style) with no synchronization at all still
//!   converges on PRAM memory for diagonally dominant systems.

use mc_model::History;
use mixed_consistency::{
    Loc, Metrics, Mode, ProcId, ReadLabel, RunError, SimTime, System, Value, VarArray, VarMatrix,
    VarSpace,
};

use crate::dense::{diff_inf, residual_inf, DenseMatrix};

/// Configuration shared by all solver variants.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Number of unknowns.
    pub n: usize,
    /// Number of worker processes (the coordinator is an extra process).
    pub workers: usize,
    /// Convergence tolerance on `‖x_{k+1} − x_k‖∞`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for the system, the schedule and the latency jitter.
    pub seed: u64,
    /// Memory protocol to run on.
    pub mode: Mode,
    /// Record a checkable history (keep the problem tiny when enabled:
    /// checking costs O(ops²)).
    pub record: bool,
    /// Virtual nanoseconds charged per floating-point operation.
    pub flop_ns: u64,
    /// Optional network latency override (default: the simulator's
    /// LAN-like model).
    pub latency: Option<mixed_consistency::LatencyModel>,
}

impl SolverConfig {
    /// A small default configuration.
    pub fn new(n: usize, workers: usize, mode: Mode) -> Self {
        SolverConfig {
            n,
            workers,
            tol: 1e-8,
            max_iters: 200,
            seed: 1,
            mode,
            record: false,
            flop_ns: 2,
            latency: None,
        }
    }
}

/// The result of a solver run.
#[derive(Debug)]
pub struct SolverRun {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Final residual `‖A·x − b‖∞`.
    pub residual: f64,
    /// Simulator metrics (virtual time, messages, bytes).
    pub metrics: Metrics,
    /// Recorded history, if requested.
    pub history: Option<History>,
}

/// Shared-variable layout common to the solver variants.
#[derive(Clone, Copy, Debug)]
struct Layout {
    a: VarMatrix,
    b: VarArray,
    x: VarArray,
    temp: VarArray,
    done: Loc,
    init: Loc,
    computed: VarArray,
    updated: VarArray,
}

fn layout(n: usize, workers: usize) -> Layout {
    let mut vars = VarSpace::new();
    Layout {
        a: vars.matrix(n, n),
        b: vars.array(n),
        x: vars.array(n),
        temp: vars.array(n),
        done: vars.scalar(),
        init: vars.scalar(),
        computed: vars.array(workers),
        updated: vars.array(workers),
    }
}

/// The rows owned by worker `w` (block distribution).
fn row_range(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(workers);
    let lo = (w * per).min(n);
    let hi = ((w + 1) * per).min(n);
    lo..hi
}

/// Writes the input system into shared memory (done by the coordinator).
fn write_inputs(ctx: &mut mixed_consistency::Ctx<'_>, lay: &Layout, a: &DenseMatrix, b: &[f64]) {
    let n = a.n();
    for (i, &bi) in b.iter().enumerate().take(n) {
        for j in 0..n {
            ctx.write(lay.a.at(i, j), a.get(i, j));
        }
        ctx.write(lay.b.at(i), bi);
        ctx.write(lay.x.at(i), 0.0f64);
    }
}

/// One worker Jacobi step over its rows: returns the new block values.
fn jacobi_rows(
    ctx: &mut mixed_consistency::Ctx<'_>,
    lay: &Layout,
    label: ReadLabel,
    n: usize,
    rows: std::ops::Range<usize>,
    flop_ns: u64,
) -> Vec<f64> {
    // Read the full x estimate once per sweep.
    let x: Vec<f64> = (0..n).map(|j| ctx.read(lay.x.at(j), label).expect_f64()).collect();
    let mut out = Vec::with_capacity(rows.len());
    let nrows = rows.len();
    for i in rows {
        let mut sigma = 0.0;
        for (j, xj) in x.iter().enumerate() {
            sigma += ctx.read(lay.a.at(i, j), label).expect_f64() * xj;
        }
        let bi = ctx.read(lay.b.at(i), label).expect_f64();
        let aii = ctx.read(lay.a.at(i, i), label).expect_f64();
        out.push(x[i] + (bi - sigma) / aii);
    }
    ctx.compute(SimTime::from_nanos(flop_ns * (2 * n as u64 + 2) * nrows as u64));
    out
}

/// **Figure 2**: the synchronous iterative solver with barriers, PRAM
/// reads throughout (legal by Corollary 2).
///
/// # Errors
///
/// Propagates simulation/recording failures.
pub fn run_barrier_solver(
    cfg: &SolverConfig,
    a: &DenseMatrix,
    b: &[f64],
) -> Result<SolverRun, RunError> {
    let n = cfg.n;
    assert!(cfg.workers >= 1, "need at least one worker");
    assert_eq!(a.n(), n, "matrix size must match config");
    let lay = layout(n, cfg.workers);
    let label = ReadLabel::Pram;

    let mut sys = System::new(cfg.workers + 1, cfg.mode).seed(cfg.seed).record(cfg.record);
    if let Some(lat) = cfg.latency {
        sys = sys.latency(lat);
    }

    // Coordinator (process 0).
    {
        let cfg = cfg.clone();
        let a = a.clone();
        let b = b.to_vec();
        sys.spawn(move |ctx| {
            write_inputs(ctx, &lay, &a, &b);
            ctx.barrier(); // inputs visible (phase 0 ends)
            let mut prev = vec![0.0f64; n];
            let mut iter = 0usize;
            loop {
                // Compute phase (odd): check convergence of the estimate
                // installed in the previous install phase.
                let x: Vec<f64> =
                    (0..n).map(|j| ctx.read(lay.x.at(j), label).expect_f64()).collect();
                iter += 1;
                let delta = diff_inf(&x, &prev);
                prev = x;
                let stop = (iter > 1 && delta < cfg.tol) || iter >= cfg.max_iters;
                ctx.barrier();
                // Install phase (even): publish the verdict. `done` is
                // written exactly once per even phase and read only in the
                // following odd phase — the PRAM-consistent discipline of
                // Corollary 2.
                ctx.write(lay.done, if stop { 1i64 } else { 0 });
                ctx.barrier();
                if stop {
                    break;
                }
            }
        });
    }
    // Workers.
    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        sys.spawn(move |ctx| {
            ctx.barrier(); // wait for inputs
            let rows = row_range(n, cfg.workers, w);
            loop {
                // Compute phase (odd): new estimates into temp.
                let vals = jacobi_rows(ctx, &lay, label, n, rows.clone(), cfg.flop_ns);
                for (off, v) in vals.iter().enumerate() {
                    ctx.write(lay.temp.at(rows.start + off), *v);
                }
                ctx.barrier();
                // Install phase (even): move temp into x.
                for i in rows.clone() {
                    let t = ctx.read(lay.temp.at(i), label);
                    ctx.write(lay.x.at(i), t);
                }
                ctx.barrier();
                // Loop test (next odd phase): reads the previous even
                // phase's done verdict.
                if ctx.read(lay.done, label) == Value::Int(1) {
                    break;
                }
            }
        });
    }

    finish(cfg, a, b, lay, sys)
}

/// **Figure 3**: the solver with coordinator handshaking through awaits —
/// no barriers. `label` selects the read consistency: the paper proves
/// causal reads suffice (Theorem 1) and PRAM reads do not.
///
/// # Errors
///
/// Propagates simulation/recording failures.
pub fn run_handshake_solver(
    cfg: &SolverConfig,
    a: &DenseMatrix,
    b: &[f64],
    label: ReadLabel,
) -> Result<SolverRun, RunError> {
    let n = cfg.n;
    assert!(cfg.workers >= 1, "need at least one worker");
    assert_eq!(a.n(), n, "matrix size must match config");
    let lay = layout(n, cfg.workers);

    let mut sys = System::new(cfg.workers + 1, cfg.mode).seed(cfg.seed).record(cfg.record);
    if let Some(lat) = cfg.latency {
        sys = sys.latency(lat);
    }

    // Coordinator p0.
    {
        let cfg = cfg.clone();
        let a = a.clone();
        let b = b.to_vec();
        sys.spawn(move |ctx| {
            write_inputs(ctx, &lay, &a, &b);
            ctx.write(lay.init, 1i64);
            let mut prev = vec![0.0f64; n];
            let mut phase: i64 = 0;
            loop {
                phase += 1;
                for i in 0..cfg.workers {
                    ctx.await_eq(lay.computed.at(i), phase);
                }
                for i in 0..cfg.workers {
                    ctx.write(lay.computed.at(i), -phase);
                }
                for i in 0..cfg.workers {
                    ctx.await_eq(lay.updated.at(i), phase);
                }
                let x: Vec<f64> =
                    (0..n).map(|j| ctx.read(lay.x.at(j), label).expect_f64()).collect();
                let delta = diff_inf(&x, &prev);
                prev = x;
                let done = (phase > 1 && delta < cfg.tol) || phase as usize >= cfg.max_iters;
                if done {
                    ctx.write(lay.done, 1i64);
                }
                for i in 0..cfg.workers {
                    ctx.write(lay.updated.at(i), -phase);
                }
                if done {
                    break;
                }
            }
        });
    }
    // Workers.
    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        sys.spawn(move |ctx| {
            ctx.await_eq(lay.init, 1i64);
            let rows = row_range(n, cfg.workers, w);
            let mut phase: i64 = 0;
            loop {
                if ctx.read(lay.done, label) == Value::Int(1) {
                    break;
                }
                phase += 1;
                let vals = jacobi_rows(ctx, &lay, label, n, rows.clone(), cfg.flop_ns);
                for (off, v) in vals.iter().enumerate() {
                    ctx.write(lay.temp.at(rows.start + off), *v);
                }
                ctx.write(lay.computed.at(w), phase);
                ctx.await_eq(lay.computed.at(w), -phase);
                for i in rows.clone() {
                    let t = ctx.read(lay.temp.at(i), label);
                    ctx.write(lay.x.at(i), t);
                }
                ctx.write(lay.updated.at(w), phase);
                ctx.await_eq(lay.updated.at(w), -phase);
            }
        });
    }

    finish(cfg, a, b, lay, sys)
}

/// The Section 7 remark: **asynchronous relaxation** (Gauss–Seidel-like)
/// with no synchronization between sweeps still converges on PRAM for
/// diagonally dominant systems. Workers run `sweeps` chaotic sweeps over
/// their rows using whatever estimates their replicas hold.
///
/// # Errors
///
/// Propagates simulation/recording failures.
pub fn run_async_relaxation(
    cfg: &SolverConfig,
    a: &DenseMatrix,
    b: &[f64],
    sweeps: usize,
) -> Result<SolverRun, RunError> {
    let n = cfg.n;
    assert!(cfg.workers >= 1, "need at least one worker");
    assert_eq!(a.n(), n, "matrix size must match config");
    let lay = layout(n, cfg.workers);
    let label = ReadLabel::Pram;

    let mut sys = System::new(cfg.workers + 1, cfg.mode).seed(cfg.seed).record(cfg.record);
    if let Some(lat) = cfg.latency {
        sys = sys.latency(lat);
    }

    {
        let a = a.clone();
        let b = b.to_vec();
        sys.spawn(move |ctx| {
            write_inputs(ctx, &lay, &a, &b);
            ctx.write(lay.init, 1i64);
        });
    }
    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        sys.spawn(move |ctx| {
            ctx.await_eq(lay.init, 1i64);
            let rows = row_range(n, cfg.workers, w);
            for _ in 0..sweeps {
                // Chaotic sweep: read-latest, write immediately (the
                // Gauss–Seidel flavor — newer values are picked up as soon
                // as they arrive at this replica).
                for i in rows.clone() {
                    let mut sigma = 0.0;
                    for j in 0..n {
                        if j != i {
                            sigma += ctx.read(lay.a.at(i, j), label).expect_f64()
                                * ctx.read(lay.x.at(j), label).expect_f64();
                        }
                    }
                    let bi = ctx.read(lay.b.at(i), label).expect_f64();
                    let aii = ctx.read(lay.a.at(i, i), label).expect_f64();
                    ctx.write(lay.x.at(i), (bi - sigma) / aii);
                }
                ctx.compute(SimTime::from_nanos(
                    cfg.flop_ns * (2 * n as u64 + 2) * rows.len() as u64,
                ));
            }
        });
    }

    let mut run = finish(cfg, a, b, lay, sys)?;
    run.iterations = sweeps;
    run.converged = run.residual < cfg.tol.max(1e-6);
    Ok(run)
}

/// Runs the system, extracts the solution and packages the result.
fn finish(
    cfg: &SolverConfig,
    a: &DenseMatrix,
    b: &[f64],
    lay: Layout,
    sys: System,
) -> Result<SolverRun, RunError> {
    let outcome = sys.run()?;
    let x: Vec<f64> = (0..cfg.n)
        .map(|i| outcome.final_value(ProcId(0), lay.x.at(i)).as_f64().unwrap_or(0.0))
        .collect();
    let residual = residual_inf(a, &x, b);
    // Iteration count: the coordinator's handshake/barrier rounds are not
    // directly observable here; infer from metrics-independent state — the
    // recorded history when present, otherwise leave the caller's own
    // accounting. We approximate with the done flag: converged iff the
    // residual is small.
    let converged = residual < solver_residual_bound(cfg, a, b);
    Ok(SolverRun {
        x,
        iterations: 0,
        converged,
        residual,
        metrics: outcome.metrics,
        history: outcome.history,
    })
}

/// A loose residual bound implied by the `tol` on iterate differences:
/// `‖A‖∞ · tol` scaled with a safety factor.
fn solver_residual_bound(cfg: &SolverConfig, a: &DenseMatrix, _b: &[f64]) -> f64 {
    let row_norm: f64 =
        (0..a.n()).map(|i| (0..a.n()).map(|j| a.get(i, j).abs()).sum()).fold(0.0, f64::max);
    (cfg.tol * row_norm * 100.0).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{diag_dominant_system, jacobi_reference};
    use mixed_consistency::check;

    fn small_cfg(mode: Mode) -> (SolverConfig, DenseMatrix, Vec<f64>) {
        let cfg = SolverConfig { tol: 1e-9, ..SolverConfig::new(8, 2, mode) };
        let (a, b) = diag_dominant_system(cfg.n, 42);
        (cfg, a, b)
    }

    #[test]
    fn barrier_solver_matches_reference() {
        let (cfg, a, b) = small_cfg(Mode::Pram);
        let run = run_barrier_solver(&cfg, &a, &b).unwrap();
        assert!(run.converged, "residual {}", run.residual);
        let (x_ref, _) = jacobi_reference(&a, &b, cfg.tol, cfg.max_iters);
        assert!(diff_inf(&run.x, &x_ref) < 1e-6);
        assert!(run.metrics.finish_time > SimTime::ZERO);
    }

    #[test]
    fn barrier_solver_works_on_all_modes() {
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
            let mut cfg = SolverConfig::new(6, 2, mode);
            cfg.tol = 1e-8;
            cfg.max_iters = 120;
            let (a, b) = diag_dominant_system(cfg.n, 13);
            let run = run_barrier_solver(&cfg, &a, &b).unwrap();
            assert!(run.converged, "{mode}: residual {}", run.residual);
        }
    }

    #[test]
    fn handshake_solver_with_causal_reads_converges() {
        let (cfg, a, b) = small_cfg(Mode::Mixed);
        let run = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).unwrap();
        assert!(run.converged, "residual {}", run.residual);
        let (x_ref, _) = jacobi_reference(&a, &b, cfg.tol, cfg.max_iters);
        assert!(diff_inf(&run.x, &x_ref) < 1e-6);
    }

    #[test]
    fn barrier_beats_handshake_in_virtual_time() {
        // Section 7's qualitative claim (C1). The faithful comparison runs
        // Fig. 2 on PRAM memory (it is PRAM-consistent) and Fig. 3 on
        // causal memory (its reads "cannot be PRAM").
        let mut cfg = SolverConfig::new(12, 4, Mode::Pram);
        cfg.tol = 1e-8;
        let (a, b) = diag_dominant_system(cfg.n, 42);
        let bar = run_barrier_solver(&cfg, &a, &b).unwrap();
        cfg.mode = Mode::Causal;
        let hs = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).unwrap();
        assert!(bar.converged && hs.converged);
        assert!(
            bar.metrics.finish_time < hs.metrics.finish_time,
            "barrier {} vs handshake {}",
            bar.metrics.finish_time,
            hs.metrics.finish_time
        );
        assert!(
            bar.metrics.messages < hs.metrics.messages,
            "barrier {} msgs vs handshake {} msgs",
            bar.metrics.messages,
            hs.metrics.messages
        );
    }

    #[test]
    fn recorded_barrier_history_is_pram_consistent_program() {
        let mut cfg = SolverConfig::new(3, 2, Mode::Pram);
        cfg.record = true;
        cfg.tol = 1e-3;
        cfg.max_iters = 4;
        let (a, b) = diag_dominant_system(3, 5);
        let run = run_barrier_solver(&cfg, &a, &b).unwrap();
        let h = run.history.expect("recorded");
        check::check_pram(&h).unwrap();
        mc_model::programs::check_pram_consistent_program(&h).unwrap();
    }

    #[test]
    fn recorded_handshake_history_is_causal() {
        let mut cfg = SolverConfig::new(3, 2, Mode::Mixed);
        cfg.record = true;
        cfg.tol = 1e-3;
        cfg.max_iters = 3;
        let (a, b) = diag_dominant_system(3, 5);
        let run = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal).unwrap();
        let h = run.history.expect("recorded");
        check::check_mixed(&h).unwrap();
        check::check_causal(&h).unwrap();
    }

    #[test]
    fn async_relaxation_converges_on_pram() {
        // Section 7's claim (C3).
        let (cfg, a, b) = small_cfg(Mode::Pram);
        let run = run_async_relaxation(&cfg, &a, &b, 60).unwrap();
        assert!(run.residual < 1e-6, "residual {}", run.residual);
        assert!(run.converged);
    }

    #[test]
    fn row_ranges_partition() {
        let n = 10;
        let workers = 3;
        let mut seen = vec![false; n];
        for w in 0..workers {
            for i in row_range(n, workers, w) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
