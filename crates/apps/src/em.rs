//! The electromagnetic-field computation of Section 5.2 (**Figure 4**).
//!
//! A 1-D Yee-lattice FDTD solver for Maxwell's curl equations: E-nodes
//! and H-nodes sampled on a staggered grid, updated in alternating phases
//! (E from adjoining H, then H from adjoining E) separated by barriers.
//! Each process owns a block of nodes and reads *ghost* nodes from its
//! neighbours' partitions — on PRAM memory the underlying system provides
//! what Split-C programmers build by hand as "ghost copies" (the paper's
//! closing remark in Section 5.2).
//!
//! The program is PRAM-consistent (each node is written once per phase,
//! read only in later phases), so Corollary 2 applies: the parallel run
//! must equal the sequential reference **bit for bit**, which the tests
//! assert.

use mc_model::History;
use mixed_consistency::{
    Metrics, Mode, ProcId, ReadLabel, RunError, SimTime, System, VarArray, VarSpace,
};

/// FDTD configuration.
#[derive(Clone, Debug)]
pub struct EmConfig {
    /// Number of E-nodes (H-nodes are `cells − 1`).
    pub cells: usize,
    /// Number of leapfrog time steps.
    pub steps: usize,
    /// Number of worker processes.
    pub workers: usize,
    /// Memory protocol.
    pub mode: Mode,
    /// Simulation seed.
    pub seed: u64,
    /// Record a checkable history (keep sizes tiny).
    pub record: bool,
    /// Courant factor (`< 1` for stability).
    pub courant: f64,
    /// Virtual nanoseconds per flop.
    pub flop_ns: u64,
}

impl EmConfig {
    /// A small default configuration.
    pub fn new(cells: usize, steps: usize, workers: usize, mode: Mode) -> Self {
        EmConfig { cells, steps, workers, mode, seed: 1, record: false, courant: 0.5, flop_ns: 2 }
    }
}

/// The result of an FDTD run.
#[derive(Debug)]
pub struct EmRun {
    /// Final E field.
    pub e: Vec<f64>,
    /// Final H field.
    pub h: Vec<f64>,
    /// Simulator metrics.
    pub metrics: Metrics,
    /// Recorded history, if requested.
    pub history: Option<History>,
}

/// The initial E pulse: a Gaussian centred in the domain.
pub fn initial_pulse(cells: usize) -> Vec<f64> {
    let c = cells as f64 / 2.0;
    let w = cells as f64 / 8.0;
    (0..cells)
        .map(|i| {
            let d = (i as f64 - c) / w;
            (-d * d).exp()
        })
        .collect()
}

/// Sequential reference: identical arithmetic, identical update order per
/// node.
pub fn fdtd_reference(cfg: &EmConfig) -> (Vec<f64>, Vec<f64>) {
    let m = cfg.cells;
    let mut e = initial_pulse(m);
    let mut h = vec![0.0f64; m - 1];
    for _ in 0..cfg.steps {
        // E phase: interior nodes only (PEC boundaries).
        let e_old = e.clone();
        for i in 1..(m - 1) {
            e[i] = e_old[i] + cfg.courant * (h[i] - h[i - 1]);
        }
        // H phase.
        let e_now = e.clone();
        for i in 0..(m - 1) {
            h[i] += cfg.courant * (e_now[i + 1] - e_now[i]);
        }
    }
    (e, h)
}

fn block(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(workers);
    (w * per).min(n)..((w + 1) * per).min(n)
}

/// **Figure 4**: the parallel FDTD computation with barriers and PRAM
/// reads.
///
/// # Errors
///
/// Propagates simulation/recording failures.
///
/// # Panics
///
/// Panics if `cells < 3`.
pub fn run_fdtd(cfg: &EmConfig) -> Result<EmRun, RunError> {
    assert!(cfg.cells >= 3, "need at least 3 E-nodes");
    let m = cfg.cells;
    let label = ReadLabel::Pram;

    let mut vars = VarSpace::new();
    let e: VarArray = vars.array(m);
    let h: VarArray = vars.array(m - 1);

    let mut sys = System::new(cfg.workers, cfg.mode).seed(cfg.seed).record(cfg.record);

    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        sys.spawn(move |ctx| {
            // Phase 0: worker 0 installs the initial fields.
            if w == 0 {
                for (i, v) in initial_pulse(m).into_iter().enumerate() {
                    ctx.write(e.at(i), v);
                }
                for i in 0..(m - 1) {
                    ctx.write(h.at(i), 0.0f64);
                }
            }
            ctx.barrier();

            let e_block = block(m, cfg.workers, w);
            let h_block = block(m - 1, cfg.workers, w);
            for _ in 0..cfg.steps {
                // E phase: update every owned interior E-node from the
                // adjoining H-nodes (ghost reads cross partitions).
                let mut new_e = Vec::new();
                for i in e_block.clone() {
                    if i == 0 || i == m - 1 {
                        continue;
                    }
                    let hi = ctx.read(h.at(i), label).expect_f64();
                    let him1 = ctx.read(h.at(i - 1), label).expect_f64();
                    let ei = ctx.read(e.at(i), label).expect_f64();
                    new_e.push((i, ei + cfg.courant * (hi - him1)));
                }
                ctx.compute(SimTime::from_nanos(cfg.flop_ns * 3 * new_e.len() as u64));
                for (i, v) in new_e {
                    ctx.write(e.at(i), v);
                }
                ctx.barrier();

                // H phase: update owned H-nodes from adjoining E-nodes.
                let mut new_h = Vec::new();
                for i in h_block.clone() {
                    let ei1 = ctx.read(e.at(i + 1), label).expect_f64();
                    let ei = ctx.read(e.at(i), label).expect_f64();
                    let hi = ctx.read(h.at(i), label).expect_f64();
                    new_h.push((i, hi + cfg.courant * (ei1 - ei)));
                }
                ctx.compute(SimTime::from_nanos(cfg.flop_ns * 3 * new_h.len() as u64));
                for (i, v) in new_h {
                    ctx.write(h.at(i), v);
                }
                ctx.barrier();
            }
        });
    }

    let outcome = sys.run()?;
    let read_final = |arr: VarArray, len: usize| -> Vec<f64> {
        (0..len)
            .map(|i| outcome.final_value(ProcId(0), arr.at(i)).as_f64().unwrap_or(0.0))
            .collect()
    };
    Ok(EmRun {
        e: read_final(e, m),
        h: read_final(h, m - 1),
        metrics: outcome.metrics,
        history: outcome.history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixed_consistency::check;

    #[test]
    fn pulse_is_centered() {
        let p = initial_pulse(16);
        assert_eq!(p.len(), 16);
        let max_idx = p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 8);
    }

    #[test]
    fn reference_conserves_rough_energy() {
        let cfg = EmConfig::new(32, 20, 1, Mode::Pram);
        let (e, h) = fdtd_reference(&cfg);
        let energy: f64 =
            e.iter().map(|v| v * v).sum::<f64>() + h.iter().map(|v| v * v).sum::<f64>();
        assert!(energy > 0.1, "field did not vanish");
        assert!(energy < 10.0, "field did not blow up");
    }

    #[test]
    fn parallel_matches_reference_bitwise() {
        for workers in [1, 2, 3] {
            let cfg = EmConfig::new(16, 6, workers, Mode::Pram);
            let run = run_fdtd(&cfg).unwrap();
            let (e_ref, h_ref) = fdtd_reference(&cfg);
            assert_eq!(run.e, e_ref, "E field, {workers} workers");
            assert_eq!(run.h, h_ref, "H field, {workers} workers");
        }
    }

    #[test]
    fn all_modes_agree() {
        let reference = fdtd_reference(&EmConfig::new(12, 4, 2, Mode::Pram));
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
            let cfg = EmConfig::new(12, 4, 2, mode);
            let run = run_fdtd(&cfg).unwrap();
            assert_eq!((run.e, run.h), reference.clone(), "{mode}");
        }
    }

    #[test]
    fn recorded_history_is_pram_consistent() {
        let mut cfg = EmConfig::new(6, 2, 2, Mode::Pram);
        cfg.record = true;
        let run = run_fdtd(&cfg).unwrap();
        let h = run.history.expect("recorded");
        check::check_pram(&h).unwrap();
        mc_model::programs::check_pram_consistent_program(&h).unwrap();
    }

    #[test]
    fn virtual_time_grows_with_steps() {
        let short = run_fdtd(&EmConfig::new(12, 2, 2, Mode::Pram)).unwrap();
        let long = run_fdtd(&EmConfig::new(12, 8, 2, Mode::Pram)).unwrap();
        assert!(long.metrics.finish_time > short.metrics.finish_time);
    }
}
