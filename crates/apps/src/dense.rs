//! Dense linear-algebra substrate: matrices, generators and the
//! *sequential reference implementations* the DSM applications are
//! verified against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `n × n` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mc_apps::dense::DenseMatrix;
/// let mut a = DenseMatrix::zeros(2);
/// a.set(0, 0, 2.0);
/// a.set(1, 1, 3.0);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![2.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix { n, data: vec![0.0; n * n] }
    }

    /// The dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = v;
    }

    /// `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n).map(|i| (0..self.n).map(|j| self.get(i, j) * x[j]).sum()).collect()
    }

    /// `A · Aᵀ` (used to build SPD matrices and verify factorizations).
    pub fn mul_transpose(&self) -> DenseMatrix {
        let n = self.n;
        let mut out = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.get(i, k) * self.get(j, k);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

/// Generates a strictly diagonally dominant system `(A, b)` — guaranteed
/// Jacobi/Gauss–Seidel convergence — with entries drawn from the seeded
/// RNG.
pub fn diag_dominant_system(n: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.gen_range(-1.0..1.0);
                a.set(i, j, v);
                row_sum += v.abs();
            }
        }
        // Strict dominance with margin.
        a.set(i, i, row_sum + rng.gen_range(1.0..2.0));
    }
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    (a, b)
}

/// The residual `‖A·x − b‖∞`.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn residual_inf(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
    a.matvec(x).iter().zip(b).map(|(ax, bi)| (ax - bi).abs()).fold(0.0, f64::max)
}

/// `‖x − y‖∞`.
pub fn diff_inf(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

/// Sequential Jacobi iteration (the reference for the Fig. 2/3 solvers):
/// returns `(x, iterations)`. Stops when consecutive iterates differ by
/// less than `tol` in the ∞-norm or after `max_iters`.
pub fn jacobi_reference(
    a: &DenseMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = a.n();
    let mut x = vec![0.0; n];
    for iter in 1..=max_iters {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let sigma: f64 = (0..n).map(|j| a.get(i, j) * x[j]).sum();
            next[i] = x[i] + (b[i] - sigma) / a.get(i, i);
        }
        let delta = diff_inf(&next, &x);
        x = next;
        if delta < tol {
            return (x, iter);
        }
    }
    (x, max_iters)
}

/// Sequential Gauss–Seidel iteration (the asynchronous-relaxation
/// reference of Section 7): returns `(x, iterations)`.
pub fn gauss_seidel_reference(
    a: &DenseMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = a.n();
    let mut x = vec![0.0; n];
    for iter in 1..=max_iters {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let sigma: f64 = (0..n).map(|j| a.get(i, j) * x[j]).sum();
            let next = x[i] + (b[i] - sigma) / a.get(i, i);
            delta = delta.max((next - x[i]).abs());
            x[i] = next;
        }
        if delta < tol {
            return (x, iter);
        }
    }
    (x, max_iters)
}

/// Sequential dense Cholesky `A = L·Lᵀ` (reference for Fig. 5): returns
/// the lower-triangular factor, or `None` if `A` is not positive
/// definite.
pub fn dense_cholesky(a: &DenseMatrix) -> Option<DenseMatrix> {
    let n = a.n();
    let mut l = DenseMatrix::zeros(n);
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            d -= l.get(j, k) * l.get(j, k);
        }
        if d <= 0.0 {
            return None;
        }
        let d = d.sqrt();
        l.set(j, j, d);
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / d);
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut a = DenseMatrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), x);
        assert_eq!(a.n(), 3);
    }

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let (a, b) = diag_dominant_system(12, 42);
        let (x, iters) = jacobi_reference(&a, &b, 1e-10, 1000);
        assert!(iters < 1000, "converged in {iters}");
        assert!(residual_inf(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b) = diag_dominant_system(16, 7);
        let (_, ij) = jacobi_reference(&a, &b, 1e-10, 10_000);
        let (xg, ig) = gauss_seidel_reference(&a, &b, 1e-10, 10_000);
        assert!(ig <= ij, "GS ({ig}) should not need more sweeps than Jacobi ({ij})");
        assert!(residual_inf(&a, &xg, &b) < 1e-8);
    }

    #[test]
    fn cholesky_roundtrip() {
        // Build an SPD matrix as B·Bᵀ + I.
        let mut b = DenseMatrix::zeros(5);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..5 {
            for j in 0..5 {
                b.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let mut a = b.mul_transpose();
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 5.0);
        }
        let l = dense_cholesky(&a).expect("SPD");
        let rebuilt = l.mul_transpose();
        assert!(a.max_abs_diff(&rebuilt) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        assert!(dense_cholesky(&a).is_none());
    }

    #[test]
    fn generators_are_deterministic() {
        let (a1, b1) = diag_dominant_system(6, 9);
        let (a2, b2) = diag_dominant_system(6, 9);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = diag_dominant_system(6, 10);
        assert_ne!(a1, a3);
    }

    #[test]
    fn diff_and_residual_norms() {
        assert_eq!(diff_inf(&[1.0, 2.0], &[1.0, 4.5]), 2.5);
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        assert_eq!(residual_inf(&a, &[1.0, 1.0], &[0.0, 3.0]), 2.0);
    }

    #[test]
    fn dominance_margin_holds() {
        let (a, _) = diag_dominant_system(10, 1);
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) > off, "row {i} dominated");
        }
    }
}
