//! # mc-apps — the paper's applications on mixed-consistency DSM
//!
//! The three Section 5 application families of *Agrawal, Choy, Leong,
//! Singh, PODC '94*, each with its sequential reference implementation
//! and its DSM parallelization:
//!
//! * [`solver`] — iterative linear-equation solving (Figures 2 and 3) and
//!   the asynchronous relaxation of Section 7;
//! * [`em`] — the electromagnetic-field (FDTD) computation (Figure 4);
//! * [`cholesky`] — sparse Cholesky factorization (Figure 5), lock-based
//!   and counter-object variants;
//!
//! plus the numeric substrates they need:
//!
//! * [`dense`] — dense matrices, diagonally dominant generators, Jacobi /
//!   Gauss–Seidel / Cholesky references;
//! * [`sparse`] — sparse SPD matrices (grid Laplacians, random), symbolic
//!   factorization (fill, elimination tree, dependency counts) and the
//!   sequential sparse Cholesky reference.

#![warn(missing_docs)]

pub mod cholesky;
pub mod dense;
pub mod em;
pub mod em2d;
pub mod solver;
pub mod sparse;
