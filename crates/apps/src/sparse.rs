//! Sparse symmetric-positive-definite substrate for the Cholesky
//! application (Section 5.3 of the paper): matrix generators, symbolic
//! factorization (fill pattern, elimination tree, column dependency
//! counts) and a sequential numeric reference.
//!
//! The paper's parallel algorithm (Fig. 5) needs exactly the structures
//! built here: a dependency `count[j]` per column (how many earlier
//! columns update it) and, per column `j`, the set of later columns it
//! updates — both derived from the *filled* pattern of `L`, which the
//! symbolic pass computes (George & Liu \[12\], Rothberg \[27\]).
//!
//! Values are stored densely (the simulated DSM addresses entries as
//! individual shared variables anyway); the *pattern* is what drives
//! parallelism, fill and dependency counts, matching the paper's usage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::DenseMatrix;

/// A sparse SPD matrix: dense value storage plus an explicit
/// lower-triangular nonzero pattern.
#[derive(Clone, Debug)]
pub struct SpdMatrix {
    values: DenseMatrix,
    /// `pattern[i*n + j]` for `i >= j`: structural nonzero of the lower
    /// triangle (diagonal always set).
    pattern: Vec<bool>,
}

impl SpdMatrix {
    /// Builds from explicit values; the pattern is inferred from nonzero
    /// entries of the lower triangle.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not symmetric.
    pub fn from_dense(values: DenseMatrix) -> Self {
        let n = values.n();
        for i in 0..n {
            for j in 0..i {
                assert!(
                    (values.get(i, j) - values.get(j, i)).abs() < 1e-12,
                    "matrix must be symmetric"
                );
            }
        }
        let mut pattern = vec![false; n * n];
        for i in 0..n {
            for j in 0..=i {
                pattern[i * n + j] = i == j || values.get(i, j) != 0.0;
            }
        }
        SpdMatrix { values, pattern }
    }

    /// The dimension.
    pub fn n(&self) -> usize {
        self.values.n()
    }

    /// Entry `(i, j)` (full symmetric view).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values.get(i, j)
    }

    /// Structural nonzero of the lower triangle (`i >= j`).
    ///
    /// # Panics
    ///
    /// Panics if `i < j`.
    pub fn lower_nonzero(&self, i: usize, j: usize) -> bool {
        assert!(i >= j, "lower triangle only");
        self.pattern[i * self.n() + j]
    }

    /// The dense value matrix.
    pub fn dense(&self) -> &DenseMatrix {
        &self.values
    }

    /// Number of structural nonzeros in the lower triangle.
    pub fn lower_nnz(&self) -> usize {
        self.pattern.iter().filter(|&&b| b).count()
    }
}

/// The 5-point-stencil Laplacian of a `k × k` grid (`n = k²`) with a
/// slightly boosted diagonal: the canonical sparse SPD test matrix, with
/// the non-uniform elimination structure the paper's Cholesky section is
/// about.
pub fn grid_laplacian(k: usize) -> SpdMatrix {
    let n = k * k;
    let mut a = DenseMatrix::zeros(n);
    let idx = |r: usize, c: usize| r * k + c;
    for r in 0..k {
        for c in 0..k {
            let i = idx(r, c);
            a.set(i, i, 4.1);
            let mut link = |j: usize| {
                a.set(i, j, -1.0);
                a.set(j, i, -1.0);
            };
            if r + 1 < k {
                link(idx(r + 1, c));
            }
            if c + 1 < k {
                link(idx(r, c + 1));
            }
        }
    }
    SpdMatrix::from_dense(a)
}

/// A random sparse SPD matrix: a chordal-ish random lower pattern with
/// `extra` off-diagonal entries, made positive definite by diagonal
/// dominance.
pub fn random_sparse_spd(n: usize, extra: usize, seed: u64) -> SpdMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n);
    for _ in 0..extra {
        let i = rng.gen_range(1..n);
        let j = rng.gen_range(0..i);
        let v = rng.gen_range(-1.0..1.0f64).mul_add(0.5, 0.75); // in (0.25, 1.25)
        a.set(i, j, -v);
        a.set(j, i, -v);
    }
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
        a.set(i, i, off + rng.gen_range(0.5..1.5));
    }
    SpdMatrix::from_dense(a)
}

/// The output of symbolic factorization: the filled pattern of `L`, the
/// elimination tree, and the column dependency structure of Fig. 5.
#[derive(Clone, Debug)]
pub struct Symbolic {
    n: usize,
    /// Filled lower-triangular pattern of `L` (`filled[i*n + j]`, `i>=j`).
    filled: Vec<bool>,
    /// Elimination tree: `parent[j]` = first below-diagonal nonzero row of
    /// column `j` of `L`.
    pub parent: Vec<Option<usize>>,
    /// `count[j]` = number of columns `k < j` that update column `j`
    /// (the initialization of Fig. 5's `count` array).
    pub dep_counts: Vec<usize>,
}

impl Symbolic {
    /// The dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural nonzero of `L` (after fill), `i >= j`.
    ///
    /// # Panics
    ///
    /// Panics if `i < j`.
    pub fn l_nonzero(&self, i: usize, j: usize) -> bool {
        assert!(i >= j, "lower triangle only");
        self.filled[i * self.n + j]
    }

    /// The columns `k > j` that column `j` updates (Fig. 5 line 4's
    /// iteration set): rows of below-diagonal nonzeros of column `j`.
    pub fn updates_of(&self, j: usize) -> Vec<usize> {
        ((j + 1)..self.n).filter(|&k| self.l_nonzero(k, j)).collect()
    }

    /// The row set `{i >= k : L[i][j] != 0}` used when column `j` updates
    /// column `k` (Fig. 5 line 6's iteration set).
    pub fn update_rows(&self, j: usize, k: usize) -> Vec<usize> {
        (k..self.n).filter(|&i| self.l_nonzero(i, j)).collect()
    }

    /// Total structural nonzeros of `L` (a fill measure).
    pub fn l_nnz(&self) -> usize {
        self.filled.iter().filter(|&&b| b).count()
    }
}

/// Computes the fill pattern of `L`, the elimination tree and the
/// dependency counts for `a`.
///
/// Right-looking symbolic elimination: when column `k` is eliminated,
/// every pair of below-diagonal nonzeros `(i, j)` of column `k` with
/// `i >= j > k` induces a (possibly fill) nonzero `L[i][j]`.
pub fn symbolic_factorize(a: &SpdMatrix) -> Symbolic {
    let n = a.n();
    let mut filled = vec![false; n * n];
    for i in 0..n {
        for j in 0..=i {
            filled[i * n + j] = a.lower_nonzero(i, j);
        }
    }
    for k in 0..n {
        let col: Vec<usize> = ((k + 1)..n).filter(|&i| filled[i * n + k]).collect();
        for (a_idx, &j) in col.iter().enumerate() {
            for &i in &col[a_idx..] {
                filled[i * n + j] = true;
            }
        }
    }
    let parent: Vec<Option<usize>> =
        (0..n).map(|j| ((j + 1)..n).find(|&i| filled[i * n + j])).collect();
    let dep_counts: Vec<usize> =
        (0..n).map(|j| (0..j).filter(|&k| filled[j * n + k]).count()).collect();
    Symbolic { n, filled, parent, dep_counts }
}

/// Sequential right-looking sparse Cholesky — the *exact* serial
/// counterpart of Fig. 5 (same operation order per entry). Returns the
/// lower factor.
///
/// # Panics
///
/// Panics if the matrix is not positive definite.
pub fn sparse_cholesky_reference(a: &SpdMatrix, sym: &Symbolic) -> DenseMatrix {
    let n = a.n();
    let mut l = DenseMatrix::zeros(n);
    for i in 0..n {
        for j in 0..=i {
            l.set(i, j, a.get(i, j));
        }
    }
    for j in 0..n {
        let d = l.get(j, j);
        assert!(d > 0.0, "matrix not positive definite at column {j}");
        let d = d.sqrt();
        l.set(j, j, d);
        for i in (j + 1)..n {
            if sym.l_nonzero(i, j) {
                l.set(i, j, l.get(i, j) / d);
            }
        }
        for k in sym.updates_of(j) {
            let lkj = l.get(k, j);
            for i in sym.update_rows(j, k) {
                l.set(i, k, l.get(i, k) - l.get(i, j) * lkj);
            }
        }
    }
    l
}

/// `‖L·Lᵀ − A‖_max` — the factorization residual.
pub fn factorization_residual(a: &SpdMatrix, l: &DenseMatrix) -> f64 {
    l.mul_transpose().max_abs_diff(a.dense())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::dense_cholesky;

    #[test]
    fn grid_laplacian_shape() {
        let a = grid_laplacian(3);
        assert_eq!(a.n(), 9);
        assert_eq!(a.get(0, 0), 4.1);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert!(a.lower_nonzero(1, 0));
        assert!(!a.lower_nonzero(2, 0));
        assert!(a.lower_nonzero(4, 4));
    }

    #[test]
    fn symbolic_fill_is_superset_of_a() {
        let a = grid_laplacian(4);
        let sym = symbolic_factorize(&a);
        for i in 0..a.n() {
            for j in 0..=i {
                if a.lower_nonzero(i, j) {
                    assert!(sym.l_nonzero(i, j));
                }
            }
        }
        assert!(sym.l_nnz() > a.lower_nnz(), "grid laplacians fill in");
    }

    #[test]
    fn symbolic_pattern_covers_numeric_factor() {
        let a = grid_laplacian(4);
        let sym = symbolic_factorize(&a);
        let l = dense_cholesky(a.dense()).expect("SPD");
        for i in 0..a.n() {
            for j in 0..=i {
                if l.get(i, j).abs() > 1e-14 {
                    assert!(sym.l_nonzero(i, j), "numeric nonzero at ({i},{j}) missed");
                }
            }
        }
    }

    #[test]
    fn etree_parents_increase() {
        let a = grid_laplacian(3);
        let sym = symbolic_factorize(&a);
        for (j, p) in sym.parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(*p > j);
            }
        }
        // Last column is the root.
        assert_eq!(sym.parent[a.n() - 1], None);
    }

    #[test]
    fn dep_counts_match_pattern() {
        let a = random_sparse_spd(12, 14, 5);
        let sym = symbolic_factorize(&a);
        assert_eq!(sym.dep_counts[0], 0, "first column depends on nothing");
        for j in 0..a.n() {
            let deps = (0..j).filter(|&k| sym.l_nonzero(j, k)).count();
            assert_eq!(sym.dep_counts[j], deps);
        }
        // Cross-check: j appears in updates_of(k) iff k is a dependency.
        for k in 0..a.n() {
            for j in sym.updates_of(k) {
                assert!(sym.l_nonzero(j, k));
            }
        }
    }

    #[test]
    fn sparse_reference_matches_dense() {
        for (name, a) in [("grid", grid_laplacian(4)), ("random", random_sparse_spd(15, 20, 11))] {
            let sym = symbolic_factorize(&a);
            let l_sparse = sparse_cholesky_reference(&a, &sym);
            let l_dense = dense_cholesky(a.dense()).expect("SPD");
            assert!(l_sparse.max_abs_diff(&l_dense) < 1e-9, "{name}: sparse vs dense mismatch");
            assert!(factorization_residual(&a, &l_sparse) < 1e-9, "{name}");
        }
    }

    #[test]
    fn random_spd_is_positive_definite() {
        for seed in 0..5 {
            let a = random_sparse_spd(10, 12, seed);
            assert!(dense_cholesky(a.dense()).is_some(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        let _ = SpdMatrix::from_dense(m);
    }

    #[test]
    fn update_rows_subset() {
        let a = grid_laplacian(3);
        let sym = symbolic_factorize(&a);
        for j in 0..a.n() {
            for k in sym.updates_of(j) {
                let rows = sym.update_rows(j, k);
                assert!(rows.contains(&k), "diagonal target row present");
                for i in rows {
                    assert!(i >= k && sym.l_nonzero(i, j));
                }
            }
        }
    }
}
