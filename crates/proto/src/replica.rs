//! Per-process replica state for the replicated memory modes.
//!
//! Section 6 of the paper: "The memory is maintained as a set of pages and
//! each process keeps a local copy of the memory. Read operations are
//! non-blocking and return local values. ... Each process maintains a
//! vector timestamp in order to define the causality between operations."
//!
//! A [`Replica`] holds one process's copy of every location, its applied
//! vector, the causal-application buffer, and the synchronization gates:
//!
//! * `must_see` — merged knowledge from lock grants and barrier releases;
//!   **causal reads** block until `applied ≥ must_see`;
//! * `pram_wait` — per-predecessor write counts from the same events;
//!   **PRAM reads** block until `applied ≥ pram_wait` (only components of
//!   direct synchronization predecessors are ever raised);
//! * `invalid` — demand-driven per-location requirements installed by lock
//!   grants; reads of exactly those locations block.

use std::collections::HashMap;
use std::sync::Arc;

use mc_model::{Loc, ProcId, VClock, Value, WriteId};

use crate::config::{DsmConfig, Mode};
use crate::durability::{OwnUpdate, SnapBatch, SnapPending, Snapshot, WalRecord};
use crate::msg::{BatchEntry, UpdatePayload};

/// A pending (causally not yet ready) remote update.
#[derive(Clone, Debug)]
pub struct PendingUpdate {
    /// Identity of the write.
    pub writer: WriteId,
    /// Location.
    pub loc: Loc,
    /// Overwrite or increment.
    pub payload: UpdatePayload,
    /// The writer's vector timestamp.
    pub deps: VClock,
}

/// A pending (causally not yet ready) remote update batch, applied
/// atomically once its first member is next in the sender's sequence
/// and the last member's cross-process dependencies are met.
#[derive(Clone, Debug)]
struct PendingBatch {
    proc: ProcId,
    first_seq: u32,
    upto: u32,
    entries: Arc<[BatchEntry]>,
    /// Dependency vector of the *last* member write. Deps are monotone
    /// in batch order (same sender, program order), so the last
    /// member's vector covers every member's cross-process needs.
    deps: VClock,
}

/// One own write in a shard's chain, retained (in sharded mode) for
/// subscription backfill and sharded recovery deltas.
#[derive(Clone, Debug)]
pub struct ShardOwnUpdate {
    /// The write's global per-process sequence number.
    pub seq: u32,
    /// Location (determines the shard).
    pub loc: Loc,
    /// Overwrite or increment.
    pub payload: UpdatePayload,
    /// Sparse cross-shard dependency triples attached at write time.
    pub deps: Vec<(u32, ProcId, u32)>,
}

/// A buffered sharded update or chain that is not yet ready.
#[derive(Clone, Debug)]
enum PendingShard {
    Single {
        writer: WriteId,
        loc: Loc,
        payload: UpdatePayload,
        prev: u32,
        deps: Vec<(u32, ProcId, u32)>,
    },
    Chain {
        proc: ProcId,
        shard: u32,
        prev: u32,
        upto: u32,
        entries: Arc<[BatchEntry]>,
        /// Leading members already applied before buffering (recovery
        /// and backfill overlap) — skipped without copying the shared
        /// entry buffer.
        skip: usize,
        deps: Vec<(u32, ProcId, u32)>,
    },
}

/// A suffix of one process's per-shard write chain: `(prev, upto,
/// one-entry-per-write, dependency triples of the last member)`.
pub type ShardChain = (u32, u32, Vec<BatchEntry>, Vec<(u32, ProcId, u32)>);

/// One own write re-shipped for a recovery delta or a subscription
/// backfill: `(writer, loc, payload, chain link, dependency triples)` —
/// the fields of a [`ShardUpdate`](crate::Msg::ShardUpdate).
pub type ShardPush = (WriteId, Loc, UpdatePayload, u32, Vec<(u32, ProcId, u32)>);

/// Per-shard replication state. The address space is partitioned by
/// `loc.index() % nshards`; a replica receives only the shards it
/// subscribes to, and clocks are kept per shard so knowledge width is
/// proportional to the replica's interest set, not the cluster.
///
/// Sequence numbers stay *global* per process (the same counter that
/// mints [`WriteId`]s), so a write's identity is mode-independent; each
/// shard's per-writer FIFO is a chain of global sequence numbers linked
/// by `prev` (the writer's previous own seq in that shard). Cross-shard
/// causality travels as sparse `(shard, proc, seq)` triples; a receiver
/// checks only triples for shards it subscribes to — any process that
/// can *observe* both sides of a causal edge necessarily subscribes to
/// both shards, so observable causality is preserved.
#[derive(Clone, Debug)]
pub struct ShardState {
    nshards: usize,
    /// `applied[s][q]` = global sequence number of `q`'s last write
    /// applied locally in shard `s` (own writes included).
    applied: Vec<VClock>,
    /// `own_prev[s]` = this process's last own global seq in shard `s`.
    own_prev: Vec<u32>,
    /// Own write chains per shard (subscription backfill + recovery).
    own_log: Vec<Vec<ShardOwnUpdate>>,
    /// Shards this replica is currently subscribed to (sorted).
    subs: Vec<usize>,
    /// Buffered not-yet-ready sharded updates and chains.
    pending: Vec<PendingShard>,
}

impl ShardState {
    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The shard of `loc`.
    pub fn shard_of(&self, loc: Loc) -> usize {
        loc.index() % self.nshards
    }

    /// Whether this replica currently subscribes to `shard`.
    pub fn subscribed(&self, shard: usize) -> bool {
        self.subs.binary_search(&shard).is_ok()
    }

    /// The current subscription set (sorted).
    pub fn subs(&self) -> &[usize] {
        &self.subs
    }

    /// The per-shard applied clock (global seqs).
    pub fn applied(&self, shard: usize) -> &VClock {
        &self.applied[shard]
    }

    /// Number of buffered (not yet ready) sharded updates and chains.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Summary of everything applied in the *subscribed* shards, as
    /// `(shard, proc, seq)` triples — the payload of a sharded recovery
    /// request. Zero entries are kept: the shard ids present double as
    /// the subscription set, so a peer answering the request learns
    /// which shards the reborn replica needs without a separate
    /// membership exchange.
    pub fn applied_summary(&self) -> Vec<(u32, ProcId, u32)> {
        let mut out = Vec::new();
        for &s in &self.subs {
            for (q, c) in self.applied[s].iter() {
                out.push((s as u32, q, c));
            }
        }
        out
    }
}

/// One process's local copy of the shared memory plus its consistency
/// gates.
#[derive(Debug)]
pub struct Replica {
    /// The owning process.
    pub proc: ProcId,
    nprocs: usize,
    store: Vec<Value>,
    last_writer: Vec<Option<WriteId>>,
    /// `applied[j]` = number of `p_j`'s updates applied locally
    /// (`applied[self]` counts own writes).
    pub applied: VClock,
    /// Causal-application buffer (causal/mixed modes).
    pending: Vec<PendingUpdate>,
    /// Causal-application buffer for whole batches.
    pending_batches: Vec<PendingBatch>,
    /// Causal-read gate.
    pub must_see: VClock,
    /// PRAM-read gate.
    pub pram_wait: VClock,
    /// Demand-driven per-location gates: read of `loc` waits until
    /// `applied[p] >= seq`.
    pub invalid: HashMap<Loc, (ProcId, u32)>,
    /// Updates applied per counter location (locations that ever received
    /// an `Add`), for await synchronization sources.
    counter_updates: HashMap<Loc, Vec<WriteId>>,
    /// Demand-driven bookkeeping: every own write (loc, seq) in order.
    pub write_log: Vec<(Loc, u32)>,
    /// Per-lock watermark into `write_log` (entries before it were already
    /// shipped on an earlier release of that lock).
    pub lock_watermarks: HashMap<mc_model::LockId, usize>,
    /// Full own-write history with dependency vectors, retained only
    /// when the configuration enables durability: it is what lets this
    /// replica answer a reborn peer with exactly the suffix it misses,
    /// even past log compaction.
    own_updates: Vec<OwnUpdate>,
    /// Replica incarnation: bumped (and persisted) on every
    /// crash-recover so stale session state is recognizably stale.
    pub incarnation: u32,
    /// Last-writer-wins application for plain writes: set when this
    /// process's lattice point demands per-location coherence. All
    /// coherent replicas then install `Set`s in one total tag order, so
    /// every observer agrees on the write order per location.
    coherent: bool,
    /// The tag of the currently installed write per location (coherent
    /// replicas only): `(causal sum of deps, writer, seq)`, compared
    /// lexicographically — a total order consistent with causality and
    /// every writer's program order.
    coh_tags: HashMap<Loc, (u64, u32, u32)>,
    /// Sharded interest-based mode, when enabled.
    shards: Option<ShardState>,
}

impl Replica {
    /// Creates the replica of process `proc` in a system of `nprocs`.
    pub fn new(proc: ProcId, nprocs: usize) -> Self {
        Replica {
            proc,
            nprocs,
            store: Vec::new(),
            last_writer: Vec::new(),
            applied: VClock::new(nprocs),
            pending: Vec::new(),
            pending_batches: Vec::new(),
            must_see: VClock::new(nprocs),
            pram_wait: VClock::new(nprocs),
            invalid: HashMap::new(),
            counter_updates: HashMap::new(),
            write_log: Vec::new(),
            lock_watermarks: HashMap::new(),
            own_updates: Vec::new(),
            incarnation: 0,
            coherent: false,
            coh_tags: HashMap::new(),
            shards: None,
        }
    }

    /// Switches this replica into sharded interest-based mode with
    /// `nshards` shards, initially subscribed to `subs`.
    pub fn with_sharding(mut self, nshards: usize, mut subs: Vec<usize>) -> Self {
        subs.sort_unstable();
        subs.dedup();
        self.shards = Some(ShardState {
            nshards,
            applied: vec![VClock::new(self.nprocs); nshards],
            own_prev: vec![0; nshards],
            own_log: vec![Vec::new(); nshards],
            subs,
            pending: Vec::new(),
        });
        self
    }

    /// Enables last-writer-wins coherent application (see
    /// [`mc_model::ModelSpec::PROCESSOR`]): `Set`s with a tag older than
    /// the installed one are dropped instead of regressing the store.
    /// Requires a vector-carrying mode — tags are built from dependency
    /// vectors.
    pub fn with_coherent(mut self, coherent: bool) -> Self {
        self.coherent = coherent;
        self
    }

    /// Pre-sizes the store to `locations`, so the hot read path never
    /// pays a growth check — reads against a pre-sized store are plain
    /// bounds-checked indexing with no mutation. Writes beyond the hint
    /// still grow the store on demand.
    pub fn with_store_capacity(mut self, locations: usize) -> Self {
        if locations > self.store.len() {
            self.store.resize(locations, Value::INITIAL);
            self.last_writer.resize(locations, None);
        }
        self
    }

    fn ensure_loc(&mut self, loc: Loc) {
        if loc.index() >= self.store.len() {
            self.store.resize(loc.index() + 1, Value::INITIAL);
            self.last_writer.resize(loc.index() + 1, None);
        }
    }

    /// The current local value of `loc`. Never-written locations (in
    /// particular anything beyond the pre-sized store) read as
    /// [`Value::INITIAL`].
    pub fn value(&self, loc: Loc) -> Value {
        self.store.get(loc.index()).copied().unwrap_or(Value::INITIAL)
    }

    /// The current local value of `loc` (alias of [`Replica::value`],
    /// kept for inspection of a finished run).
    pub fn peek(&self, loc: Loc) -> Value {
        self.value(loc)
    }

    /// The write that produced the current local value (None = initial).
    pub fn writer_of(&self, loc: Loc) -> Option<WriteId> {
        self.last_writer.get(loc.index()).copied().flatten()
    }

    /// The synchronization sources an await observing `loc` records: all
    /// applied updates for counter locations, the last writer otherwise.
    pub fn await_writers(&self, loc: Loc) -> Vec<WriteId> {
        if let Some(ups) = self.counter_updates.get(&loc) {
            return ups.clone();
        }
        self.writer_of(loc).into_iter().collect()
    }

    /// This process's own-write count.
    pub fn own_count(&self) -> u32 {
        self.applied[self.proc]
    }

    /// The process's knowledge vector: everything applied locally plus
    /// everything it has been told to see. Tags outgoing writes and
    /// releases.
    pub fn knowledge(&self) -> VClock {
        let mut k = self.applied.clone();
        k.merge(&self.must_see);
        k
    }

    /// Performs a local write or update and returns the minted
    /// [`WriteId`] plus the dependency vector to attach in vector modes.
    pub fn local_write(
        &mut self,
        loc: Loc,
        payload: UpdatePayload,
        cfg: &DsmConfig,
    ) -> (WriteId, Option<VClock>) {
        let deps = if cfg.mode.carries_vectors() {
            let mut k = self.knowledge();
            k.tick(self.proc);
            Some(k)
        } else {
            None
        };
        self.applied.tick(self.proc);
        let id = WriteId::new(self.proc, self.own_count());
        self.apply_to_store(id, loc, &payload, deps.as_ref());
        self.write_log.push((loc, id.seq));
        if cfg.durability.is_some() {
            self.own_updates.push(OwnUpdate { seq: id.seq, loc, payload, deps: deps.clone() });
        }
        (id, deps)
    }

    fn apply_to_store(
        &mut self,
        writer: WriteId,
        loc: Loc,
        payload: &UpdatePayload,
        deps: Option<&VClock>,
    ) {
        self.ensure_loc(loc);
        match payload {
            UpdatePayload::Set(v) => {
                if self.admit_set(loc, writer, deps) {
                    self.store[loc.index()] = *v;
                    self.last_writer[loc.index()] = Some(writer);
                }
            }
            UpdatePayload::Add(d) => {
                let cur = self.store[loc.index()];
                self.store[loc.index()] = cur.checked_add(*d).unwrap_or_else(|| {
                    panic!("update delta kind mismatch at {loc} ({cur:?} += {d:?})")
                });
                self.counter_updates.entry(loc).or_default().push(writer);
                self.last_writer[loc.index()] = Some(writer);
            }
        }
    }

    /// Last-writer-wins admission: on a coherent replica a `Set` is
    /// installed only when its tag beats the installed one. Commutative
    /// `Add`s and non-coherent replicas always admit. Own writes always
    /// win locally: their dependency vector covers everything applied,
    /// so their tag is strictly larger than any installed one.
    fn admit_set(&mut self, loc: Loc, writer: WriteId, deps: Option<&VClock>) -> bool {
        if !self.coherent {
            return true;
        }
        let deps = deps.expect("coherent replicas run a vector-carrying mode");
        self.admit_tag(loc, (deps.sum(), writer.proc.0, writer.seq))
    }

    /// Lexicographic last-writer-wins admission on a precomputed tag.
    fn admit_tag(&mut self, loc: Loc, tag: (u64, u32, u32)) -> bool {
        match self.coh_tags.get(&loc) {
            Some(cur) if tag < *cur => false,
            _ => {
                self.coh_tags.insert(loc, tag);
                true
            }
        }
    }

    /// Ingests a remote update. In PRAM mode it applies immediately; in
    /// causal/mixed mode it applies only when causally ready, buffering
    /// otherwise (and draining the buffer to a fixpoint). Returns `true`
    /// if at least one update was applied.
    pub fn ingest(
        &mut self,
        writer: WriteId,
        loc: Loc,
        payload: UpdatePayload,
        deps: Option<VClock>,
        mode: Mode,
    ) -> bool {
        if !mode.carries_vectors() {
            // PRAM: apply on receipt. FIFO links deliver per-sender
            // in-order; with fault injection they may not, and the
            // resulting store regressions are exactly what the checkers
            // must detect.
            let seen = self.applied.get(writer.proc).max(writer.seq);
            self.applied.set(writer.proc, seen);
            self.apply_to_store(writer, loc, &payload, None);
            return true;
        }
        let deps = deps.expect("vector modes attach deps");
        self.pending.push(PendingUpdate { writer, loc, payload, deps });
        self.drain_pending()
    }

    /// Ingests a remote update batch covering the sender's own writes
    /// `first_seq..=upto`. In PRAM mode the batch applies on receipt; in
    /// causal/mixed mode it applies atomically once the sender sequence
    /// is contiguous and the last member's cross-process dependencies
    /// are met, buffering otherwise. Atomic application over a FIFO
    /// link is indistinguishable from the member updates delivered back
    /// to back, which is why batching preserves Definitions 2–4.
    /// Returns `true` if anything was applied.
    pub fn ingest_batch(
        &mut self,
        proc: ProcId,
        first_seq: u32,
        upto: u32,
        entries: Arc<[BatchEntry]>,
        deps: Option<VClock>,
        mode: Mode,
    ) -> bool {
        if !mode.carries_vectors() {
            let seen = self.applied.get(proc).max(upto);
            for e in entries.iter() {
                self.apply_batch_entry(proc, e, None);
            }
            self.applied.set(proc, seen);
            return true;
        }
        let deps = deps.expect("vector modes attach deps");
        self.pending_batches.push(PendingBatch { proc, first_seq, upto, entries, deps });
        self.drain_pending()
    }

    /// Applies every causally ready buffered update or batch (each can
    /// unblock the other); returns `true` if any applied.
    fn drain_pending(&mut self) -> bool {
        // Prune ghosts first: a buffered update or batch fully covered
        // by the applied watermark (recovery re-delivered it) can never
        // become ready and would otherwise sit buffered forever.
        self.pending.retain(|u| u.writer.seq > self.applied[u.writer.proc]);
        self.pending_batches.retain(|b| b.upto > self.applied[b.proc]);
        let mut any = false;
        loop {
            if let Some(idx) = self.pending.iter().position(|u| self.causally_ready(u)) {
                let u = self.pending.swap_remove(idx);
                self.applied.tick(u.writer.proc);
                debug_assert_eq!(self.applied[u.writer.proc], u.writer.seq);
                self.apply_to_store(u.writer, u.loc, &u.payload, Some(&u.deps));
                any = true;
                continue;
            }
            if let Some(idx) = self.pending_batches.iter().position(|b| self.batch_ready(b)) {
                let b = self.pending_batches.swap_remove(idx);
                for e in b.entries.iter() {
                    // The batch vector covers every member's deps, and
                    // anyone who observed a member applied the whole
                    // batch first — so tagging each entry with the batch
                    // vector keeps the tag order consistent with
                    // causality. An already-applied prefix (recovery
                    // overlapping an in-flight pre-crash copy) is a set
                    // of ghosts — skip, apply only the genuine suffix.
                    if e.writer.seq > self.applied[b.proc] {
                        self.apply_batch_entry(b.proc, e, Some(&b.deps));
                    }
                }
                self.applied.set(b.proc, b.upto);
                any = true;
                continue;
            }
            return any;
        }
    }

    /// Applies one coalesced batch entry: `Set` installs the surviving
    /// value, `Add` applies the summed delta and credits every member
    /// write identity to the counter.
    fn apply_batch_entry(&mut self, proc: ProcId, e: &BatchEntry, deps: Option<&VClock>) {
        self.ensure_loc(e.loc);
        match &e.payload {
            UpdatePayload::Set(v) => {
                if self.admit_set(e.loc, e.writer, deps) {
                    self.store[e.loc.index()] = *v;
                    self.last_writer[e.loc.index()] = Some(e.writer);
                }
            }
            UpdatePayload::Add(d) => {
                let cur = self.store[e.loc.index()];
                self.store[e.loc.index()] = cur.checked_add(*d).unwrap_or_else(|| {
                    panic!("update delta kind mismatch at {} ({cur:?} += {d:?})", e.loc)
                });
                let ups = self.counter_updates.entry(e.loc).or_default();
                ups.extend(e.adds.iter().map(|&s| WriteId::new(proc, s)));
                self.last_writer[e.loc.index()] = Some(e.writer);
            }
        }
    }

    fn causally_ready(&self, u: &PendingUpdate) -> bool {
        if self.applied[u.writer.proc] + 1 != u.writer.seq {
            return false;
        }
        u.deps.iter().all(|(p, c)| p == u.writer.proc || self.applied[p] >= c)
    }

    fn batch_ready(&self, b: &PendingBatch) -> bool {
        // Ready when the next expected sequence falls inside the batch:
        // `first_seq` may sit below the watermark when recovery overlaps
        // an in-flight pre-crash copy (the covered prefix is skipped at
        // application time).
        if self.applied[b.proc] + 1 < b.first_seq || self.applied[b.proc] >= b.upto {
            return false;
        }
        b.deps.iter().all(|(p, c)| p == b.proc || self.applied[p] >= c)
    }

    /// Number of buffered (not yet applied) updates and batches.
    pub fn pending_len(&self) -> usize {
        self.pending.len() + self.pending_batches.len()
    }

    /// Gate for causal reads: the causal cut must be applied locally
    /// (Section 6: "a causal read can return a value only if all
    /// preceding operations ... have been performed locally").
    pub fn causal_ready(&self, loc: Loc) -> bool {
        self.applied.dominates(&self.must_see) && self.demand_ready(loc)
    }

    /// Gate for PRAM reads: only direct synchronization predecessors are
    /// awaited.
    pub fn pram_ready(&self, loc: Loc) -> bool {
        self.applied.dominates(&self.pram_wait) && self.demand_ready(loc)
    }

    fn demand_ready(&self, loc: Loc) -> bool {
        match self.invalid.get(&loc) {
            Some(&(p, seq)) => self.applied[p] >= seq,
            None => true,
        }
    }

    /// Merges synchronization knowledge received from a lock grant or
    /// barrier release into the read gates.
    pub fn absorb_sync(&mut self, knowledge: &VClock, preds: &[(ProcId, u32)]) {
        if !knowledge.is_empty() {
            self.must_see.merge(knowledge);
        }
        for &(p, c) in preds {
            if self.pram_wait[p] < c {
                self.pram_wait.set(p, c);
            }
        }
    }

    /// Installs demand-driven invalidations from a lock grant.
    pub fn absorb_demand(&mut self, demand: &[(Loc, ProcId, u32)]) {
        for &(loc, p, seq) in demand {
            let e = self.invalid.entry(loc).or_insert((p, seq));
            // Keep the strongest requirement per location.
            if (e.0, e.1) != (p, seq) {
                let cur_ok = self.applied[e.0] >= e.1;
                let new_ok = self.applied[p] >= seq;
                if cur_ok || !new_ok {
                    *e = (p, seq);
                }
            }
        }
    }

    /// Drains the demand-driven dirty set accumulated since the last
    /// release of `lock`: the latest own write per location.
    pub fn take_dirty(&mut self, lock: mc_model::LockId) -> Vec<(Loc, u32)> {
        let wm = self.lock_watermarks.get(&lock).copied().unwrap_or(0);
        let mut latest: HashMap<Loc, u32> = HashMap::new();
        for &(loc, seq) in &self.write_log[wm..] {
            let e = latest.entry(loc).or_insert(seq);
            *e = (*e).max(seq);
        }
        self.lock_watermarks.insert(lock, self.write_log.len());
        let mut out: Vec<(Loc, u32)> = latest.into_iter().collect();
        out.sort_unstable_by_key(|&(l, _)| l);
        out
    }

    /// The number of processes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    // -- sharding -----------------------------------------------------------

    /// The sharded-mode state, when sharding is enabled.
    pub fn shards(&self) -> Option<&ShardState> {
        self.shards.as_ref()
    }

    /// Whether sharded interest-based mode is enabled.
    pub fn is_sharded(&self) -> bool {
        self.shards.is_some()
    }

    /// Subscribes to `shard` (dynamic first-touch fallback). Returns
    /// `true` when the subscription is new.
    pub fn shard_subscribe(&mut self, shard: usize) -> bool {
        let st = self.shards.as_mut().expect("sharding enabled");
        match st.subs.binary_search(&shard) {
            Ok(_) => false,
            Err(i) => {
                st.subs.insert(i, shard);
                true
            }
        }
    }

    /// Performs a local write in sharded mode. The minted [`WriteId`]
    /// keeps the global per-process sequence; the returned chain link
    /// `prev` is this process's previous own seq in the target shard,
    /// and the dependency triples are the writer's full current
    /// per-shard knowledge (its own target-shard entry excluded —
    /// `prev` already carries it).
    pub fn sharded_write(
        &mut self,
        loc: Loc,
        payload: UpdatePayload,
        cfg: &DsmConfig,
    ) -> (WriteId, u32, Vec<(u32, ProcId, u32)>) {
        self.applied.tick(self.proc);
        let id = WriteId::new(self.proc, self.own_count());
        let st = self.shards.as_mut().expect("sharded_write requires sharding");
        let s = st.shard_of(loc);
        let prev = st.own_prev[s];
        let mut deps = Vec::new();
        if cfg.mode.carries_vectors() {
            for (ds, clock) in st.applied.iter().enumerate() {
                for (q, c) in clock.iter() {
                    if c > 0 && !(ds == s && q == self.proc) {
                        deps.push((ds as u32, q, c));
                    }
                }
            }
        }
        st.own_prev[s] = id.seq;
        st.applied[s].set(self.proc, id.seq);
        st.own_log[s].push(ShardOwnUpdate {
            seq: id.seq,
            loc,
            payload: payload.clone(),
            deps: deps.clone(),
        });
        let sum = st.applied[s].sum();
        self.apply_sharded(id, loc, &payload, sum, &[id.seq]);
        self.write_log.push((loc, id.seq));
        (id, prev, deps)
    }

    /// Installs one sharded write into the store. `sum` is the write's
    /// shard-local knowledge total (the writer's post-write shard clock
    /// summed), which orders coherent `Set`s: if `w1` causally precedes
    /// `w2` in the same shard, `w2`'s post-write clock strictly
    /// dominates `w1`'s component-wise, so its sum is strictly larger —
    /// the `(sum, proc, seq)` tag is a total order consistent with
    /// per-shard causality. `adds` are the member seqs credited to a
    /// counter location.
    fn apply_sharded(
        &mut self,
        writer: WriteId,
        loc: Loc,
        payload: &UpdatePayload,
        sum: u64,
        adds: &[u32],
    ) {
        self.ensure_loc(loc);
        match payload {
            UpdatePayload::Set(v) => {
                let admit = !self.coherent || self.admit_tag(loc, (sum, writer.proc.0, writer.seq));
                if admit {
                    self.store[loc.index()] = *v;
                    self.last_writer[loc.index()] = Some(writer);
                }
            }
            UpdatePayload::Add(d) => {
                let cur = self.store[loc.index()];
                self.store[loc.index()] = cur.checked_add(*d).unwrap_or_else(|| {
                    panic!("update delta kind mismatch at {loc} ({cur:?} += {d:?})")
                });
                let ups = self.counter_updates.entry(loc).or_default();
                ups.extend(adds.iter().map(|&s| WriteId::new(writer.proc, s)));
                self.last_writer[loc.index()] = Some(writer);
            }
        }
    }

    /// Ingests one remote sharded update. Non-vector modes apply on
    /// receipt (mirroring the unsharded PRAM path); vector modes buffer
    /// until the shard chain link matches and every dependency triple
    /// for a *subscribed* shard is dominated. Stale duplicates (already
    /// at or past the writer's seq in this shard) are discarded.
    /// Returns `true` if anything was applied.
    pub fn ingest_sharded(
        &mut self,
        writer: WriteId,
        loc: Loc,
        payload: UpdatePayload,
        prev: u32,
        deps: Vec<(u32, ProcId, u32)>,
        mode: Mode,
    ) -> bool {
        let st = self.shards.as_mut().expect("sharding enabled");
        let s = st.shard_of(loc);
        if !mode.carries_vectors() {
            let seen = st.applied[s].get(writer.proc).max(writer.seq);
            st.applied[s].set(writer.proc, seen);
            let global = self.applied.get(writer.proc).max(writer.seq);
            self.applied.set(writer.proc, global);
            let sum = self.shards.as_ref().unwrap().applied[s].sum();
            self.apply_sharded(writer, loc, &payload, sum, &[writer.seq]);
            return true;
        }
        if st.applied[s].get(writer.proc) >= writer.seq {
            return false;
        }
        st.pending.push(PendingShard::Single { writer, loc, payload, prev, deps });
        self.drain_shard_pending()
    }

    /// Ingests a sharded chain (a coalesced per-shard batch, a recovery
    /// delta, or a subscription backfill) covering the sender's own
    /// writes in `shard` from chain link `prev` up to `upto`. When
    /// `trim` is set the entries are one-per-write (uncoalesced), and
    /// any prefix this replica already has is discarded with `prev`
    /// re-anchored — recovery and backfill pushes may overlap what the
    /// receiver already applied. Returns `true` if anything applied.
    #[allow(clippy::too_many_arguments)]
    pub fn ingest_shard_chain(
        &mut self,
        proc: ProcId,
        shard: u32,
        mut prev: u32,
        upto: u32,
        entries: Arc<[BatchEntry]>,
        deps: Vec<(u32, ProcId, u32)>,
        mode: Mode,
        trim: bool,
    ) -> bool {
        let st = self.shards.as_mut().expect("sharding enabled");
        let have = st.applied[shard as usize].get(proc);
        if have >= upto {
            return false;
        }
        // The entry buffer is shared with every other recipient of the
        // chain, so an already-applied prefix is skipped by index (the
        // chain re-anchors at the last skipped member) instead of
        // popping from an owned vector.
        let mut skip = 0;
        if trim {
            while entries.get(skip).is_some_and(|e| e.writer.seq <= have) {
                prev = entries[skip].writer.seq;
                skip += 1;
            }
        }
        if !mode.carries_vectors() {
            let seen = have.max(upto);
            st.applied[shard as usize].set(proc, seen);
            let global = self.applied.get(proc).max(upto);
            self.applied.set(proc, global);
            for e in entries[skip..].iter() {
                let sum = self.shards.as_ref().unwrap().applied[shard as usize].sum();
                self.apply_sharded(e.writer, e.loc, &e.payload, sum, &e.adds);
            }
            return true;
        }
        st.pending.push(PendingShard::Chain { proc, shard, prev, upto, entries, skip, deps });
        self.drain_shard_pending()
    }

    /// Applies every ready buffered sharded update or chain (each can
    /// unblock the other); returns `true` if any applied.
    fn drain_shard_pending(&mut self) -> bool {
        let mut any = false;
        loop {
            let st = self.shards.as_ref().expect("sharding enabled");
            let idx = st.pending.iter().position(|p| Self::shard_ready(st, p));
            let Some(idx) = idx else { return any };
            let p = self.shards.as_mut().unwrap().pending.swap_remove(idx);
            any = true;
            match p {
                PendingShard::Single { writer, loc, payload, prev: _, deps } => {
                    let st = self.shards.as_mut().unwrap();
                    let s = st.shard_of(loc);
                    st.applied[s].set(writer.proc, writer.seq);
                    let global = self.applied.get(writer.proc).max(writer.seq);
                    self.applied.set(writer.proc, global);
                    let sum = Self::dep_sum(&deps, s) + writer.seq as u64;
                    self.apply_sharded(writer, loc, &payload, sum, &[writer.seq]);
                }
                PendingShard::Chain { proc, shard, prev: _, upto, entries, skip, deps } => {
                    let st = self.shards.as_mut().unwrap();
                    st.applied[shard as usize].set(proc, upto);
                    let global = self.applied.get(proc).max(upto);
                    self.applied.set(proc, global);
                    for e in entries[skip..].iter() {
                        // The chain triples cover every member's deps
                        // (monotone in chain order), so tagging each
                        // entry with them keeps coherent tag order
                        // consistent with per-shard causality.
                        let sum = Self::dep_sum(&deps, shard as usize) + e.writer.seq as u64;
                        self.apply_sharded(e.writer, e.loc, &e.payload, sum, &e.adds);
                    }
                }
            }
        }
    }

    /// Sum of the dependency triples that land in `shard` — the
    /// sender's pre-existing knowledge of the write's own shard.
    fn dep_sum(deps: &[(u32, ProcId, u32)], shard: usize) -> u64 {
        deps.iter().filter(|&&(ds, _, _)| ds as usize == shard).map(|&(_, _, c)| c as u64).sum()
    }

    /// Readiness of one buffered sharded item: the chain link must
    /// match exactly, and every dependency triple for a shard this
    /// replica subscribes to must be dominated. Triples for shards it
    /// does not subscribe to are skipped — it can never observe those
    /// writes, so they are outside its causal past's visible image.
    fn shard_ready(st: &ShardState, p: &PendingShard) -> bool {
        let (sender, shard, prev, deps) = match p {
            PendingShard::Single { writer, loc, prev, deps, .. } => {
                (writer.proc, st.shard_of(*loc), *prev, deps)
            }
            PendingShard::Chain { proc, shard, prev, deps, .. } => {
                (*proc, *shard as usize, *prev, deps)
            }
        };
        if st.applied[shard].get(sender) != prev {
            return false;
        }
        deps.iter().all(|&(ds, q, c)| {
            let ds = ds as usize;
            (ds == shard && q == sender) || !st.subscribed(ds) || st.applied[ds].get(q) >= c
        })
    }

    /// The suffix of this replica's own chain in `shard` after global
    /// seq `after`, as uncoalesced one-per-write entries: `(prev, upto,
    /// entries, deps-of-last-member)`. `None` when the peer already has
    /// everything.
    ///
    /// A chain applies *atomically* at the receiver, so this shape is
    /// only safe when at most one chain can be in flight per causal
    /// cut (live batches guarantee it by flushing other shards first).
    /// Recovery and backfill answer with [`Self::shard_updates_after`]
    /// instead: two atomic chains whose last-member triples point into
    /// each other's shards deadlock a receiver that lacks both.
    pub fn shard_chain_after(&self, shard: usize, after: u32) -> Option<ShardChain> {
        let st = self.shards.as_ref()?;
        let missing: Vec<&ShardOwnUpdate> =
            st.own_log[shard].iter().filter(|u| u.seq > after).collect();
        let last = missing.last()?;
        let (upto, deps) = (last.seq, last.deps.clone());
        let entries = missing
            .iter()
            .map(|u| BatchEntry {
                loc: u.loc,
                payload: u.payload.clone(),
                writer: WriteId::new(self.proc, u.seq),
                adds: match u.payload {
                    UpdatePayload::Add(_) => vec![u.seq],
                    UpdatePayload::Set(_) => vec![],
                },
            })
            .collect();
        Some((after, upto, entries, deps))
    }

    /// This replica's own writes after each `(shard, after)` watermark,
    /// re-shipped one [`ShardUpdate`](crate::Msg::ShardUpdate) at a
    /// time with their original chain links and write-time dependency
    /// triples, interleaved across shards in global sequence order.
    ///
    /// Recovery deltas and subscription backfills use this per-write
    /// form rather than one atomic chain per shard: a shard-A chain may
    /// carry a triple into shard B while B's chain carries one back
    /// into A, and since chains apply atomically a receiver that lacks
    /// both parks each on the other forever. Individual writes follow
    /// the (acyclic) causal order, so in-sequence delivery always
    /// drains — exactly like live traffic.
    pub fn shard_updates_after(&self, wants: &[(u32, u32)]) -> Vec<ShardPush> {
        let Some(st) = self.shards.as_ref() else { return Vec::new() };
        let mut out = Vec::new();
        for &(shard, after) in wants {
            let mut prev = 0;
            for u in &st.own_log[shard as usize] {
                if u.seq > after {
                    out.push((
                        WriteId::new(self.proc, u.seq),
                        u.loc,
                        u.payload.clone(),
                        prev,
                        u.deps.clone(),
                    ));
                }
                prev = u.seq;
            }
        }
        out.sort_unstable_by_key(|&(w, ..)| w.seq);
        out
    }

    // -- durability ---------------------------------------------------------

    /// Captures the replica as a compacted [`Snapshot`] (everything that
    /// `snapshot + empty log` must reproduce). `watermarks` are the
    /// session receiver watermarks to persist alongside.
    pub fn to_snapshot(&self, watermarks: Vec<(ProcId, u64)>) -> Snapshot {
        let mut store = Vec::new();
        for i in 0..self.store.len() {
            let v = self.store[i];
            let w = self.last_writer[i];
            if v != Value::INITIAL || w.is_some() {
                store.push((Loc(i as u32), v, w));
            }
        }
        let mut counter_updates: Vec<(Loc, Vec<WriteId>)> =
            self.counter_updates.iter().map(|(&l, ws)| (l, ws.clone())).collect();
        counter_updates.sort_unstable_by_key(|&(l, _)| l);
        Snapshot {
            incarnation: self.incarnation,
            applied: self.applied.clone(),
            store,
            counter_updates,
            write_log: self.write_log.clone(),
            own_updates: self.own_updates.clone(),
            pending: self
                .pending
                .iter()
                .map(|u| SnapPending {
                    writer: u.writer,
                    loc: u.loc,
                    payload: u.payload.clone(),
                    deps: u.deps.clone(),
                })
                .collect(),
            pending_batches: self
                .pending_batches
                .iter()
                .map(|b| SnapBatch {
                    proc: b.proc,
                    first_seq: b.first_seq,
                    upto: b.upto,
                    entries: b.entries.to_vec(),
                    deps: b.deps.clone(),
                })
                .collect(),
            watermarks,
        }
    }

    /// Rebuilds a replica from a decoded [`Snapshot`]. The read gates
    /// (`must_see`, `pram_wait`, `invalid`) and lock watermarks are
    /// *not* part of the snapshot: in the simulator they survive the
    /// crash with the client program, and a restarted live process
    /// starts its program afresh.
    pub fn from_snapshot(proc: ProcId, nprocs: usize, snap: &Snapshot) -> Replica {
        let mut r = Replica::new(proc, nprocs);
        r.incarnation = snap.incarnation;
        r.applied = snap.applied.clone();
        for &(loc, v, w) in &snap.store {
            r.ensure_loc(loc);
            r.store[loc.index()] = v;
            r.last_writer[loc.index()] = w;
        }
        r.counter_updates = snap.counter_updates.iter().cloned().collect();
        r.write_log = snap.write_log.clone();
        r.own_updates = snap.own_updates.clone();
        r.pending = snap
            .pending
            .iter()
            .map(|u| PendingUpdate {
                writer: u.writer,
                loc: u.loc,
                payload: u.payload.clone(),
                deps: u.deps.clone(),
            })
            .collect();
        r.pending_batches = snap
            .pending_batches
            .iter()
            .map(|b| PendingBatch {
                proc: b.proc,
                first_seq: b.first_seq,
                upto: b.upto,
                entries: b.entries.clone().into(),
                deps: b.deps.clone(),
            })
            .collect();
        r
    }

    /// Replays one write-ahead-log record through the normal ingest
    /// machinery (recovery path). Own writes re-mint their original
    /// identities because replay preserves order; remote records re-run
    /// ingest, so causally premature updates land back in the pending
    /// buffers exactly as they were.
    pub fn replay_record(&mut self, rec: WalRecord, mode: Mode) {
        match rec {
            WalRecord::OwnWrite { loc, payload, deps } => {
                self.applied.tick(self.proc);
                let id = WriteId::new(self.proc, self.own_count());
                self.apply_to_store(id, loc, &payload, deps.as_ref());
                self.write_log.push((loc, id.seq));
                self.own_updates.push(OwnUpdate { seq: id.seq, loc, payload, deps });
            }
            WalRecord::Ingest { writer, loc, payload, deps } => {
                self.ingest(writer, loc, payload, deps, mode);
            }
            WalRecord::IngestBatch { proc, first_seq, upto, entries, deps } => {
                self.ingest_batch(proc, first_seq, upto, entries.into(), deps, mode);
            }
            WalRecord::Incarnation { incarnation } => {
                self.incarnation = self.incarnation.max(incarnation);
            }
            WalRecord::OwnWriteSharded { loc, payload, deps } => {
                self.applied.tick(self.proc);
                let id = WriteId::new(self.proc, self.own_count());
                let st = self.shards.as_mut().expect("sharded WAL record on a sharded replica");
                let s = st.shard_of(loc);
                st.own_prev[s] = id.seq;
                st.applied[s].set(self.proc, id.seq);
                st.own_log[s].push(ShardOwnUpdate {
                    seq: id.seq,
                    loc,
                    payload: payload.clone(),
                    deps,
                });
                let sum = st.applied[s].sum();
                self.apply_sharded(id, loc, &payload, sum, &[id.seq]);
                self.write_log.push((loc, id.seq));
            }
            WalRecord::IngestSharded { writer, loc, payload, prev, deps } => {
                self.ingest_sharded(writer, loc, payload, prev, deps, mode);
            }
            WalRecord::IngestShardChain { proc, shard, prev, upto, entries, deps, trim } => {
                self.ingest_shard_chain(proc, shard, prev, upto, entries.into(), deps, mode, trim);
            }
            WalRecord::Subscribe { shard } => {
                self.shard_subscribe(shard as usize);
            }
        }
    }

    /// The suffix of this replica's own writes after sequence `after`,
    /// as batch entries for a [`RecoverResp`](crate::Msg::RecoverResp)
    /// (or the reborn side's push-back batch): `(first_seq, upto,
    /// entries, deps-of-last-member)`. `None` when the peer already has
    /// everything.
    pub fn delta_entries(&self, after: u32) -> Option<(u32, u32, Vec<BatchEntry>, Option<VClock>)> {
        let missing: Vec<&OwnUpdate> = self.own_updates.iter().filter(|u| u.seq > after).collect();
        let last = missing.last()?;
        let (upto, deps) = (last.seq, last.deps.clone());
        let entries = missing
            .iter()
            .map(|u| BatchEntry {
                loc: u.loc,
                payload: u.payload.clone(),
                writer: WriteId::new(self.proc, u.seq),
                adds: match u.payload {
                    UpdatePayload::Add(_) => vec![u.seq],
                    UpdatePayload::Set(_) => vec![],
                },
            })
            .collect();
        Some((after + 1, upto, entries, deps))
    }

    /// [`Replica::delta_entries`] split at dependency boundaries: one
    /// batch per maximal run of own writes whose *cross-process*
    /// dependencies are identical (the own coordinate grows within a
    /// run but never gates).
    ///
    /// A single batch gated on the deps of its last member deadlocks
    /// when two peers' recovery deltas cross-reference each other's
    /// recent writes: neither batch is ever ready at the recovering
    /// node, even though the underlying per-write causal order is
    /// acyclic and an interleaved application order exists. Runs with
    /// unchanged external deps have no incoming dependency except at
    /// their head, so contracting each run to one atomic batch
    /// preserves acyclicity — chunked deltas always admit a topological
    /// application order, which `drain_pending`'s fixpoint finds.
    pub fn delta_chunks(&self, after: u32) -> Vec<(u32, u32, Vec<BatchEntry>, Option<VClock>)> {
        let missing: Vec<&OwnUpdate> = self.own_updates.iter().filter(|u| u.seq > after).collect();
        let external_eq = |a: &Option<VClock>, b: &Option<VClock>| match (a, b) {
            (Some(a), Some(b)) => {
                a.iter().all(|(p, c)| p == self.proc || b[p] == c)
                    && b.iter().all(|(p, c)| p == self.proc || a[p] == c)
            }
            (None, None) => true,
            _ => false,
        };
        let mut chunks: Vec<(u32, u32, Vec<BatchEntry>, Option<VClock>)> = Vec::new();
        for u in missing {
            let entry = BatchEntry {
                loc: u.loc,
                payload: u.payload.clone(),
                writer: WriteId::new(self.proc, u.seq),
                adds: match u.payload {
                    UpdatePayload::Add(_) => vec![u.seq],
                    UpdatePayload::Set(_) => vec![],
                },
            };
            match chunks.last_mut() {
                Some((_, upto, entries, deps)) if external_eq(deps, &u.deps) => {
                    *upto = u.seq;
                    // The run's shared vector is its last member's: the
                    // external coordinates are identical across the run
                    // and the own coordinate is maximal, matching what a
                    // single-batch delta would carry.
                    *deps = u.deps.clone();
                    entries.push(entry);
                }
                _ => chunks.push((u.seq, u.seq, vec![entry], u.deps.clone())),
            }
        }
        chunks
    }

    /// Number of own writes retained for recovery push-back.
    pub fn own_updates_len(&self) -> usize {
        self.own_updates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockPropagation;
    use mc_model::LockId;

    fn cfg(mode: Mode) -> DsmConfig {
        DsmConfig { lock_propagation: LockPropagation::Lazy, ..DsmConfig::new(3, mode) }
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn local_write_and_read() {
        let mut r = Replica::new(p(0), 3);
        let (id, deps) =
            r.local_write(Loc(5), UpdatePayload::Set(Value::Int(9)), &cfg(Mode::Mixed));
        assert_eq!(id, WriteId::new(p(0), 1));
        assert_eq!(deps.as_ref().unwrap()[p(0)], 1);
        assert_eq!(r.value(Loc(5)), Value::Int(9));
        assert_eq!(r.writer_of(Loc(5)), Some(id));
        assert_eq!(r.value(Loc(99)), Value::INITIAL);
        assert_eq!(r.writer_of(Loc(99)), None);
        assert_eq!(r.own_count(), 1);
    }

    #[test]
    fn pram_mode_attaches_no_deps() {
        let mut r = Replica::new(p(0), 3);
        let (_, deps) = r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &cfg(Mode::Pram));
        assert!(deps.is_none());
    }

    #[test]
    fn pram_ingest_applies_immediately() {
        let mut r = Replica::new(p(1), 2);
        let applied = r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(7)),
            None,
            Mode::Pram,
        );
        assert!(applied);
        assert_eq!(r.value(Loc(0)), Value::Int(7));
        assert_eq!(r.applied[p(0)], 1);
    }

    #[test]
    fn causal_ingest_buffers_out_of_order() {
        let mut r = Replica::new(p(1), 2);
        // Writer p0's second write arrives first.
        let mut deps2: VClock = VClock::new(2);
        deps2.set(p(0), 2);
        let applied = r.ingest(
            WriteId::new(p(0), 2),
            Loc(0),
            UpdatePayload::Set(Value::Int(2)),
            Some(deps2),
            Mode::Causal,
        );
        assert!(!applied);
        assert_eq!(r.pending_len(), 1);
        assert_eq!(r.value(Loc(0)), Value::INITIAL);

        // Now the first write arrives: both drain, in order.
        let mut deps1 = VClock::new(2);
        deps1.set(p(0), 1);
        let applied = r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(1)),
            Some(deps1),
            Mode::Causal,
        );
        assert!(applied);
        assert_eq!(r.pending_len(), 0);
        assert_eq!(r.value(Loc(0)), Value::Int(2), "final value is the later write");
        assert_eq!(r.applied[p(0)], 2);
    }

    #[test]
    fn causal_ingest_waits_for_cross_deps() {
        // p2's write depends on p0's write (p2 read it before writing).
        let mut r = Replica::new(p(1), 3);
        let mut deps = VClock::new(3);
        deps.set(p(2), 1);
        deps.set(p(0), 1); // cross dependency
        assert!(!r.ingest(
            WriteId::new(p(2), 1),
            Loc(1),
            UpdatePayload::Set(Value::Int(5)),
            Some(deps),
            Mode::Mixed,
        ));
        // p0's write arrives; both apply.
        let mut deps0 = VClock::new(3);
        deps0.set(p(0), 1);
        assert!(r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(4)),
            Some(deps0),
            Mode::Mixed,
        ));
        assert_eq!(r.value(Loc(1)), Value::Int(5));
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Replica::new(p(1), 2);
        r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Add(Value::Int(-1)),
            None,
            Mode::Pram,
        );
        let (id, _) = r.local_write(Loc(0), UpdatePayload::Add(Value::Int(-1)), &cfg(Mode::Pram));
        assert_eq!(r.value(Loc(0)), Value::Int(-2));
        let writers = r.await_writers(Loc(0));
        assert_eq!(writers.len(), 2);
        assert!(writers.contains(&id));
    }

    #[test]
    #[should_panic(expected = "delta kind mismatch")]
    fn update_kind_mismatch_panics() {
        let mut r = Replica::new(p(0), 1);
        r.local_write(Loc(0), UpdatePayload::Set(Value::F64(1.0)), &cfg(Mode::Pram));
        r.local_write(Loc(0), UpdatePayload::Add(Value::Int(1)), &cfg(Mode::Pram));
    }

    #[test]
    fn float_counters_accumulate() {
        let mut r = Replica::new(p(0), 1);
        r.local_write(Loc(0), UpdatePayload::Set(Value::F64(1.0)), &cfg(Mode::Pram));
        r.local_write(Loc(0), UpdatePayload::Add(Value::F64(-0.25)), &cfg(Mode::Pram));
        assert_eq!(r.peek(Loc(0)), Value::F64(0.75));
    }

    #[test]
    fn gates() {
        let mut r = Replica::new(p(1), 2);
        assert!(r.causal_ready(Loc(0)));
        assert!(r.pram_ready(Loc(0)));

        // A grant tells us to see p0's first write.
        let mut k = VClock::new(2);
        k.set(p(0), 1);
        r.absorb_sync(&k, &[(p(0), 1)]);
        assert!(!r.causal_ready(Loc(0)));
        assert!(!r.pram_ready(Loc(0)));

        r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(1)),
            Some(k.clone()),
            Mode::Mixed,
        );
        assert!(r.causal_ready(Loc(0)));
        assert!(r.pram_ready(Loc(0)));
    }

    #[test]
    fn demand_gate_blocks_only_named_locations() {
        let mut r = Replica::new(p(1), 2);
        r.absorb_demand(&[(Loc(3), p(0), 2)]);
        assert!(r.causal_ready(Loc(0)), "other locations unaffected");
        assert!(!r.pram_ready(Loc(3)));
        // Apply p0's two writes.
        for s in 1..=2 {
            r.ingest(
                WriteId::new(p(0), s),
                Loc(3),
                UpdatePayload::Set(Value::Int(s as i64)),
                None,
                Mode::Pram,
            );
        }
        assert!(r.pram_ready(Loc(3)));
    }

    #[test]
    fn dirty_set_is_per_lock_delta() {
        let l = LockId(0);
        let mut r = Replica::new(p(0), 1);
        let c = cfg(Mode::Pram);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &c);
        r.local_write(Loc(1), UpdatePayload::Set(Value::Int(2)), &c);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(3)), &c);
        let d1 = r.take_dirty(l);
        assert_eq!(d1, vec![(Loc(0), 3), (Loc(1), 2)]);
        // Nothing new since.
        assert!(r.take_dirty(l).is_empty());
        r.local_write(Loc(1), UpdatePayload::Set(Value::Int(4)), &c);
        assert_eq!(r.take_dirty(l), vec![(Loc(1), 4)]);
        // A different lock ships everything.
        assert_eq!(r.take_dirty(LockId(1)).len(), 2);
    }

    #[test]
    fn presized_store_reads_without_growth() {
        let r = Replica::new(p(0), 2).with_store_capacity(16);
        assert_eq!(r.value(Loc(15)), Value::INITIAL);
        assert_eq!(r.writer_of(Loc(15)), None);
        // Beyond the hint still answers (initial), and writing there grows.
        assert_eq!(r.value(Loc(40)), Value::INITIAL);
        let mut r = r;
        r.local_write(Loc(40), UpdatePayload::Set(Value::Int(1)), &cfg(Mode::Pram));
        assert_eq!(r.value(Loc(40)), Value::Int(1));
    }

    #[test]
    fn pram_batch_applies_immediately() {
        let mut r = Replica::new(p(1), 2);
        let e = |loc: u32, v: i64, seq: u32| BatchEntry {
            loc: Loc(loc),
            payload: UpdatePayload::Set(Value::Int(v)),
            writer: WriteId::new(p(0), seq),
            adds: vec![],
        };
        assert!(r.ingest_batch(p(0), 1, 3, vec![e(0, 7, 2), e(1, 9, 3)].into(), None, Mode::Pram));
        assert_eq!(r.value(Loc(0)), Value::Int(7));
        assert_eq!(r.value(Loc(1)), Value::Int(9));
        assert_eq!(r.applied[p(0)], 3);
        assert_eq!(r.writer_of(Loc(1)), Some(WriteId::new(p(0), 3)));
    }

    #[test]
    fn causal_batch_waits_for_sequence_and_deps() {
        let mut r = Replica::new(p(2), 3);
        // Batch covering p0's writes 2..=3 arrives before write 1: buffered.
        let mut deps = VClock::new(3);
        deps.set(p(0), 3);
        let e = BatchEntry {
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(3)),
            writer: WriteId::new(p(0), 3),
            adds: vec![],
        };
        assert!(!r.ingest_batch(p(0), 2, 3, vec![e].into(), Some(deps), Mode::Causal));
        assert_eq!(r.pending_len(), 1);
        // Write 1 (as a singleton) unblocks the batch atomically.
        let mut d1 = VClock::new(3);
        d1.set(p(0), 1);
        assert!(r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(1)),
            Some(d1),
            Mode::Causal,
        ));
        assert_eq!(r.pending_len(), 0);
        assert_eq!(r.applied[p(0)], 3);
        assert_eq!(r.value(Loc(0)), Value::Int(3));
    }

    #[test]
    fn causal_batch_waits_for_cross_deps() {
        let mut r = Replica::new(p(2), 3);
        // p1's batch depends on p0's first write.
        let mut deps = VClock::new(3);
        deps.set(p(1), 1);
        deps.set(p(0), 1);
        let e = BatchEntry {
            loc: Loc(1),
            payload: UpdatePayload::Set(Value::Int(5)),
            writer: WriteId::new(p(1), 1),
            adds: vec![],
        };
        assert!(!r.ingest_batch(p(1), 1, 1, vec![e].into(), Some(deps), Mode::Mixed));
        let mut d0 = VClock::new(3);
        d0.set(p(0), 1);
        assert!(r.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(4)),
            Some(d0),
            Mode::Mixed,
        ));
        assert_eq!(r.value(Loc(1)), Value::Int(5));
    }

    #[test]
    fn batch_add_entry_credits_every_member() {
        let mut r = Replica::new(p(1), 2);
        // Three coalesced Adds from p0 (seqs 1..=3) summed into one entry.
        let e = BatchEntry {
            loc: Loc(0),
            payload: UpdatePayload::Add(Value::Int(3)),
            writer: WriteId::new(p(0), 3),
            adds: vec![1, 2, 3],
        };
        assert!(r.ingest_batch(p(0), 1, 3, vec![e].into(), None, Mode::Pram));
        assert_eq!(r.value(Loc(0)), Value::Int(3));
        let writers = r.await_writers(Loc(0));
        assert_eq!(writers.len(), 3);
        assert!(writers.contains(&WriteId::new(p(0), 2)));
    }

    fn durable_cfg(mode: Mode) -> DsmConfig {
        DsmConfig { durability: Some(crate::durability::DurabilityPolicy::default()), ..cfg(mode) }
    }

    #[test]
    fn snapshot_roundtrip_reconstructs_replica() {
        let c = durable_cfg(Mode::Mixed);
        let mut r = Replica::new(p(0), 3);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(5)), &c);
        r.local_write(Loc(1), UpdatePayload::Add(Value::Int(2)), &c);
        // A causally premature remote write lands in pending.
        let mut deps = VClock::new(3);
        deps.set(p(1), 2);
        r.ingest(
            WriteId::new(p(1), 2),
            Loc(2),
            UpdatePayload::Set(Value::Int(9)),
            Some(deps),
            Mode::Mixed,
        );
        assert_eq!(r.pending_len(), 1);
        r.incarnation = 3;

        let bytes = r.to_snapshot(vec![(p(1), 7)]).encode();
        let snap = Snapshot::decode(&bytes).unwrap();
        assert_eq!(snap.watermarks, vec![(p(1), 7)]);
        let mut back = Replica::from_snapshot(p(0), 3, &snap);
        assert_eq!(back.incarnation, 3);
        assert_eq!(back.value(Loc(0)), Value::Int(5));
        assert_eq!(back.value(Loc(1)), Value::Int(2));
        assert_eq!(back.own_count(), 2);
        assert_eq!(back.write_log, r.write_log);
        assert_eq!(back.pending_len(), 1);
        assert_eq!(back.await_writers(Loc(1)), r.await_writers(Loc(1)));
        // The buffered write still drains once its predecessor arrives.
        let mut d1 = VClock::new(3);
        d1.set(p(1), 1);
        assert!(back.ingest(
            WriteId::new(p(1), 1),
            Loc(2),
            UpdatePayload::Set(Value::Int(8)),
            Some(d1),
            Mode::Mixed,
        ));
        assert_eq!(back.value(Loc(2)), Value::Int(9));
    }

    #[test]
    fn replay_reminits_own_write_identities() {
        let c = durable_cfg(Mode::Mixed);
        let mut live = Replica::new(p(0), 2);
        let (id1, deps1) = live.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &c);
        let (id2, deps2) = live.local_write(Loc(1), UpdatePayload::Add(Value::Int(4)), &c);

        let mut reborn = Replica::new(p(0), 2);
        reborn.replay_record(
            WalRecord::OwnWrite {
                loc: Loc(0),
                payload: UpdatePayload::Set(Value::Int(1)),
                deps: deps1,
            },
            Mode::Mixed,
        );
        reborn.replay_record(
            WalRecord::OwnWrite {
                loc: Loc(1),
                payload: UpdatePayload::Add(Value::Int(4)),
                deps: deps2,
            },
            Mode::Mixed,
        );
        reborn.replay_record(WalRecord::Incarnation { incarnation: 2 }, Mode::Mixed);
        assert_eq!(reborn.own_count(), 2);
        assert_eq!(reborn.writer_of(Loc(0)), Some(id1));
        assert_eq!(reborn.writer_of(Loc(1)), Some(id2));
        assert_eq!(reborn.incarnation, 2);
        assert_eq!(reborn.value(Loc(1)), Value::Int(4));
        assert_eq!(reborn.write_log, live.write_log);
    }

    #[test]
    fn replay_ingests_reenter_pending_buffers() {
        let mut r = Replica::new(p(1), 2);
        let mut deps = VClock::new(2);
        deps.set(p(0), 2);
        // A logged ingest whose predecessor never made it to disk: it
        // must wait in pending again, not apply out of order.
        r.replay_record(
            WalRecord::Ingest {
                writer: WriteId::new(p(0), 2),
                loc: Loc(0),
                payload: UpdatePayload::Set(Value::Int(2)),
                deps: Some(deps),
            },
            Mode::Causal,
        );
        assert_eq!(r.pending_len(), 1);
        assert_eq!(r.value(Loc(0)), Value::INITIAL);
    }

    #[test]
    fn delta_entries_cover_exactly_the_missing_suffix() {
        let c = durable_cfg(Mode::Pram);
        let mut r = Replica::new(p(0), 2);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &c);
        r.local_write(Loc(1), UpdatePayload::Add(Value::Int(2)), &c);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(3)), &c);
        assert!(r.delta_entries(3).is_none(), "peer already has everything");
        let (first, upto, entries, deps) = r.delta_entries(1).unwrap();
        assert_eq!((first, upto), (2, 3));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].adds, vec![2], "Add entries credit their member");
        assert_eq!(entries[1].adds, Vec::<u32>::new());
        assert!(deps.is_none(), "PRAM carries no vectors");
        // Applying the suffix at a peer that has the prefix converges it.
        let mut peer = Replica::new(p(1), 2);
        peer.ingest(
            WriteId::new(p(0), 1),
            Loc(0),
            UpdatePayload::Set(Value::Int(1)),
            None,
            Mode::Pram,
        );
        peer.ingest_batch(p(0), first, upto, entries.into(), deps, Mode::Pram);
        assert_eq!(peer.value(Loc(0)), Value::Int(3));
        assert_eq!(peer.value(Loc(1)), Value::Int(2));
        assert_eq!(peer.applied[p(0)], 3);
    }

    /// Regression: whole-suffix recovery batches deadlock when two
    /// survivors' deltas cross-reference each other's recent writes —
    /// each batch is gated on the deps of its *last* member, so neither
    /// can go first at a fresh reborn node even though the per-write
    /// causal order is acyclic. `delta_chunks` splits the suffix at
    /// external-dependency boundaries and always drains.
    #[test]
    fn chunked_deltas_break_cross_gated_recovery_deadlock() {
        let c = durable_cfg(Mode::Causal);
        let mut a = Replica::new(p(0), 3);
        let mut b = Replica::new(p(2), 3);
        // Interleaved exchange: each survivor's second write causally
        // depends on the other's first.
        let (id, deps) = a.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &c);
        b.ingest(id, Loc(0), UpdatePayload::Set(Value::Int(1)), deps, Mode::Causal);
        let (id, deps) = b.local_write(Loc(2), UpdatePayload::Set(Value::Int(1)), &c);
        a.ingest(id, Loc(2), UpdatePayload::Set(Value::Int(1)), deps, Mode::Causal);
        let (id, deps) = a.local_write(Loc(0), UpdatePayload::Set(Value::Int(2)), &c);
        b.ingest(id, Loc(0), UpdatePayload::Set(Value::Int(2)), deps, Mode::Causal);
        b.local_write(Loc(2), UpdatePayload::Set(Value::Int(2)), &c);

        // Single-batch deltas: a's batch carries {p0:2, p2:1}, b's
        // {p0:2, p2:2} — each waits on the other, forever.
        let mut fresh = Replica::new(p(1), 3);
        let (f, u, e, d) = a.delta_entries(0).unwrap();
        fresh.ingest_batch(p(0), f, u, e.into(), d, Mode::Causal);
        let (f, u, e, d) = b.delta_entries(0).unwrap();
        fresh.ingest_batch(p(2), f, u, e.into(), d, Mode::Causal);
        assert_eq!(fresh.applied[p(0)], 0, "cross-gated batches must deadlock");
        assert_eq!(fresh.applied[p(2)], 0);
        assert_eq!(fresh.pending_len(), 2);

        // Chunked deltas split where the external deps change; the
        // fixpoint interleaves the runs and converges.
        assert_eq!(a.delta_chunks(0).len(), 2, "one chunk per external-deps run");
        let mut fresh = Replica::new(p(1), 3);
        for (proc, r) in [(p(0), &a), (p(2), &b)] {
            for (f, u, e, d) in r.delta_chunks(0) {
                fresh.ingest_batch(proc, f, u, e.into(), d, Mode::Causal);
            }
        }
        assert_eq!(fresh.applied[p(0)], 2);
        assert_eq!(fresh.applied[p(2)], 2);
        assert_eq!(fresh.value(Loc(0)), Value::Int(2));
        assert_eq!(fresh.value(Loc(2)), Value::Int(2));
        assert_eq!(fresh.pending_len(), 0);
    }

    #[test]
    fn own_history_is_kept_only_under_durability() {
        let mut r = Replica::new(p(0), 2);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &cfg(Mode::Pram));
        assert_eq!(r.own_updates_len(), 0, "no durability, no history");
        let mut r = Replica::new(p(0), 2);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &durable_cfg(Mode::Pram));
        assert_eq!(r.own_updates_len(), 1);
    }

    #[test]
    fn knowledge_merges_must_see() {
        let mut r = Replica::new(p(0), 2);
        r.local_write(Loc(0), UpdatePayload::Set(Value::Int(1)), &cfg(Mode::Mixed));
        let mut k = VClock::new(2);
        k.set(p(1), 5);
        r.absorb_sync(&k, &[]);
        let know = r.knowledge();
        assert_eq!(know[p(0)], 1);
        assert_eq!(know[p(1)], 5);
    }

    /// Regression: recovery and backfill must re-ship own suffixes one
    /// write at a time. A writer that alternates shards mints chains
    /// whose last members carry triples into each other's shards; a
    /// receiver that lacks both (fresh disk) parks each atomic chain on
    /// the other forever, while the per-write form drains in sequence
    /// order.
    #[test]
    fn per_write_recovery_pushes_avoid_cross_shard_chain_cycle() {
        let c = cfg(Mode::Causal);
        let mut w = Replica::new(p(0), 2).with_sharding(2, vec![0, 1]);
        w.sharded_write(Loc(0), UpdatePayload::Set(Value::Int(42)), &c); // shard 0, seq 1
        w.sharded_write(Loc(1), UpdatePayload::Set(Value::Int(1)), &c); // shard 1, seq 2
        w.sharded_write(Loc(2), UpdatePayload::Set(Value::Int(7)), &c); // shard 0, seq 3

        // Whole-chain shipment: shard 0's chain {1,3} depends on
        // (1,p0,2) and shard 1's chain {2} on (0,p0,1) — both park.
        let mut fresh = Replica::new(p(1), 2).with_sharding(2, vec![0, 1]);
        for shard in [0u32, 1] {
            let (prev, upto, entries, deps) = w.shard_chain_after(shard as usize, 0).unwrap();
            fresh.ingest_shard_chain(
                p(0),
                shard,
                prev,
                upto,
                entries.into(),
                deps,
                Mode::Causal,
                true,
            );
        }
        assert_eq!(fresh.shards().unwrap().pending_len(), 2, "atomic chains deadlock");
        assert_eq!(fresh.value(Loc(0)), Value::INITIAL);

        // Per-write shipment in global sequence order always drains.
        let mut fresh = Replica::new(p(1), 2).with_sharding(2, vec![0, 1]);
        let pushes = w.shard_updates_after(&[(0, 0), (1, 0)]);
        assert_eq!(pushes.len(), 3);
        assert!(pushes.windows(2).all(|ab| ab[0].0.seq < ab[1].0.seq), "seq order");
        for (writer, loc, payload, prev, deps) in pushes {
            fresh.ingest_sharded(writer, loc, payload, prev, deps, Mode::Causal);
        }
        assert_eq!(fresh.shards().unwrap().pending_len(), 0);
        assert_eq!(fresh.value(Loc(0)), Value::Int(42));
        assert_eq!(fresh.value(Loc(1)), Value::Int(1));
        assert_eq!(fresh.value(Loc(2)), Value::Int(7));
        assert_eq!(fresh.shards().unwrap().applied(0).get(p(0)), 3);
        assert_eq!(fresh.shards().unwrap().applied(1).get(p(0)), 2);

        // A partial watermark re-anchors the chain link past the
        // already-held prefix instead of restarting from zero.
        let tail = w.shard_updates_after(&[(0, 1)]);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0.seq, 3);
        assert_eq!(tail[0].3, 1, "chain link anchored at the held prefix");
    }
}
